"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures, asserts
its shape criteria, and writes the rendered artifact to
``benchmarks/out/<name>.txt`` so the reproduction record can be inspected
after a run.
"""

from __future__ import annotations

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def artifact_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> str:
        path = os.path.join(artifact_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return path

    return _save
