"""Ablation: fitting alpha instead of fixing it at 2.

Section VI-B3: "we fix the alpha value in the model to be 2 for all of
our experiments. Our experiments indicate that this value varies between
1 and 4 depending on the range of the power cap being applied." This
ablation fits alpha to each application's Fig.-4 sweep and reports the
accuracy gained — the paper's proposed model refinement, implemented.
"""

from repro.core.errors import summarize_errors
from repro.core.fitting import fit_alpha
from repro.experiments import figure4
from repro.experiments.report import ascii_table

_PANEL_KW = dict(repeats=2, seed=0, baseline_window=10.0,
                 uncapped_window=9.0, capped_window=11.0, warmup=2.5)

_APPS = ("lammps", "qmcpack")


def _binding_points(panel):
    eps = 1e-3 * panel.r_max
    return [(m.p_corecap, m.delta_mean) for m in panel.measurements
            if abs(m.delta_mean) > eps]


def test_bench_ablation_alpha(benchmark, save_artifact):
    def run():
        return {app: figure4.run_panel(app, **_PANEL_KW) for app in _APPS}

    panels = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    improvements = {}
    for app, panel in panels.items():
        points = _binding_points(panel)
        caps = [p for p, _ in points]
        rates = [panel.r_max - d for _, d in points]
        fit = fit_alpha(caps, rates, beta=panel.beta, r_max=panel.r_max,
                        p_coremax=panel.p_coremax)
        fitted_errors = summarize_errors(
            [fit.model.delta_progress(c) for c in caps],
            [d for _, d in points],
        )
        improvements[app] = (panel.errors.mape, fitted_errors.mape)
        rows.append([app, f"{fit.alpha:.2f}",
                     f"{panel.errors.mape:.1f}%",
                     f"{fitted_errors.mape:.1f}%"])
    save_artifact("ablation_alpha", ascii_table(
        ["app", "fitted alpha", "MAPE (alpha=2)", "MAPE (fitted)"], rows,
        title="Ablation: fixed alpha=2 vs fitted alpha",
    ))

    for app, (fixed, fitted) in improvements.items():
        assert fitted <= fixed * 1.05, (app, fixed, fitted)
