"""Ablation: how good is the Eq.-5 assumption P_corecap = beta * P_cap?

The model assumes RAPL splits the package budget between core and uncore
in the ratio of the application's compute-boundedness. This benchmark
measures the *actual* steady-state core share of package power under a
binding cap and compares it with beta — quantifying the assumption the
paper could not check directly ("we have access to power usage only at
the package level").
"""

from repro.experiments import Testbed
from repro.experiments.report import ascii_table
from repro.experiments.table6 import PAPER as TABLE6
from repro.nrm.schemes import FixedCapSchedule

_CASES = {
    "lammps": ({"n_steps": 1_000_000}, 100.0),
    "stream": ({"n_iterations": 1_000_000}, 90.0),
    "amg": ({"n_iterations": 1_000_000, "setup_iterations": 0}, 95.0),
}


def test_bench_ablation_beta_split(benchmark, save_artifact):
    tb = Testbed(seed=0)

    def run():
        out = {}
        for app, (sizing, cap) in _CASES.items():
            r = tb.run(app, duration=10.0, schedule=FixedCapSchedule(cap),
                       app_kwargs=sizing)
            pkg = r.power.window(5.0, 10.1).mean()
            uncore = r.uncore_power.window(5.0, 10.1).mean()
            out[app] = (pkg, uncore)
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    shares = {}
    for app, (pkg, uncore) in measured.items():
        core_share = (pkg - uncore) / pkg
        beta = TABLE6[app][0]
        shares[app] = (core_share, beta)
        rows.append([app, f"{TABLE6[app][0]:.2f}", f"{core_share:.2f}",
                     f"{core_share - beta:+.2f}"])
    save_artifact("ablation_beta_split", ascii_table(
        ["app", "beta (Eq. 5 assumed core share)",
         "measured core share of P_pkg", "difference"], rows,
        title="Ablation: the Eq.-5 beta-split assumption vs firmware truth",
    ))

    # The assumption is directionally right (compute-bound codes keep a
    # larger core share) but quantitatively generous for memory-bound
    # codes — part of why the model misses for STREAM.
    assert shares["lammps"][0] > shares["amg"][0] > shares["stream"][0]
    assert shares["lammps"][0] > 0.85
    assert shares["stream"][0] > TABLE6["stream"][0]
