"""Ablation: how much of the STREAM model error is uncore DVFS?

The paper concludes the DVFS-only model fails for memory-bound code
because "RAPL is using additional means to ensure that the power budget
is met" (Section VI-B2) and names uncore DVFS as unmodeled (VI-B3).
This ablation turns the firmware's uncore DVFS off
(``min_uncore_scale=1.0``) and re-runs the Fig.-4d sweep: the model's
worst-case underestimation must shrink substantially, attributing the
error to the mechanism.
"""

from repro.experiments import figure4
from repro.experiments.report import ascii_table

# The 150 W point is excluded: it barely binds, so its error is
# dominated by rate quantization rather than any firmware mechanism.
_PANEL_KW = dict(repeats=2, seed=0, caps=(130.0, 110.0, 90.0, 70.0, 55.0),
                 baseline_window=10.0, uncapped_window=9.0,
                 capped_window=11.0, warmup=2.5)


def test_bench_ablation_uncore_dvfs(benchmark, save_artifact):
    def run():
        with_uncore = figure4.run_panel("stream", **_PANEL_KW)
        without_uncore = figure4.run_panel(
            "stream", firmware_kwargs={"min_uncore_scale": 1.0},
            **_PANEL_KW)
        return with_uncore, without_uncore

    with_uncore, without_uncore = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)

    rows = [
        ["uncore DVFS on (real RAPL)",
         f"{with_uncore.errors.mape:.1f}%",
         f"{with_uncore.errors.max_underestimate:+.1f}%"],
        ["uncore DVFS off (DVFS-only RAPL)",
         f"{without_uncore.errors.mape:.1f}%",
         f"{without_uncore.errors.max_underestimate:+.1f}%"],
    ]
    save_artifact("ablation_uncore_dvfs", ascii_table(
        ["firmware", "MAPE", "worst underestimation"], rows,
        title="Ablation: STREAM Fig.-4d error with/without uncore DVFS",
    ))

    # The DVFS-only firmware matches the DVFS-only model far better.
    assert (abs(without_uncore.errors.max_underestimate)
            < 0.6 * abs(with_uncore.errors.max_underestimate))
    assert without_uncore.errors.mape < with_uncore.errors.mape
