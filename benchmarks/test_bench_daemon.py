"""Benchmark the daemon's front door: concurrent submission and
telemetry fan-out throughput over a real Unix-domain socket.

Two measurements at 1, 4, and 16 concurrent clients:

* **submissions/sec** — each client owns a connection and fires a
  stream of ``run`` requests at one shared daemon; the rate is total
  accepted submissions over the wall time of the slowest client.
* **telemetry messages/sec** — each client holds a ``watch``
  subscription on the ``progress`` topic while a driver ticks a
  workload to completion; the rate is total frames delivered across
  all watchers over the tick-plus-drain window.

Results go to ``benchmarks/out/daemon_throughput.txt``. Rates on
shared CI runners are noisy, so the assertions are shape-only: every
submission accepted, every watcher fed, rates positive.
"""

import threading
import time

from repro.daemon import protocol as proto
from repro.daemon.client import DaemonClient
from repro.daemon.profiles import DEMO_LAMMPS_RATE, demo_book
from repro.daemon.server import DaemonServer
from repro.daemon.service import Daemon, DaemonConfig
from repro.scheduler import SchedulerConfig

CLIENT_COUNTS = (1, 4, 16)
SUBMIT_JOBS = 192        # total across clients, divisible by 16
WATCH_JOBS = 8
JOB_SECONDS = 2.5        # > 1 epoch so completion rating has samples
APP_KW = {"n_steps": 1_000_000}


def start_daemon(tmp_path, name, *, queue_capacity):
    config = DaemonConfig(
        scheduler=SchedulerConfig(n_slots=4, power_budget=300.0,
                                  policy="backfill", min_cap=45.0,
                                  cap_step=5.0, eco_margin=0.8,
                                  n_workers=4, seed=1),
        queue_capacity=queue_capacity)
    daemon = Daemon(config, demo_book())
    path = str(tmp_path / name)
    server = DaemonServer(daemon, socket_path=path, pacer=None,
                          tick_wall=0.005)
    server.bind()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return daemon, server, thread, path


def stop(daemon, server, thread):
    server.shutdown()
    thread.join(timeout=5.0)
    daemon.close()


def measure_submissions(tmp_path, n_clients):
    """Wall time for ``SUBMIT_JOBS`` run requests split over
    ``n_clients`` connections; returns submissions/sec."""
    daemon, server, thread, path = start_daemon(
        tmp_path, f"submit-{n_clients}.sock",
        queue_capacity=SUBMIT_JOBS + 1)
    per_client = SUBMIT_JOBS // n_clients
    barrier = threading.Barrier(n_clients + 1)
    replies = []
    rlock = threading.Lock()

    def submit(c):
        with DaemonClient(socket_path=path, timeout=60.0) as client:
            barrier.wait()
            got = [client.run(f"c{c}-j{i}", "lammps", n_nodes=1,
                              work_units=JOB_SECONDS * DEMO_LAMMPS_RATE,
                              app_kwargs=APP_KW)
                   for i in range(per_client)]
        with rlock:
            replies.extend(got)

    threads = [threading.Thread(target=submit, args=(c,))
               for c in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    stop(daemon, server, thread)

    assert len(replies) == n_clients * per_client
    assert all(isinstance(r, proto.RunReply) for r in replies), replies
    assert len({r.seq for r in replies}) == len(replies)
    return len(replies) / elapsed


def measure_telemetry(tmp_path, n_clients):
    """Frames/sec fanned out to ``n_clients`` watchers while a
    ``WATCH_JOBS``-job workload ticks to completion."""
    daemon, server, thread, path = start_daemon(
        tmp_path, f"watch-{n_clients}.sock",
        queue_capacity=WATCH_JOBS + 1)
    counts = [0] * n_clients
    ready = threading.Barrier(n_clients + 1)

    def watch(w):
        with DaemonClient(socket_path=path, timeout=60.0) as client:
            client.watch(f"w{w}", topic="progress", hwm=100_000,
                         events=False)
            ready.wait()
            for frame in client.frames(wall_budget=120.0, idle=1.0):
                if isinstance(frame, proto.StreamTelemetry):
                    counts[w] += 1

    watchers = [threading.Thread(target=watch, args=(w,))
                for w in range(n_clients)]
    for t in watchers:
        t.start()
    ready.wait()

    start = time.perf_counter()
    with DaemonClient(socket_path=path, timeout=60.0) as driver:
        for j in range(WATCH_JOBS):
            reply = driver.run(f"j{j}", "lammps", n_nodes=1,
                               work_units=JOB_SECONDS * DEMO_LAMMPS_RATE,
                               app_kwargs=APP_KW)
            assert isinstance(reply, proto.RunReply), reply
        while True:
            info = driver.info()
            if info.queued == 0 and info.running == 0:
                break
            driver.tick(5)
    for t in watchers:
        t.join()
    elapsed = time.perf_counter() - start
    stop(daemon, server, thread)

    assert all(c > 0 for c in counts), counts
    # every watcher sees the same full stream (no per-client loss)
    assert len(set(counts)) == 1, counts
    return sum(counts) / elapsed


def test_bench_daemon_throughput(benchmark, tmp_path, save_artifact):
    # pedantic wrapper so the canonical single-client submission run
    # lands in the pytest-benchmark table like the other benchmarks
    rows = []
    first = benchmark.pedantic(
        lambda: measure_submissions(tmp_path, 1), rounds=1, iterations=1)
    for n in CLIENT_COUNTS:
        submit_rate = first if n == 1 else \
            measure_submissions(tmp_path, n)
        telemetry_rate = measure_telemetry(tmp_path, n)
        assert submit_rate > 0 and telemetry_rate > 0
        rows.append((n, submit_rate, telemetry_rate))

    lines = [
        "repro.daemon throughput (manual-tick daemon, 4-slot cluster, "
        "Unix-domain socket)",
        f"submission workload : {SUBMIT_JOBS} jobs split across "
        "clients",
        f"telemetry workload  : {WATCH_JOBS} jobs ticked to "
        "completion, one progress watch per client",
        "",
        f"{'clients':>8} {'submissions/s':>15} {'telemetry msg/s':>17}",
    ]
    for n, submit_rate, telemetry_rate in rows:
        lines.append(f"{n:>8} {submit_rate:>15.0f} "
                     f"{telemetry_rate:>17.0f}")
    save_artifact("daemon_throughput", "\n".join(lines))
