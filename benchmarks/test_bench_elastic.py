"""Benchmark the elastic shard balancer against a skewed placement.

Starts a deliberately imbalanced layout — six of eight nodes pinned to
shard 0, two on shard 1 — and runs the epoch loop with the balancer off
and on. The balancer watches measured per-shard epoch wall times and
migrates nodes off the overloaded shard (checkpoint → rebuild, mid-run),
so the balanced run's slowest shard shrinks toward an even split.

Three invariants are asserted:

* every sharded run (skewed, balanced) reproduces the serial series
  bit-for-bit — migration is a pure wall-clock lever;
* the balancer actually migrated nodes off the overloaded shard;
* with real parallelism available (>= 2 CPUs, not CI), the balanced
  run beats the skewed one on wall time.

Timings land in ``benchmarks/out/elastic_speedup.txt``.
"""

import os
import time

from repro.cluster.elastic import ShardBalancer
from repro.cluster.sharding import ShardedLockstep, StepRequest
from repro.runtime.executor import default_workers
from repro.stack import BUDGET, StackSpec

N_NODES = 8
HEAVY_SHARD_NODES = 6   # skew: 6-vs-2 across two shards
EPOCHS = 12
BUDGET_W = 95.0
APP_KW = {"n_steps": 10_000_000, "n_workers": 4}


def _items():
    return [(i, StackSpec(app_name="lammps", app_kwargs=dict(APP_KW),
                          seed=7 + 1000 * i, controller=BUDGET,
                          name=f"node{i}"))
            for i in range(N_NODES)]


def _run(shards, *, skew=False, balancer=None):
    """Step all nodes EPOCHS times; returns (series, wall_s, lockstep
    stats). ``skew`` pins the first HEAVY_SHARD_NODES nodes to shard 0
    and the rest to shard 1 instead of round-robin."""
    ls = ShardedLockstep(shards=shards, balancer=balancer)
    series = []
    try:
        items = _items()
        if skew:
            ls.add_nodes(items[:HEAVY_SHARD_NODES], shard=0)
            ls.add_nodes(items[HEAVY_SHARD_NODES:], shard=1)
        else:
            ls.add_nodes(items)
        start = time.perf_counter()
        for e in range(1, EPOCHS + 1):
            requests = [StepRequest(node_id=i, target=float(e),
                                    budget=BUDGET_W, set_budget=True,
                                    windows=(3.0, 1.0))
                        for i in range(N_NODES)]
            for res in ls.step(requests):
                series.append((res.node_id, res.now, res.energy,
                               res.cumulative,
                               tuple(sorted(res.rates.items()))))
        wall = time.perf_counter() - start
        stats = {"migrations": ls.migrations,
                 "placement": ls.shard_nodes() if shards > 1 else None}
    finally:
        ls.close()
    return series, wall, stats


def test_bench_elastic_rebalancing(benchmark, save_artifact):
    serial_series, serial_s, _ = benchmark.pedantic(
        lambda: _run(shards=1), rounds=1, iterations=1,
    )
    skewed_series, skewed_s, skewed_stats = _run(shards=2, skew=True)
    balancer = ShardBalancer(threshold=1.25, warmup=1, cooldown=1)
    balanced_series, balanced_s, balanced_stats = _run(
        shards=2, skew=True, balancer=balancer)

    # The parity contract: placement — static or migrating — never
    # changes a single simulated float.
    assert skewed_series == serial_series
    assert balanced_series == serial_series

    # The balancer must have drained the overloaded shard.
    assert skewed_stats["migrations"] == 0
    assert balanced_stats["migrations"] >= 1
    final = balanced_stats["placement"]
    assert len(final[0]) < HEAVY_SHARD_NODES

    cpus = default_workers()
    speedup = skewed_s / balanced_s if balanced_s > 0 else float("inf")
    lines = [
        f"Elastic shard rebalancing ({N_NODES} lammps nodes, "
        f"{EPOCHS} epochs, skewed start {HEAVY_SHARD_NODES}-vs-"
        f"{N_NODES - HEAVY_SHARD_NODES} over 2 shards)",
        f"cpus available           : {cpus}",
        f"serial (shards=1)        : {serial_s:.3f} s",
        f"skewed, balancer off     : {skewed_s:.3f} s",
        f"skewed, balancer on      : {balanced_s:.3f} s",
        f"balancer speedup         : {speedup:.2f}x",
        f"nodes migrated           : {balanced_stats['migrations']}",
        f"final placement          : "
        f"{ {s: len(n) for s, n in final.items()} }",
        "numeric parity           : identical across all three "
        "(series equality)",
    ]
    save_artifact("elastic_speedup", "\n".join(lines))

    if cpus >= 2 and "CI" not in os.environ:
        # With real parallelism the balanced layout must beat the
        # skewed one. CI runners share cores unpredictably, so the
        # wall-time ordering is only asserted locally.
        assert balanced_s < skewed_s, (skewed_s, balanced_s)
