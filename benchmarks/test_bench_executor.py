"""Benchmark the RunExecutor process-pool fan-out on a Figure-4 sweep.

Runs one LAMMPS cap sweep twice — serially and through a two-worker
``RunExecutor`` — and asserts the two produce *identical* numbers (the
pool only changes wall-clock, never results). The serial/parallel
timings are written to ``benchmarks/out/executor_speedup.txt``.

The speedup assertion is guarded on available CPUs: on a single-core
host the pool cannot beat serial execution (it adds fork overhead), so
only the numeric-identity contract is enforced there.
"""

import os
import time

from repro.experiments import figure4
from repro.runtime.executor import RunExecutor, default_workers

SWEEP = dict(
    caps=(115.0, 85.0),
    repeats=2,
    seed=0,
    uncapped_window=6.0,
    capped_window=7.0,
    warmup=2.0,
)


def _sweep(executor=None):
    start = time.perf_counter()
    panel = figure4.run_panel("lammps", executor=executor, **SWEEP)
    return panel, time.perf_counter() - start


def test_bench_executor_speedup(benchmark, save_artifact):
    (serial_panel, serial_s) = benchmark.pedantic(
        _sweep, rounds=1, iterations=1,
    )
    pooled_panel, pooled_s = _sweep(executor=RunExecutor(2))

    # The contract: the pool is a pure wall-clock optimisation.
    assert pooled_panel == serial_panel

    cpus = default_workers()
    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    lines = [
        "RunExecutor figure-4 sweep (lammps, 2 caps x 2 repeats)",
        f"cpus available : {cpus}",
        f"serial         : {serial_s:.3f} s",
        f"workers=2      : {pooled_s:.3f} s",
        f"speedup        : {speedup:.2f}x",
        "numeric parity : identical (field-wise panel equality)",
    ]
    save_artifact("executor_speedup", "\n".join(lines))

    if cpus >= 2 and "CI" not in os.environ:
        # With real parallelism available the pool must win. CI runners
        # share cores unpredictably, so only assert on local hardware.
        assert pooled_s < serial_s, (serial_s, pooled_s)
