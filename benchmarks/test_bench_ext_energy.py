"""Extension benchmark: the energy-to-solution frontier under caps."""

from repro.experiments import extension_energy


def test_bench_ext_energy(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: extension_energy.run(seed=0), rounds=1, iterations=1
    )
    save_artifact("ext_energy", extension_energy.render(result))

    for app, points in result.points.items():
        # Capping saves substantial energy on fixed work (the voltage
        # curve makes power fall faster than speed across most of the
        # ladder) ...
        assert result.min_energy_cap(app) is not None, app
        assert result.energy_saving_at_min(app) > 0.10, app
        # ... at a real time cost,
        assert result.slowdown_at_min_energy(app) > 0.0, app
        # and capping never makes a fixed-work run finish faster.
        uncapped = next(p for p in points if p.cap is None)
        for p in points:
            assert p.seconds >= uncapped.seconds * 0.999, (app, p)
        # EDP has an interior optimum: some cap beats both extremes.
        edps = [p.edp for p in points]
        assert min(edps[1:-1]) < edps[0], app
        assert min(edps[1:-1]) <= edps[-1], app
