"""Extension benchmark: per-core DDCM for load-imbalanced applications.

Reproduces the result of the paper's cited DDCM work (refs [27]/[34]):
slowing non-critical ranks so they reach the barrier just in time saves
energy at *unchanged* progress. The policy's only input is the per-rank
online progress this library's telemetry provides — the use-case the
paper's per-processing-element future work points at.
"""

import pytest

from repro.apps import build
from repro.experiments.report import ascii_table
from repro.hardware import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.nrm import ImbalanceEnergyPolicy
from repro.runtime.engine import Engine
from repro.telemetry import JobProgressReducer, MessageBus, ProgressMonitor

N_RANKS = 8
SKEW = {w: 1.0 + 0.08 * w for w in range(N_RANKS)}
DURATION = 40.0


def _run(policy_on: bool):
    node = SimulatedNode()
    engine = Engine(node)
    RaplFirmware(node, engine)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    app = build("lammps", n_steps=1_000_000, n_workers=N_RANKS, seed=3)
    app.per_rank_progress = True
    app.rank_work_scale = SKEW
    reducer = JobProgressReducer(engine, bus, app.rank_topic_prefix, N_RANKS)
    monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
    if policy_on:
        ImbalanceEnergyPolicy(engine, node, reducer)
    app.launch(engine)
    engine.run(until=DURATION)
    return node.pkg_energy, monitor.series.window(10.0, DURATION + 0.1).mean()


def test_bench_ext_imbalance(benchmark, save_artifact):
    def run():
        return _run(False), _run(True)

    (e_base, r_base), (e_pol, r_pol) = benchmark.pedantic(run, rounds=1,
                                                          iterations=1)
    saving = (1.0 - e_pol / e_base) * 100.0
    save_artifact("ext_imbalance", ascii_table(
        ["configuration", "energy (J)", "progress (atom-steps/s)"],
        [
            ["imbalanced, no policy", f"{e_base:,.0f}", f"{r_base:,.0f}"],
            ["per-core DDCM policy", f"{e_pol:,.0f}", f"{r_pol:,.0f}"],
        ],
        title=(f"Extension: per-core DDCM on an {N_RANKS}-rank job with "
               f"up-to-{(max(SKEW.values()) - 1) * 100:.0f}% work skew "
               f"(saves {saving:.1f}% energy)"),
    ))

    assert saving > 2.0
    assert r_pol == pytest.approx(r_base, rel=0.01)
