"""Extension benchmark: instrumentation intrusiveness vs resolution."""

import pytest

from repro.experiments import extension_intrusiveness as ext


def test_bench_ext_intrusiveness(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: ext.run(duration=30.0, seed=0), rounds=1, iterations=1
    )
    save_artifact("ext_intrusiveness", ext.render(result))

    costly = max(c.overhead_cycles for c in result.cells)
    # Costly per-iteration reporting visibly slows the application ...
    assert result.slowdown(costly, 1) > 0.10
    # ... batching amortizes it away ...
    assert result.slowdown(costly, 60) < 0.02
    # ... but once the report interval crosses the 1 Hz collection
    # interval, the monitor's buckets go empty and the series quantizes.
    fine = result.cell(0.0, 1)
    coarse = result.cell(0.0, 60)
    assert fine.empty_fraction == pytest.approx(0.0, abs=0.02)
    assert coarse.empty_fraction > 0.5
    assert coarse.cv > fine.cv
    # The monitor's *mean* stays unbiased regardless of batching.
    assert coarse.monitor_mean == pytest.approx(fine.monitor_mean, rel=0.05)
