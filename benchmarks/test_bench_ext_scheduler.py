"""Extension benchmark: power-aware multi-job scheduling with
model-driven cap selection (eco-mode backfill vs uncapped FCFS)."""

from repro.experiments import extension_scheduler


def test_bench_ext_scheduler(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: extension_scheduler.run(seed=0, quick=True),
        rounds=1, iterations=1,
    )
    save_artifact("ext_scheduler", extension_scheduler.render(result))

    baseline, eco = result.baseline, result.eco
    # Eco-mode backfill turns power headroom into throughput: jobs that
    # accept a bounded slowdown start earlier and the workload drains
    # faster than strict FCFS with uncapped jobs ...
    assert eco.makespan < baseline.makespan
    assert result.makespan_speedup() > 1.0
    # ... at lower total energy (capped nodes sit on the cheap side of
    # the voltage curve),
    assert result.energy_saving() > 0.0
    # with the cluster budget holding at every epoch,
    assert baseline.violations == 0
    assert eco.violations == 0
    # and every eco job inside its declared slowdown tolerance — the
    # 0.8 cap-selection margin absorbed the model's prediction error.
    assert eco.all_within_tolerance()
    assert eco.max_prediction_error() < 0.15
