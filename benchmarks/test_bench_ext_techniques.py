"""Extension benchmark: DVFS vs DDCM vs RAPL technique comparison."""

from repro.experiments import extension_techniques as ext


def test_bench_ext_techniques(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: ext.run(duration=8.0, warmup=3.0, seed=0),
        rounds=1, iterations=1,
    )
    save_artifact("ext_techniques", ext.render(result))

    for app in ("lammps", "stream"):
        lo, hi = result.common_power_range(app)
        probes = [lo + f * (hi - lo) for f in (0.25, 0.5, 0.75)]
        for power in probes:
            dvfs = result.progress_at(app, "dvfs", power)
            ddcm = result.progress_at(app, "ddcm", power)
            rapl = result.progress_at(app, "rapl", power)
            # DVFS dominates DDCM at equal power (voltage scaling).
            assert dvfs > ddcm * 1.05, (app, power)
            # RAPL never degenerates to DDCM-level losses.
            assert rapl > ddcm, (app, power)

    # DDCM's relative penalty is worst for the memory-bound code: at
    # mid-range power it loses a larger progress fraction vs DVFS.
    def ddcm_loss(app):
        lo, hi = result.common_power_range(app)
        mid = (lo + hi) / 2
        return 1.0 - (result.progress_at(app, "ddcm", mid)
                      / result.progress_at(app, "dvfs", mid))

    assert ddcm_loss("stream") > ddcm_loss("lammps")
