"""Extension benchmark: progress-aware power balancing under variability.

Not a paper figure — this exercises the policy the paper's contribution
enables. Six nodes with manufacturing variability run the same
compute-bound job under a tight total budget; budgets are distributed
either uniformly or by the progress-aware rebalancer (which only uses
the paper's online progress metric). The rebalancer must narrow the
per-node rate spread — i.e. move power toward the critical path —
without lowering the critical-path rate.
"""

import numpy as np

from repro.cluster import (
    ClusterSimulation,
    ProgressAwareRebalancer,
    UniformPowerPolicy,
)
from repro.experiments.report import ascii_table

N_NODES = 6
BUDGET = N_NODES * 72.0
VARIABILITY = (0.10, 0.25)
APP_KW = {"n_steps": 1_000_000}
DURATION = 40.0


def _spread(sim):
    rates = sim.node_rates(window=8.0)
    return max(rates) - min(rates)


def test_bench_ext_variability(benchmark, save_artifact):
    def run():
        uniform = ClusterSimulation(
            N_NODES, "lammps", UniformPowerPolicy(BUDGET),
            app_kwargs=APP_KW, variability=VARIABILITY, seed=4)
        uniform.run(DURATION, epoch=2.0)
        rebalanced = ClusterSimulation(
            N_NODES, "lammps", ProgressAwareRebalancer(BUDGET, gain=3.0),
            app_kwargs=APP_KW, variability=VARIABILITY, seed=4)
        rebalanced.run(DURATION, epoch=2.0)
        return uniform, rebalanced

    uniform, rebalanced = benchmark.pedantic(run, rounds=1, iterations=1)

    crit_uni = uniform.steady_critical_path(16.0)
    crit_reb = rebalanced.steady_critical_path(16.0)
    rows = [
        ["uniform budgets", f"{crit_uni:,.0f}", f"{_spread(uniform):,.0f}"],
        ["progress-aware rebalancer", f"{crit_reb:,.0f}",
         f"{_spread(rebalanced):,.0f}"],
    ]
    save_artifact("ext_variability", ascii_table(
        ["policy", "critical-path rate (atom-steps/s)",
         "node rate spread"], rows,
        title=(f"Extension: {N_NODES} nodes, +/-10% dynamic & 25% leakage "
               f"variability, {BUDGET:.0f} W job budget"),
    ))

    # Variability is visible under the uniform policy...
    assert _spread(uniform) > 0.0
    # ...the rebalancer narrows it...
    assert _spread(rebalanced) < _spread(uniform)
    # ...without sacrificing the critical path (allowing 1.5% noise).
    assert crit_reb >= crit_uni * 0.985
