"""Benchmark regenerating Figure 1 (online-performance characterization)."""

from repro.experiments import figure1


def test_bench_figure1(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: figure1.run(duration=40.0, seed=0), rounds=1, iterations=1
    )
    save_artifact("figure1", figure1.render(result))

    assert result.lammps_class.trace_class == "consistent"
    assert result.amg_class.trace_class == "fluctuating"
    assert result.qmcpack_class.trace_class == "phased"
    rates = result.qmcpack_class.segment_rates
    assert rates[0] > rates[1] > rates[2]
