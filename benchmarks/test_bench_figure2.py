"""Benchmark regenerating Figure 2 (application-aware RAPL)."""

from repro.experiments import figure2


def test_bench_figure2(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: figure2.run(duration=10.0, seed=0), rounds=1, iterations=1
    )
    save_artifact("figure2", figure2.render(result))

    # Fig. 2's claim: same cap => compute-bound runs at least as fast.
    assert result.compute_bound_always_faster()
    # And the gap is real somewhere in the sweep, not just ties.
    gaps = [
        fl - fs
        for fl, fs in zip(result.frequency_ghz["lammps"],
                          result.frequency_ghz["stream"])
    ]
    assert max(gaps) >= 0.1
