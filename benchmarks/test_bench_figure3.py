"""Benchmark regenerating Figure 3 (dynamic schemes vs progress)."""

from repro.experiments import figure3


def test_bench_figure3(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: figure3.run(duration=60.0, seed=0), rounds=1, iterations=1
    )
    save_artifact("figure3", figure3.render(result))

    # Progress follows the cap for every Category-1 app and scheme.
    for cell in result.cells:
        if cell.app in ("lammps", "qmcpack"):
            assert cell.cap_progress_correlation() > 0.7, (
                cell.app, cell.scheme)
    # OpenMC follows coarsely and shows the transport-glitch zeros.
    openmc_cells = [c for c in result.cells if c.app == "openmc"]
    assert any(c.cap_progress_correlation(smooth=8.0) > 0.4
               for c in openmc_cells)
    assert any(c.has_zero_glitches() for c in openmc_cells)
