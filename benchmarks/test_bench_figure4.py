"""Benchmark regenerating Figure 4 (measured vs predicted Δprogress).

All five panels (4a-4e). The assertions encode the paper's qualitative
findings; absolute numbers are testbed-specific.
"""

import os

from repro.experiments import figure4
from repro.experiments.export import figure4_to_csv


def test_bench_figure4(benchmark, save_artifact, artifact_dir):
    result = benchmark.pedantic(
        lambda: figure4.run(repeats=3, seed=0, warmup=2.5),
        rounds=1, iterations=1,
    )
    save_artifact("figure4", figure4.render(result))
    figure4_to_csv(result, os.path.join(artifact_dir, "figure4.csv"))

    for panel in result.panels:
        deltas = [m.delta_mean for m in panel.measurements]
        # impact grows as the cap tightens
        assert deltas[-1] > deltas[0], panel.app

    # CPU-bound codes: usable midrange accuracy (tens of percent).
    for app in ("lammps", "qmcpack"):
        mid = result.panel(app).errors.per_point[1:-1]
        assert all(abs(e) < 60.0 for e in mid), (app, mid)
    # OpenMC reports ~1 batch/s, so each delta carries one-batch
    # quantization noise; allow more headroom (the paper's own OpenMC
    # errors span 3.8-27.7% with finer-grained measurements).
    openmc_mid = result.panel("openmc").errors.per_point[1:-1]
    assert all(abs(e) < 80.0 for e in openmc_mid), openmc_mid

    # STREAM: the DVFS-only model underestimates RAPL's impact
    # (paper: by up to 70%), because RAPL also throttles the uncore/duty.
    stream = result.panel("stream")
    assert stream.errors.max_underestimate < -25.0
    assert all(e <= 10.0 for e in stream.errors.per_point)

    # AMG: the model overestimates somewhere midrange (plateaus are
    # unmodeled), as in Fig. 4b.
    amg = result.panel("amg")
    assert amg.errors.max_overestimate > 5.0
