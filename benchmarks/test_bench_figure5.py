"""Benchmark regenerating Figure 5 (STREAM: DVFS vs RAPL)."""

import os

from repro.experiments import figure5
from repro.experiments.export import figure5_to_csv


def test_bench_figure5(benchmark, save_artifact, artifact_dir):
    result = benchmark.pedantic(
        lambda: figure5.run(duration=10.0, warmup=4.0, seed=0),
        rounds=1, iterations=1,
    )
    save_artifact("figure5", figure5.render(result))
    figure5_to_csv(result, os.path.join(artifact_dir, "figure5.csv"))

    lo, hi = result.overlap_range()
    # DVFS is at least as good as RAPL across its applicable range and
    # clearly better toward the low end (paper's conclusion).
    low_point = lo + 0.1 * (hi - lo)
    assert result.dvfs_advantage_at(low_point) > 0.3
    for frac in (0.3, 0.5, 0.7):
        assert result.dvfs_advantage_at(lo + frac * (hi - lo)) > -0.2
    # Only RAPL can limit power below the DVFS ladder floor.
    assert (min(p.power for p in result.rapl)
            < min(p.power for p in result.dvfs))
