"""Baseline the sharded lockstep's per-epoch pickle traffic.

The ROADMAP's delta-shipping item wants to shrink what the lockstep
pickles per epoch; this benchmark records the current baseline with
:class:`~repro.cluster.sharding.ShardedLockstep`'s payload measurement
(``measure_payloads=True``), writing per-shard-count numbers to
``benchmarks/out/pickle_payload.txt``. Measurement is observation-only,
so the run's series are identical to an unmeasured run — asserted here.
"""

from repro.cluster.policies import ProgressAwareRebalancer
from repro.cluster.simulation import ClusterSimulation

N_NODES = 4
DURATION = 6.0
EPOCH = 1.0
APP_KW = {"n_steps": 10_000_000, "n_workers": 4}


def _run(shards, measure):
    sim = ClusterSimulation(
        N_NODES, "lammps",
        ProgressAwareRebalancer(4 * 95.0, min_node=60.0, max_node=130.0),
        app_kwargs=APP_KW, variability=(0.05, 0.08), seed=7, shards=shards)
    sim._lockstep.measure_payloads = measure
    try:
        sim.run(DURATION, epoch=EPOCH)
        series = (list(sim.total_progress.values),
                  list(sim.critical_path.values), sim.total_energy)
        return series, sim._lockstep.payload_stats
    finally:
        sim.close()


def test_bench_pickle_payloads(benchmark, save_artifact):
    series, stats = benchmark.pedantic(
        lambda: _run(shards=2, measure=True), rounds=1, iterations=1)
    unmeasured_series, _ = _run(shards=2, measure=False)
    assert series == unmeasured_series  # measuring never changes numbers

    assert stats.epochs == int(DURATION / EPOCH)
    down, up = stats.mean_epoch_bytes()
    assert down > 0 and up > 0

    lines = [
        "Sharded lockstep pickle payload baseline "
        f"({N_NODES} nodes, lammps, {DURATION:.0f} s / {EPOCH:.0f} s "
        "epochs, 2 shards)",
        "",
        f"epochs measured:        {stats.epochs}",
        f"mean per-epoch down:    {down:.0f} B (budgets + step requests)",
        f"mean per-epoch up:      {up:.0f} B (rates + epoch energy)",
        f"total down:             {stats.bytes_down} B "
        f"over {stats.dispatches} dispatches",
        f"total up:               {stats.bytes_up} B",
        "",
        "Measurement starts after cluster construction, so these are "
        "the",
        "steady-state epoch exchanges (budgets down; rates + energy "
        "up) —",
        "exactly the traffic the delta-shipping optimisation targets.",
    ]
    save_artifact("pickle_payload", "\n".join(lines))
