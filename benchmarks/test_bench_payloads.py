"""Measure the sharded lockstep's per-epoch pickle traffic.

The ROADMAP's delta-shipping item wants to shrink what the lockstep
pickles per epoch. This benchmark measures the same run over both wire
formats — the original one-StepRequest/StepResult-per-node framing
(``compact_wire=False``) and the compact ``step2`` wire (grouped
targets/windows, budgets only when changed, bare-tuple replies) — with
:class:`~repro.cluster.sharding.ShardedLockstep`'s payload measurement
(``measure_payloads=True``), writing the before/after numbers to
``benchmarks/out/pickle_payload.txt``. Neither measurement nor the wire
format changes the series — asserted here.
"""

from repro.cluster.policies import ProgressAwareRebalancer
from repro.cluster.simulation import ClusterSimulation

N_NODES = 4
DURATION = 6.0
EPOCH = 1.0
APP_KW = {"n_steps": 10_000_000, "n_workers": 4}


def _run(shards, measure, compact=True):
    sim = ClusterSimulation(
        N_NODES, "lammps",
        ProgressAwareRebalancer(4 * 95.0, min_node=60.0, max_node=130.0),
        app_kwargs=APP_KW, variability=(0.05, 0.08), seed=7, shards=shards)
    sim._lockstep.measure_payloads = measure
    sim._lockstep.compact_wire = compact
    try:
        sim.run(DURATION, epoch=EPOCH)
        series = (list(sim.total_progress.values),
                  list(sim.critical_path.values), sim.total_energy)
        return series, sim._lockstep.payload_stats
    finally:
        sim.close()


def test_bench_pickle_payloads(benchmark, save_artifact):
    series, stats = benchmark.pedantic(
        lambda: _run(shards=2, measure=True, compact=False),
        rounds=1, iterations=1)
    compact_series, compact_stats = _run(shards=2, measure=True)
    unmeasured_series, _ = _run(shards=2, measure=False)
    # neither measuring nor the wire format changes the numbers
    assert series == unmeasured_series
    assert compact_series == series

    n_epochs = int(DURATION / EPOCH)
    assert stats.epochs == n_epochs
    assert compact_stats.epochs == n_epochs
    down, up = stats.mean_epoch_bytes()
    cdown, cup = compact_stats.mean_epoch_bytes()
    assert down > 0 and up > 0
    # the compact wire must actually be smaller, both directions
    assert cdown < down, (cdown, down)
    assert cup < up, (cup, up)

    lines = [
        "Sharded lockstep pickle payload "
        f"({N_NODES} nodes, lammps, {DURATION:.0f} s / {EPOCH:.0f} s "
        "epochs, 2 shards)",
        "",
        f"epochs measured:        {stats.epochs}",
        "",
        "per-node framing (compact_wire=False, the pre-delta baseline):",
        f"  mean per-epoch down:  {down:.0f} B (budgets + step requests)",
        f"  mean per-epoch up:    {up:.0f} B (rates + epoch energy)",
        f"  total down:           {stats.bytes_down} B "
        f"over {stats.dispatches} dispatches",
        f"  total up:             {stats.bytes_up} B",
        "",
        "compact wire (compact_wire=True, the default):",
        f"  mean per-epoch down:  {cdown:.0f} B "
        f"({down / cdown:.1f}x smaller; grouped targets, delta budgets)",
        f"  mean per-epoch up:    {cup:.0f} B "
        f"({up / cup:.1f}x smaller; bare float tuples)",
        f"  total down:           {compact_stats.bytes_down} B "
        f"over {compact_stats.dispatches} dispatches",
        f"  total up:             {compact_stats.bytes_up} B",
        "",
        "Measurement starts after cluster construction, so these are "
        "the",
        "steady-state epoch exchanges (budgets down; rates + energy "
        "up).",
        "Both formats produce identical series — asserted by this "
        "benchmark.",
    ]
    save_artifact("pickle_payload", "\n".join(lines))
