"""Benchmark the sharded epoch loop against the serial path.

Runs one cluster rebalancing job with ``shards=1`` (in-process, the
pre-refactor behaviour) and ``shards=2`` (two long-lived worker
processes), under both node engines, and asserts every combination
produces *identical* series: sharding and the vector engine are pure
wall-clock optimisations. Timings are written to
``benchmarks/out/sharding_speedup.txt``.

The shard speedup assertion is guarded on available CPUs: on a
single-core host the shard workers cannot beat serial execution (they
add fork and pipe overhead), so only the numeric-identity contract is
enforced there.
"""

import os
import time

from repro.cluster.policies import ProgressAwareRebalancer
from repro.cluster.simulation import ClusterSimulation
from repro.runtime.executor import default_workers

N_NODES = 8
DURATION = 12.0
EPOCH = 1.0
APP_KW = {"n_steps": 10_000_000, "n_workers": 4}


def _run(shards, engine="object"):
    sim = ClusterSimulation(
        N_NODES, "lammps",
        ProgressAwareRebalancer(8 * 95.0, min_node=60.0, max_node=130.0),
        app_kwargs=APP_KW, variability=(0.05, 0.08), seed=7, shards=shards,
        engine=engine)
    start = time.perf_counter()
    try:
        sim.run(DURATION, epoch=EPOCH)
        series = {
            "total_progress": (list(sim.total_progress.times),
                               list(sim.total_progress.values)),
            "critical_path": (list(sim.critical_path.times),
                              list(sim.critical_path.values)),
            "budget_history": (list(sim.budget_history.times),
                               list(sim.budget_history.values)),
            "total_energy": sim.total_energy,
            "now": sim.now,
        }
    finally:
        sim.close()
    return series, time.perf_counter() - start


def test_bench_sharding_speedup(benchmark, save_artifact):
    serial_series, serial_s = benchmark.pedantic(
        lambda: _run(shards=1), rounds=1, iterations=1,
    )
    sharded_series, sharded_s = _run(shards=2)
    vector_series, vector_s = _run(shards=1, engine="vector")
    vector_sharded_series, vector_sharded_s = _run(shards=2,
                                                   engine="vector")

    # The contract: neither sharding nor the engine changes the numbers.
    assert sharded_series == serial_series
    assert vector_series == serial_series
    assert vector_sharded_series == serial_series

    cpus = default_workers()
    speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
    lines = [
        f"Sharded epoch loop ({N_NODES} lammps nodes, "
        f"{DURATION:.0f} s / {EPOCH:.0f} s epochs, progress-aware "
        "rebalancing)",
        f"cpus available          : {cpus}",
        f"object, shards=1        : {serial_s:.3f} s",
        f"object, shards=2        : {sharded_s:.3f} s",
        f"vector, shards=1        : {vector_s:.3f} s",
        f"vector, shards=2        : {vector_sharded_s:.3f} s",
        f"shard speedup (object)  : {speedup:.2f}x",
        "numeric parity          : identical across all four "
        "(series + energy equality)",
        "",
        f"At {N_NODES} nodes the vector engine's batching has little to "
        "amortise; see",
        "vector_speedup.txt for the thousand-node regime it targets.",
    ]
    save_artifact("sharding_speedup", "\n".join(lines))

    if cpus >= 2 and "CI" not in os.environ:
        # With real parallelism available the shards must win. CI
        # runners share cores unpredictably, so only assert locally.
        assert sharded_s < serial_s, (serial_s, sharded_s)
