"""Benchmark regenerating Table I (MIPS vs online performance)."""

from repro.experiments import table1


def test_bench_table1(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: table1.run(n_procs=24, n_iterations=5, seed=0),
        rounds=1, iterations=1,
    )
    save_artifact("table1", table1.render(result))

    by = {r.routine: r for r in result.rows}
    # Definition 1 identical (one iteration/s) for both variants.
    assert abs(by["do_equal_work"].def1_iterations_per_s
               - by["do_unequal_work"].def1_iterations_per_s) < 0.05
    # Definition 2 roughly halves under imbalance.
    assert (by["do_equal_work"].def2_work_units_per_s
            / by["do_unequal_work"].def2_work_units_per_s) > 1.8
    # MIPS explodes ~20x — the paper's headline point.
    assert 15.0 < result.mips_inflation < 30.0
