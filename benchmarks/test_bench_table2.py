"""Benchmark regenerating Table II (application descriptions)."""

from repro.experiments import table2


def test_bench_table2(benchmark, save_artifact):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    save_artifact("table2", table2.render(result))
    assert len(result.descriptions) == 9
