"""Benchmark regenerating Table III (specialist questionnaire)."""

from repro.experiments import table3


def test_bench_table3(benchmark, save_artifact):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    save_artifact("table3", table3.render(result))
    assert len(result.questions) == 8
