"""Benchmark regenerating Table IV (summary of responses)."""

from repro.experiments import table4


def test_bench_table4(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: table4.run(check_consistency=True), rounds=1, iterations=1
    )
    save_artifact("table4", table4.render(result))
    assert len(result.responses) == 9
