"""Benchmark regenerating Table V (categorization + online metrics)."""

from repro.experiments import table5


def test_bench_table5(benchmark, save_artifact):
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    save_artifact("table5", table5.render(result))
    # The rule-based derivation must reproduce the paper's table exactly.
    assert result.matches_paper()
