"""Benchmark regenerating Table VI (beta and MPO characterization)."""

import pytest

from repro.experiments import table6


def test_bench_table6(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: table6.run(seed=0, scale=1.0), rounds=1, iterations=1
    )
    save_artifact("table6", table6.render(result))

    assert result.beta_ordering_matches_paper()
    for c in result.characterizations:
        beta_paper, mpo_paper = table6.PAPER[c.app_name]
        assert c.beta == pytest.approx(beta_paper, abs=0.05), c.app_name
        assert c.mpo == pytest.approx(mpo_paper, rel=0.20), c.app_name
