"""Benchmark the vector node engine against the object engine at scale.

Runs the extension-scheduler-style cluster scenario (lammps under
progress-aware rebalancing, per-node manufacturing variability) at
1,000 nodes with both engines and asserts they produce *identical*
series — the vector engine is a pure wall-clock optimisation — then
records the 10,000-node vector epoch rate. Seconds-per-epoch numbers go
to ``benchmarks/out/vector_speedup.txt``.

The 10x speedup floor is guarded on CI (shared runners time
unpredictably); the numeric-identity contract is enforced everywhere.
The object engine is not timed at 10,000 nodes — at its 1,000-node epoch
rate that single data point would dominate the whole benchmark suite's
runtime — so the artifact extrapolates it linearly (the object path is
one independent python loop per node) and labels it as such.
"""

import os
import time

from repro.cluster.policies import ProgressAwareRebalancer
from repro.cluster.simulation import ClusterSimulation

N_SMALL = 1_000
N_LARGE = 10_000
EPOCHS = 2
APP_KW = {"n_steps": 10_000_000, "n_workers": 4}


def _run(n_nodes, engine):
    sim = ClusterSimulation(
        n_nodes, "lammps",
        ProgressAwareRebalancer(n_nodes * 95.0, min_node=60.0,
                                max_node=130.0),
        app_kwargs=APP_KW, variability=(0.05, 0.08), seed=7, engine=engine)
    start = time.perf_counter()
    try:
        sim.run(float(EPOCHS), epoch=1.0)
        series = {
            "total_progress": (list(sim.total_progress.times),
                               list(sim.total_progress.values)),
            "critical_path": (list(sim.critical_path.times),
                              list(sim.critical_path.values)),
            "budget_history": (list(sim.budget_history.times),
                               list(sim.budget_history.values)),
            "total_energy": sim.total_energy,
            "now": sim.now,
        }
    finally:
        sim.close()
    return series, (time.perf_counter() - start) / EPOCHS


def test_bench_vector_speedup(benchmark, save_artifact):
    vector_series, vector_s = benchmark.pedantic(
        lambda: _run(N_SMALL, "vector"), rounds=1, iterations=1,
    )
    object_series, object_s = _run(N_SMALL, "object")

    # The contract: the engines produce the same numbers, bit for bit.
    assert vector_series == object_series

    _, vector_large_s = _run(N_LARGE, "vector")
    object_large_s = object_s * (N_LARGE / N_SMALL)

    speedup = object_s / vector_s if vector_s > 0 else float("inf")
    lines = [
        f"Vector node engine ({N_SMALL} and {N_LARGE} lammps nodes, "
        f"progress-aware rebalancing, {EPOCHS} epochs timed)",
        "",
        f"n={N_SMALL}:",
        f"  object engine : {object_s:.3f} s/epoch",
        f"  vector engine : {vector_s:.3f} s/epoch",
        f"  speedup       : {speedup:.1f}x",
        f"n={N_LARGE}:",
        f"  object engine : {object_large_s:.1f} s/epoch "
        "(extrapolated linearly from n="
        f"{N_SMALL})",
        f"  vector engine : {vector_large_s:.3f} s/epoch",
        "",
        "numeric parity  : identical (series + energy equality at "
        f"n={N_SMALL})",
    ]
    save_artifact("vector_speedup", "\n".join(lines))

    if "CI" not in os.environ:
        assert speedup >= 10.0, (object_s, vector_s)
