#!/usr/bin/env python
"""An autonomous node resource manager, end to end.

Capstone example composing the paper's pieces into the dynamic NRM its
Section II envisions — with *zero prior knowledge* of the application:

1. the application starts and publishes progress (Section IV
   instrumentation);
2. the NRM estimates beta **online** by frequency dithering
   (:class:`repro.nrm.estimator.OnlineBetaEstimator` — no offline
   characterization runs);
3. it measures the uncapped baseline rate and power, builds the Eq.-7
   model, and inverts it for the cap holding 85 % of full progress;
4. it applies the cap and keeps monitoring — if progress drifts below
   the floor, the ProgressFloorPolicy-style feedback nudges the cap.

The node itself is a stock :class:`~repro.stack.builder.NodeStack`
assembled with no controller; a lifecycle hook arms the online
estimator, which bootstraps the rest of the NRM while the app runs.

Usage::

    python examples/autonomous_nrm.py
"""

from repro.core.model import PowerCapModel
from repro.experiments.report import series_block
from repro.nrm import OnlineBetaEstimator
from repro.nrm.policies import ProgressFloorPolicy
from repro.stack import NONE, NodeStack, StackSpec

TARGET_FRACTION = 0.85
APP = "qmcpack"
APP_KW = dict(vmc1_blocks=0, vmc2_blocks=0, dmc_blocks=1_000_000)


def main() -> None:
    spec = StackSpec(app_name=APP, app_kwargs=APP_KW, seed=7,
                     controller=NONE)
    state = {}

    def arm_estimator(stack: NodeStack) -> None:
        """Stack hook: start the dithering estimator; its completion
        callback measures the baseline, builds the model and arms the
        floor policy — the NRM assembles itself while the app runs."""
        engine, libmsr = stack.engine, stack.libmsr
        monitor = stack.main_monitor
        estimator = OnlineBetaEstimator(engine, stack.node, monitor,
                                        dwell=8.0)

        def after_estimate(beta: float) -> None:
            print(f"t={engine.clock.now:5.1f}s  beta estimated online: "
                  f"{beta:.2f} (paper's offline value: 0.84)")
            # -- 3: uncapped baseline over the next window ---------------
            libmsr.poll_power()
            t_mark = engine.clock.now

            def build_model(now: float) -> None:
                window = monitor.series.window(t_mark + 1.0, now + 1e-9)
                r_max = float(window.values.mean())
                poll = libmsr.poll_power()
                p_uncapped = poll.pkg_watts
                model = PowerCapModel(beta=beta, r_max=r_max,
                                      p_coremax=beta * p_uncapped)
                target = TARGET_FRACTION * r_max
                print(f"t={now:5.1f}s  baseline: {r_max:.2f} blocks/s at "
                      f"{p_uncapped:.1f} W")
                # -- 4: hold the floor with feedback around the cap ------
                state["policy"] = ProgressFloorPolicy(
                    engine, libmsr, monitor, model, target)
                print(f"t={now:5.1f}s  floor policy armed: target "
                      f"{target:.2f} blocks/s, initial cap "
                      f"{state['policy'].cap:.1f} W")

            engine.add_timer(10.0, build_model)

        estimator.on_complete = after_estimate

    stack = NodeStack(spec, hooks=(arm_estimator,))
    stack.run(until=70.0)

    print()
    print(series_block("progress (blocks/s)", stack.progress_series))
    policy = state["policy"]
    print(series_block("cap (W)", policy.cap_series))
    settled = stack.progress_series.window(45.0, 70.1)
    print(f"\nsettled progress: {settled.mean():.2f} blocks/s "
          f"(floor {policy.target_rate:.2f}); cap {policy.cap:.1f} W "
          f"vs ~160 W uncapped")


if __name__ == "__main__":
    main()
