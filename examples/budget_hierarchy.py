#!/usr/bin/env python
"""System -> job -> node power budgets: the paper's Section II scenario.

"A large, high-priority job begins executing elsewhere on the system,
and the power budget for the currently executing low-priority job is
reduced. The NRM responds to this reduced power budget for the
low-priority job by implementing a hard, immediate power cap on the
node."

One simulated node runs the low-priority job (LAMMPS). The system power
manager initially grants it a generous node budget; 15 s in, a large
high-priority job is admitted, the low-priority node budget shrinks, the
node's budget-tracking policy applies the cap, and online progress drops
accordingly — exactly the dynamic the paper's progress metric exists to
quantify.

Usage::

    python examples/budget_hierarchy.py
"""

from repro.apps import build
from repro.experiments.report import series_block
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm.hierarchy import Job, SystemPowerManager
from repro.nrm.policies import BudgetTrackingPolicy
from repro.runtime.engine import Engine
from repro.telemetry import MessageBus, ProgressMonitor


def main() -> None:
    # --- one real simulated node for the low-priority job -------------
    node = SimulatedNode()
    engine = Engine(node)
    firmware = RaplFirmware(node, engine)
    libmsr = LibMSR(MSRSafe(MSRDevice(node, firmware)), node.clock)
    policy = BudgetTrackingPolicy(engine, libmsr)

    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    monitor = ProgressMonitor(engine, bus.sub_socket("progress/lammps"))

    app = build("lammps", n_steps=1_000_000, seed=2)
    app.launch(engine)

    # --- the machine-level hierarchy ------------------------------------
    mgr = SystemPowerManager(machine_budget=2000.0, min_node_budget=50.0)
    low_job = Job("climate-lowpri", n_nodes=8, priority=1.0,
                  node_sinks=[policy.receive_budget])
    budgets = mgr.submit(low_job)
    print(f"t=0s: low-priority job admitted, node budget "
          f"{budgets['climate-lowpri']:.0f} W")

    def admit_high_priority(now: float) -> None:
        budgets = mgr.submit(Job("urgent-hipri", n_nodes=16, priority=4.0))
        print(f"t={now:.0f}s: HIGH-PRIORITY job admitted -> low-priority "
              f"node budget {budgets['climate-lowpri']:.0f} W, "
              f"high-priority {budgets['urgent-hipri']:.0f} W")

    def complete_high_priority(now: float) -> None:
        budgets = mgr.complete("urgent-hipri")
        print(f"t={now:.0f}s: high-priority job finished -> low-priority "
              f"node budget back to {budgets['climate-lowpri']:.0f} W")

    engine.add_timer(15.0, admit_high_priority)
    engine.add_timer(35.0, complete_high_priority)
    engine.run(until=50.0)

    print()
    print(series_block("node budget cap (W)", policy.cap_series))
    print(series_block("lammps progress (atom-steps/s)", monitor.series))
    mid = monitor.series.window(20.0, 35.0).mean()
    outer = monitor.series.window(5.0, 15.0).mean()
    print(f"\nprogress during the squeeze: {mid:,.0f} vs {outer:,.0f} "
          f"before it ({mid / outer * 100:.0f}%)")


if __name__ == "__main__":
    main()
