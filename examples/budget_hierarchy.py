#!/usr/bin/env python
"""System -> job -> node power budgets: the paper's Section II scenario.

"A large, high-priority job begins executing elsewhere on the system,
and the power budget for the currently executing low-priority job is
reduced. The NRM responds to this reduced power budget for the
low-priority job by implementing a hard, immediate power cap on the
node."

One simulated node runs the low-priority job (LAMMPS). The whole node —
firmware, msr-safe, libmsr, bus, monitor, budget-tracking policy — is
assembled by :class:`~repro.stack.builder.NodeStack` from a spec; a
lifecycle hook grafts the machine-level hierarchy on top. The system
power manager initially grants a generous node budget; 15 s in, a large
high-priority job is admitted, the low-priority node budget shrinks, the
node's budget-tracking policy applies the cap, and online progress drops
accordingly — exactly the dynamic the paper's progress metric exists to
quantify.

Usage::

    python examples/budget_hierarchy.py
"""

from repro.experiments.report import series_block
from repro.nrm.hierarchy import Job, SystemPowerManager
from repro.stack import BUDGET, NodeStack, StackSpec


def wire_hierarchy(stack: NodeStack) -> None:
    """Stack hook: feed the machine-level budget hierarchy into the
    node's budget-tracking policy and script the two admission events."""
    mgr = SystemPowerManager(machine_budget=2000.0, min_node_budget=50.0)
    low_job = Job("climate-lowpri", n_nodes=8, priority=1.0,
                  node_sinks=[stack.policy.receive_budget])
    budgets = mgr.submit(low_job)
    print(f"t=0s: low-priority job admitted, node budget "
          f"{budgets['climate-lowpri']:.0f} W")

    def admit_high_priority(now: float) -> None:
        budgets = mgr.submit(Job("urgent-hipri", n_nodes=16, priority=4.0))
        print(f"t={now:.0f}s: HIGH-PRIORITY job admitted -> low-priority "
              f"node budget {budgets['climate-lowpri']:.0f} W, "
              f"high-priority {budgets['urgent-hipri']:.0f} W")

    def complete_high_priority(now: float) -> None:
        budgets = mgr.complete("urgent-hipri")
        print(f"t={now:.0f}s: high-priority job finished -> low-priority "
              f"node budget back to {budgets['climate-lowpri']:.0f} W")

    stack.engine.add_timer(15.0, admit_high_priority)
    stack.engine.add_timer(35.0, complete_high_priority)


def main() -> None:
    spec = StackSpec(app_name="lammps",
                     app_kwargs={"n_steps": 1_000_000},
                     seed=2,
                     controller=BUDGET)
    stack = NodeStack(spec, hooks=(wire_hierarchy,))
    stack.run(until=50.0)

    print()
    print(series_block("node budget cap (W)", stack.policy.cap_series))
    print(series_block("lammps progress (atom-steps/s)",
                       stack.progress_series))
    mid = stack.progress_series.window(20.0, 35.0).mean()
    outer = stack.progress_series.window(5.0, 15.0).mean()
    print(f"\nprogress during the squeeze: {mid:,.0f} vs {outer:,.0f} "
          f"before it ({mid / outer * 100:.0f}%)")


if __name__ == "__main__":
    main()
