#!/usr/bin/env python
"""Progress-aware power balancing across a variable cluster.

Six "identical" nodes — with realistic manufacturing variability in
leakage and switching efficiency — run the same compute-bound job under
a tight total power budget. Under uniform budgets the inefficient nodes
settle at lower frequencies and their progress lags: for a
bulk-synchronous job, the whole job runs at the slowest node's pace
(the paper's Table-I critical-path lesson, at cluster scale).

A progress-aware rebalancer — possible *only* because progress is
monitored online, which is the paper's thesis — shifts budget toward the
lagging nodes every epoch, narrowing the spread.

Usage::

    python examples/cluster_variability.py
"""

from repro.cluster import (
    ClusterSimulation,
    ProgressAwareRebalancer,
    UniformPowerPolicy,
)
from repro.experiments.report import series_block

N_NODES = 6
BUDGET = N_NODES * 72.0
VARIABILITY = (0.10, 0.25)   # dynamic, static lognormal sigmas


def summarize(name: str, sim: ClusterSimulation) -> None:
    rates = sim.node_rates(window=8.0)
    freqs = sim.node_frequencies()
    print(f"--- {name} ---")
    for node, rate, freq in zip(sim.nodes, rates, freqs):
        bar = "#" * int(rate / 2e4)
        print(f"  node{node.node_id}: {freq / 1e9:.1f} GHz "
              f"{rate:10,.0f} atom-steps/s {bar}")
    print(f"  spread: {max(rates) - min(rates):,.0f}  "
          f"critical path: {sim.steady_critical_path(16.0):,.0f}")
    print(series_block("  critical-path trace", sim.critical_path))
    print()


def main() -> None:
    print(f"{N_NODES} nodes, job budget {BUDGET:.0f} W, variability "
          f"sigma(dyn)={VARIABILITY[0]}, sigma(leak)={VARIABILITY[1]}\n")

    uniform = ClusterSimulation(
        N_NODES, "lammps", UniformPowerPolicy(BUDGET),
        app_kwargs={"n_steps": 1_000_000}, variability=VARIABILITY, seed=4)
    uniform.run(40.0, epoch=2.0)
    summarize("uniform node budgets", uniform)

    rebalanced = ClusterSimulation(
        N_NODES, "lammps", ProgressAwareRebalancer(BUDGET, gain=3.0),
        app_kwargs={"n_steps": 1_000_000}, variability=VARIABILITY, seed=4)
    rebalanced.run(40.0, epoch=2.0)
    summarize("progress-aware rebalancer", rebalanced)

    gain = (rebalanced.steady_critical_path(16.0)
            / uniform.steady_critical_path(16.0) - 1.0) * 100.0
    print(f"critical-path change from rebalancing: {gain:+.1f}%")


if __name__ == "__main__":
    main()
