#!/usr/bin/env python
"""Characterize, model, fit, and pick a power budget for a progress target.

The full Section VI workflow, plus the paper's proposed refinement:

1. measure beta for QMCPACK's DMC (execution times at 3300/1600 MHz);
2. measure the uncapped baseline and build the Eq.-7 model (alpha = 2);
3. sweep package caps, comparing measured vs predicted progress change;
4. *fit* alpha to the sweep (Section VI-B3 suggests parameterizing RAPL
   instead of fixing alpha = 2) and show the error shrink;
5. invert the model to choose the smallest package budget sustaining 85 %
   of full progress — and verify it by running.

Usage::

    python examples/model_fit_and_budget.py
"""

from repro import Testbed
from repro.core.errors import summarize_errors
from repro.core.fitting import fit_alpha
from repro.core.model import PowerCapModel
from repro.nrm.schemes import FixedCapSchedule

APP = "qmcpack"
SIZING = {"vmc1_blocks": 0, "vmc2_blocks": 0, "dmc_blocks": 1_000_000}
CHAR_SIZING = {"vmc1_blocks": 0, "vmc2_blocks": 0, "dmc_blocks": 240}
CAPS = (140.0, 120.0, 100.0, 85.0, 70.0, 60.0)


def main() -> None:
    tb = Testbed(seed=5)

    print("1) characterizing beta (3300 vs 1600 MHz) ...")
    char = tb.characterize(APP, app_kwargs=CHAR_SIZING)
    print(f"   beta = {char.beta:.2f}, MPO = {char.mpo * 1e3:.2f}e-3")

    print("2) uncapped baseline ...")
    base = tb.run(APP, duration=14.0, app_kwargs=SIZING)
    r_max = base.steady_progress(3.0, 14.01)
    p_un = base.power.window(3.0, 14.01).mean()
    model = PowerCapModel(beta=char.beta, r_max=r_max,
                          p_coremax=char.beta * p_un, alpha=2.0)
    print(f"   r_max = {r_max:.2f} blocks/s at {p_un:.1f} W")

    print("3) cap sweep: measured vs predicted (alpha = 2) ...")
    measured, corecaps = [], []
    for cap in CAPS:
        m = tb.measure_delta_progress(APP, cap, beta=char.beta, repeats=3,
                                      uncapped_window=9.0,
                                      capped_window=11.0, warmup=2.5,
                                      app_kwargs=SIZING)
        measured.append(m)
        corecaps.append(m.p_corecap)
        pred = model.delta_progress(m.p_corecap)
        print(f"   cap {cap:6.1f} W | corecap {m.p_corecap:6.1f} W | "
              f"measured d={m.delta_mean:6.3f} | predicted d={pred:6.3f}")
    fixed_errors = summarize_errors(
        [model.delta_progress(c) for c in corecaps],
        [m.delta_mean for m in measured],
    )
    print(f"   fixed-alpha MAPE: {fixed_errors.mape:.1f}%")

    print("4) fitting alpha to the sweep (paper's proposed refinement) ...")
    fit = fit_alpha(corecaps, [r_max - m.delta_mean for m in measured],
                    beta=char.beta, r_max=r_max,
                    p_coremax=char.beta * p_un)
    fitted_errors = summarize_errors(
        [fit.model.delta_progress(c) for c in corecaps],
        [m.delta_mean for m in measured],
    )
    print(f"   fitted alpha = {fit.alpha:.2f}; "
          f"MAPE {fixed_errors.mape:.1f}% -> {fitted_errors.mape:.1f}%")

    print("5) inverse: budget for 85% of full progress ...")
    target = 0.85 * r_max
    budget = fit.model.package_cap_for_progress(target)
    print(f"   model says {budget:.1f} W; verifying ...")
    check = tb.run(APP, duration=16.0,
                   schedule=FixedCapSchedule(budget),
                   app_kwargs=SIZING)
    achieved = check.steady_progress(6.0, 16.01)
    print(f"   achieved {achieved:.2f} blocks/s "
          f"(target {target:.2f}, {achieved / r_max * 100:.1f}% of full)")


if __name__ == "__main__":
    main()
