#!/usr/bin/env python
"""Phase-aware power capping: exploiting the phases Figure 1 reveals.

The paper's motivation notes that execution-time-based management
"misses power management opportunities within fine-grained demarcations
such as phases". This example runs QMCPACK's three phases (VMC1, VMC2,
DMC — each computing blocks at a different rate) under the
measure-then-cap policy from :mod:`repro.nrm.phase_aware`:

* at each detected phase, run uncapped briefly to learn the phase's
  rate and power,
* then apply the smallest cap that sustains 85 % of that phase's rate
  (the Eq.-4 model inverse),
* re-measure when the progress monitor shows the rate level shift.

Compare against the uncapped run: substantial energy savings at a small,
*controlled* progress cost.

Usage::

    python examples/phase_aware_capping.py
"""

from repro.apps import build
from repro.experiments.report import series_block
from repro.hardware import SimulatedNode
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm import PhaseAwareCapPolicy
from repro.runtime.engine import Engine
from repro.telemetry import MessageBus, ProgressMonitor

DURATION = 70.0
APP_KW = dict(vmc1_blocks=500, vmc2_blocks=400, dmc_blocks=1_000_000,
              seed=2)


def run(with_policy: bool):
    node = SimulatedNode()
    engine = Engine(node)
    firmware = RaplFirmware(node, engine)
    libmsr = LibMSR(MSRSafe(MSRDevice(node, firmware)), node.clock)
    bus = MessageBus(node.clock)
    pub = bus.pub_socket()
    engine.on_publish(lambda t, topic, v: pub.send(topic, v))
    app = build("qmcpack", **APP_KW)
    monitor = ProgressMonitor(engine, bus.sub_socket(app.topic))
    policy = None
    if with_policy:
        policy = PhaseAwareCapPolicy(engine, libmsr, monitor, beta=0.84,
                                     target_fraction=0.85)
    app.launch(engine)
    engine.run(until=DURATION)
    return node, monitor, policy


def main() -> None:
    node_u, mon_u, _ = run(with_policy=False)
    node_c, mon_c, policy = run(with_policy=True)

    print("uncapped run:")
    print(series_block("  progress (blocks/s)", mon_u.series))
    print(f"  energy: {node_u.pkg_energy:,.0f} J\n")

    print("phase-aware capped run:")
    print(series_block("  progress (blocks/s)", mon_c.series))
    print(series_block("  applied cap (W)", policy.cap_series))
    print(f"  energy: {node_c.pkg_energy:,.0f} J")
    print(f"  phases adapted to: {policy.n_phases_seen} "
          f"(learned rates: {[round(r, 1) for r in policy.phase_rates]}, "
          f"caps: {[round(c, 1) for c in policy.phase_caps]} W)\n")

    blocks_u = sum(mon_u.series.values)
    blocks_c = sum(mon_c.series.values)
    print(f"progress kept: {blocks_c / blocks_u * 100:.1f}% "
          f"(target floor 85% per phase)")
    print(f"energy saved:  "
          f"{(1 - node_c.pkg_energy / node_u.pkg_energy) * 100:.1f}%")


if __name__ == "__main__":
    main()
