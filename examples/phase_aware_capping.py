#!/usr/bin/env python
"""Phase-aware power capping: exploiting the phases Figure 1 reveals.

The paper's motivation notes that execution-time-based management
"misses power management opportunities within fine-grained demarcations
such as phases". This example runs QMCPACK's three phases (VMC1, VMC2,
DMC — each computing blocks at a different rate) under the
measure-then-cap policy from :mod:`repro.nrm.phase_aware`:

* at each detected phase, run uncapped briefly to learn the phase's
  rate and power,
* then apply the smallest cap that sustains 85 % of that phase's rate
  (the Eq.-4 model inverse),
* re-measure when the progress monitor shows the rate level shift.

Both runs use the same :class:`~repro.stack.builder.NodeStack`
assembly; the capped run adds the policy through a lifecycle hook.
Compare against the uncapped run: substantial energy savings at a
small, *controlled* progress cost.

Usage::

    python examples/phase_aware_capping.py
"""

from repro.experiments.report import series_block
from repro.nrm import PhaseAwareCapPolicy
from repro.stack import NONE, NodeStack, StackSpec

DURATION = 70.0
APP_KW = dict(vmc1_blocks=500, vmc2_blocks=400, dmc_blocks=1_000_000)


def run(with_policy: bool):
    spec = StackSpec(app_name="qmcpack", app_kwargs=APP_KW, seed=2,
                     controller=NONE)
    installed = {}

    def arm_policy(stack: NodeStack) -> None:
        installed["policy"] = PhaseAwareCapPolicy(
            stack.engine, stack.libmsr, stack.main_monitor,
            beta=0.84, target_fraction=0.85)

    hooks = (arm_policy,) if with_policy else ()
    stack = NodeStack(spec, hooks=hooks)
    stack.run(until=DURATION)
    return stack.node, stack.main_monitor, installed.get("policy")


def main() -> None:
    node_u, mon_u, _ = run(with_policy=False)
    node_c, mon_c, policy = run(with_policy=True)

    print("uncapped run:")
    print(series_block("  progress (blocks/s)", mon_u.series))
    print(f"  energy: {node_u.pkg_energy:,.0f} J\n")

    print("phase-aware capped run:")
    print(series_block("  progress (blocks/s)", mon_c.series))
    print(series_block("  applied cap (W)", policy.cap_series))
    print(f"  energy: {node_c.pkg_energy:,.0f} J")
    print(f"  phases adapted to: {policy.n_phases_seen} "
          f"(learned rates: {[round(r, 1) for r in policy.phase_rates]}, "
          f"caps: {[round(c, 1) for c in policy.phase_caps]} W)\n")

    blocks_u = sum(mon_u.series.values)
    blocks_c = sum(mon_c.series.values)
    print(f"progress kept: {blocks_c / blocks_u * 100:.1f}% "
          f"(target floor 85% per phase)")
    print(f"energy saved:  "
          f"{(1 - node_c.pkg_energy / node_u.pkg_energy) * 100:.1f}%")


if __name__ == "__main__":
    main()
