#!/usr/bin/env python
"""The paper's power-policy daemon applying dynamic capping schemes.

Runs QMCPACK's DMC phase under each of the three Section V-B schemes —
linear decrease, step function, jagged edge — and shows the paper's key
observation: *the online performance of the application follows the
power-capping function being applied*.

Usage::

    python examples/power_policy_daemon.py
"""

import numpy as np

from repro import Testbed
from repro.experiments.report import series_block
from repro.nrm.schemes import (
    JaggedEdgeSchedule,
    LinearDecreaseSchedule,
    StepSchedule,
)

SCHEMES = {
    "linearly decreasing power cap":
        LinearDecreaseSchedule(high=150.0, low=70.0, rate=2.0, start=5.0),
    "step-function power cap":
        StepSchedule(low=80.0, high=None, high_duration=15.0,
                     low_duration=15.0),
    "jagged-edge power cap":
        JaggedEdgeSchedule(high=150.0, low=70.0, descent=20.0),
}


def correlation(cap, progress, smooth=5.0):
    t1 = min(cap.times[-1], progress.times[-1])
    c = cap.resample(smooth, t_start=0.0, t_end=t1).values
    p = progress.resample(smooth, t_start=0.0, t_end=t1).values
    n = min(len(c), len(p))
    return float(np.corrcoef(c[:n], p[:n])[0, 1])


def main() -> None:
    tb = Testbed(seed=4)
    for name, schedule in SCHEMES.items():
        result = tb.run(
            "qmcpack",
            duration=60.0,
            schedule=schedule,
            app_kwargs={"vmc1_blocks": 0, "vmc2_blocks": 0,
                        "dmc_blocks": 1_000_000},
        )
        print(f"=== {name} ===")
        print(series_block("cap (W)", result.cap))
        print(series_block("package power (W)", result.power))
        print(series_block("progress (blocks/s)", result.progress))
        print(f"corr(cap, progress) = "
              f"{correlation(result.cap, result.progress):.3f}\n")


if __name__ == "__main__":
    main()
