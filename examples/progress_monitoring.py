#!/usr/bin/env python
"""Progress extraction and characterization across the application suite.

Reproduces the Section IV workflow: every application publishes its
online-performance metric over the pub/sub transport, a 1 Hz monitor
aggregates it, and the trace is characterized as consistent /
fluctuating / phased. Category-3 applications (HACC, Nek5000) show why
a single metric fails for them; URBAN demonstrates the paper's proposed
remedy — a weighted composite of per-component progress.

Usage::

    python examples/progress_monitoring.py
"""

from repro import Testbed
from repro.core.composite import ComponentSpec, CompositeProgress
from repro.core.progress import classify_trace
from repro.experiments.report import series_block


def main() -> None:
    tb = Testbed(seed=3)

    print("=== Category 1 / 2: a single online metric works ===\n")
    runs = {
        "lammps (atom-steps/s)": tb.run(
            "lammps", duration=25.0, app_kwargs={"n_steps": 10_000}),
        "amg (GMRES iterations/s)": tb.run(
            "amg", duration=25.0,
            app_kwargs={"n_iterations": 10_000, "setup_iterations": 0}),
        "qmcpack (blocks/s, 3 phases)": tb.run(
            "qmcpack", duration=30.0,
            app_kwargs={"vmc1_blocks": 250, "vmc2_blocks": 200,
                        "dmc_blocks": 10_000}),
        "openmc (particles/s, lossy transport)": tb.run(
            "openmc", duration=30.0,
            app_kwargs={"inactive_batches": 5, "active_batches": 10_000}),
    }
    for label, result in runs.items():
        cls = classify_trace(result.progress)
        print(series_block(label, result.progress))
        print(f"  -> {cls.trace_class} (cv={cls.cv:.3f}, "
              f"segment rates={tuple(round(r, 2) for r in cls.segment_rates)})\n")

    print("=== Category 3: no single reliable metric ===\n")
    hacc = tb.run("hacc", duration=30.0,
                  app_kwargs={"n_steps": 10_000, "growth": 0.03})
    print(series_block("hacc (timesteps/s — drifts with clustering)",
                       hacc.progress))
    cls = classify_trace(hacc.progress)
    print(f"  -> {cls.trace_class}: the rate is not stationary, so a "
          "baseline cannot be learned from it\n")

    print("=== URBAN: weighted composite of component progress ===\n")
    urban = tb.run("urban", duration=30.0,
                   app_kwargs={"duration_steps": 1_000, "n_workers": 24})
    nek = urban.topics["progress/urban/nek"]
    eplus = urban.topics["progress/urban/eplus"]
    print(series_block("urban/nek (CFD steps/s)", nek))
    print(series_block("urban/eplus (building steps/s)", eplus))
    # Baselines are the uncapped mean rates (zeros included — a slow
    # component legitimately reports only every few seconds); a 10 s
    # combining interval smooths the slow component's reporting grain.
    composite = CompositeProgress([
        ComponentSpec("progress/urban/nek",
                      baseline_rate=max(nek.mean(), 1e-9)),
        ComponentSpec("progress/urban/eplus",
                      baseline_rate=max(eplus.mean(), 1e-9)),
    ]).combine(urban.topics, interval=10.0)
    print(series_block("urban composite (fraction of full speed)",
                       composite))


if __name__ == "__main__":
    main()
