#!/usr/bin/env python
"""Quickstart: run an application under a dynamic power cap.

Runs the LAMMPS analogue on the simulated 24-core node, uncapped for
15 s and then under a 100 W package cap, and prints what the paper's
node resource manager would see: the online progress rate (atom
timesteps per second), package power, and CPU frequency — plus the
paper's Eq.-7 model prediction for the progress change.

Usage::

    python examples/quickstart.py
"""

from repro import Testbed
from repro.core.model import PowerCapModel
from repro.nrm.schemes import FixedCapSchedule

CAP_W = 100.0
SWITCH_T = 15.0
END_T = 30.0
BETA = 0.99  # LAMMPS compute-boundedness (Table VI)


def main() -> None:
    tb = Testbed(seed=1)
    result = tb.run(
        "lammps",
        duration=END_T,
        schedule=FixedCapSchedule(CAP_W, start=SWITCH_T),
        app_kwargs={"n_steps": 1_000_000},
    )

    r_uncapped = result.steady_progress(3.0, SWITCH_T)
    r_capped = result.steady_progress(SWITCH_T + 3.0, END_T + 1e-9)
    p_uncapped = result.power.window(3.0, SWITCH_T).mean()
    p_capped = result.power.window(SWITCH_T + 3.0, END_T + 1e-9).mean()

    print(f"uncapped: {r_uncapped:12,.0f} atom-steps/s at "
          f"{p_uncapped:6.1f} W, {result.frequency.values[10] / 1e9:.1f} GHz")
    print(f"capped:   {r_capped:12,.0f} atom-steps/s at "
          f"{p_capped:6.1f} W, {result.frequency.values[-1] / 1e9:.1f} GHz")
    print(f"measured change in progress: {r_uncapped - r_capped:12,.0f}")

    model = PowerCapModel(beta=BETA, r_max=r_uncapped,
                          p_coremax=BETA * p_uncapped, alpha=2.0)
    predicted = model.delta_progress_at_package_cap(CAP_W)
    print(f"model-predicted change:      {predicted:12,.0f} "
          f"(alpha=2, P_corecap=beta*P_cap)")

    print("\nprogress trace (1 Hz):")
    for t, v in result.progress:
        bar = "#" * int(40 * v / max(result.progress.max(), 1e-9))
        print(f"  t={t:5.1f}s  {v:12,.0f}  {bar}")


if __name__ == "__main__":
    main()
