"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs work on environments whose setuptools predates
PEP-660 editable wheels (no ``wheel`` package available offline):

    pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
