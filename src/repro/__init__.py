"""repro — reproduction of *Understanding the Impact of Dynamic Power
Capping on Application Progress* (Ramesh, Perarnau, Bhalachandra, Malony,
Beckman; IPDPS Workshops 2019).

The package provides:

* :mod:`repro.core` — the paper's contribution: application-specific
  *online progress* metrics, the application categorization, the beta/MPO
  characterization, and the analytic model of power capping's impact on
  progress (Eqs. 1-7) with fitting and error analysis;
* :mod:`repro.hardware` — a simulated RAPL-capable Skylake node (power
  model, MSRs, msr-safe, the RAPL firmware feedback controller, DVFS and
  DDCM knobs, PAPI-like counters);
* :mod:`repro.sysfs` / :mod:`repro.libmsr` — the Linux powercap sysfs tree
  and a libmsr-style wrapper API over the emulated MSRs;
* :mod:`repro.runtime` — a deterministic fluid discrete-event engine with
  MPI-like and OpenMP-like programming surfaces, and a process-pool
  executor for fanning out independent runs;
* :mod:`repro.stack` — the unified node-stack layer: a picklable
  :class:`~repro.stack.spec.StackSpec` and the
  :class:`~repro.stack.builder.NodeStack` assembly every consumer
  (Testbed, cluster, scheduler) builds nodes through;
* :mod:`repro.apps` — synthetic analogues of the paper's applications
  (LAMMPS, AMG, QMCPACK, STREAM, OpenMC, CANDLE, Category-3 codes and the
  Listing-1 load-imbalance example), calibrated to the paper's beta / MPO
  characterization;
* :mod:`repro.telemetry` — ZeroMQ-style progress pub/sub and the 1 Hz
  progress monitor;
* :mod:`repro.nrm` — the node resource manager: dynamic power-capping
  schemes (linear / step / jagged-edge), the power-policy daemon, and
  budget-hierarchy policies;
* :mod:`repro.experiments` — one harness per paper table and figure.

Quickstart::

    from repro import Testbed
    tb = Testbed(seed=1)
    result = tb.run("lammps", duration=30.0, cap_schedule=None)
    print(result.progress.mean())
"""

__version__ = "1.0.0"

__all__ = ["Testbed", "RunResult", "StackSpec", "NodeStack", "RunExecutor",
           "__version__"]


def __getattr__(name: str):
    # Lazy re-export: keeps `import repro.hardware` cheap and avoids import
    # cycles between the experiment harness and the substrates it drives.
    if name in ("Testbed", "RunResult"):
        from repro.experiments import harness

        return getattr(harness, name)
    if name in ("StackSpec", "NodeStack"):
        import repro.stack as stack

        return getattr(stack, name)
    if name == "RunExecutor":
        from repro.runtime.executor import RunExecutor

        return RunExecutor
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
