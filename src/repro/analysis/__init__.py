"""Statistical utilities for repeated measurements.

See :mod:`repro.analysis.stats`.
"""

from repro.analysis.stats import (
    RepeatSummary,
    bootstrap_ci,
    mean_confidence_interval,
    summarize_repeats,
)

__all__ = [
    "RepeatSummary",
    "mean_confidence_interval",
    "bootstrap_ci",
    "summarize_repeats",
]
