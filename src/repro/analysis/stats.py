"""Confidence intervals for repeated progress measurements.

The paper averages five repeats per power cap; a credible reproduction
should also say how tight those averages are. These helpers provide
Student-t and bootstrap confidence intervals plus a one-call summary for
a vector of repeats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError

__all__ = ["RepeatSummary", "mean_confidence_interval", "bootstrap_ci",
           "summarize_repeats"]


def _validate(samples) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("samples must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("samples must be finite")
    return arr


def mean_confidence_interval(samples, confidence: float = 0.95
                             ) -> tuple[float, float]:
    """Student-t confidence interval for the mean.

    With a single sample the interval degenerates to ``(x, x)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    arr = _validate(samples)
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean)
    sem = float(stats.sem(arr))
    if sem == 0.0:
        return (mean, mean)
    half = sem * float(stats.t.ppf((1.0 + confidence) / 2.0, arr.size - 1))
    return (mean - half, mean + half)


def bootstrap_ci(samples, confidence: float = 0.95, n_resamples: int = 2000,
                 seed: int = 0) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    if n_resamples < 1:
        raise ConfigurationError("n_resamples must be >= 1")
    arr = _validate(samples)
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo = float(np.quantile(means, (1.0 - confidence) / 2.0))
    hi = float(np.quantile(means, 1.0 - (1.0 - confidence) / 2.0))
    return (lo, hi)


@dataclass(frozen=True)
class RepeatSummary:
    """Summary statistics of one measurement's repeats."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def relative_halfwidth(self) -> float:
        """CI half-width as a fraction of the mean (precision measure)."""
        if self.mean == 0.0:
            raise ConfigurationError(
                "relative precision undefined for zero mean"
            )
        return self.ci_halfwidth / abs(self.mean)


def summarize_repeats(samples, confidence: float = 0.95) -> RepeatSummary:
    """One-call summary: n, mean, std, t-interval."""
    arr = _validate(samples)
    lo, hi = mean_confidence_interval(arr, confidence)
    return RepeatSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        ci_low=lo,
        ci_high=hi,
    )
