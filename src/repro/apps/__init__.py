"""Synthetic analogues of the paper's applications (Table II).

Each application is a :class:`~repro.apps.base.SyntheticApp` built from
per-iteration work kernels calibrated so that, on the simulated node, the
measured beta and MPO metrics land on the paper's Table VI values and the
progress behaviour matches Section IV-C (LAMMPS consistent, AMG
fluctuating, QMCPACK/OpenMC phased, Category-3 codes unstable).

Use the registry to construct applications by name::

    from repro.apps import build, available
    app = build("lammps", n_steps=600, seed=1)
"""

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.apps.registry import available, build, get_spec

__all__ = [
    "AppSpec",
    "SyntheticApp",
    "KernelSpec",
    "PhaseSpec",
    "cycles_for_rate",
    "available",
    "build",
    "get_spec",
]
