"""AMG analogue — algebraic-multigrid-preconditioned GMRES (paper §IV-B2).

Category 2, memory-bandwidth bound (Table VI: beta = 0.52, MPO =
30.1e-3). The paper's setup: HYPRE's solver 3 (GMRES + diagonal scaling),
pooldist 1, pure MPI with 24 pinned processes; progress is the number of
GMRES iterations per second (~2.5-3, visibly fluctuating — Fig. 1,
center) and only the solve phase matters for performance. The number of
iterations to convergence is not predictable in advance, which is what
makes AMG Category 2.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.hardware.config import NodeConfig, skylake_config

__all__ = ["build", "SOLVE_RATE"]

SOLVE_RATE = 2.75  #: GMRES iterations/s at nominal frequency (paper: 2.5-3)

# beta = 0.52 -> bytes/cycle = (0.48/0.52) * (link/f_nom); MPO = 30.1e-3
# with misses = bytes/64 fixes IPC = (bpc/64)/MPO.
_BYTES_PER_CYCLE = (0.48 / 0.52) * (12e9 / 3.3e9)
_IPC = (_BYTES_PER_CYCLE / 64.0) / 30.1e-3


def build(n_iterations: int = 90, n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None,
          setup_iterations: int = 4) -> SyntheticApp:
    """AMG solver-benchmark instance.

    ``n_iterations`` GMRES iterations (~:data:`SOLVE_RATE` per second);
    the setup phase builds the multigrid hierarchy and publishes no
    progress (the paper instruments only the solve).
    """
    cfg = cfg or skylake_config()
    solve = KernelSpec(
        cycles=cycles_for_rate(SOLVE_RATE, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        jitter=0.015,
        shared_jitter=0.055,   # the visible iteration-rate fluctuation
    )
    setup = KernelSpec(
        cycles=cycles_for_rate(2.0, _BYTES_PER_CYCLE * 0.5, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE * 0.5,
        ipc=_IPC,
        jitter=0.02,
    )
    spec = AppSpec(
        name="amg",
        description=(
            "Iterative solver benchmark that uses algebraic multigrid "
            "preconditioning. Only the solve phase is important for "
            "performance."
        ),
        category=Category.CATEGORY_2,
        metric=OnlineMetric("Conjugate gradient iterations per second",
                            "iterations/s"),
        parallelism="mpi",
        phases=(
            PhaseSpec("setup", setup, iterations=setup_iterations,
                      publish=False),
            PhaseSpec("solve", solve, iterations=n_iterations,
                      progress_per_iteration=1.0),
        ),
        resource_bound="memory bandwidth",
        has_fom=False,
    )
    return SyntheticApp(spec, n_workers=n_workers, seed=seed)
