"""Base machinery for the synthetic applications.

A :class:`SyntheticApp` executes its spec's phases as an SPMD program:
every worker runs the same iteration loop (one pinned worker per core, as
in the paper's setup), iterations end in a barrier, and worker 0
publishes the phase's progress increment after each barrier — the
source-level instrumentation of Section IV-B.

The paper's progress definitions map onto the published values directly:
the 1 Hz monitor's rate series is "<metric> per second" (Definition 1
when ``progress_per_iteration`` is 1, Definition 2 when it carries work
units such as atoms or particles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.categories import Category, OnlineMetric
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    check_snapshot_version,
)
from repro.apps.body import SpmdBody
from repro.apps.kernels import PhaseSpec
from repro.runtime.engine import TaskState
from repro.runtime.mpi import SimMPI
from repro.runtime.openmp import OmpTeam

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["AppSpec", "SyntheticApp"]


@dataclass(frozen=True)
class AppSpec:
    """Static description of an application (paper Tables II & V)."""

    name: str
    description: str
    category: Category
    metric: OnlineMetric | None          #: None for Category-3 codes
    parallelism: str                     #: "mpi" or "openmp"
    phases: tuple[PhaseSpec, ...]
    resource_bound: str = "compute"      #: Table IV Q8 answer
    has_fom: bool = False                #: Table IV Q1
    transport_drop_prob: float = 0.0     #: progress-report loss (OpenMC glitch)
    category_label: str = field(default="")

    def __post_init__(self) -> None:
        if self.parallelism not in ("mpi", "openmp"):
            raise ConfigurationError(
                f"parallelism must be 'mpi' or 'openmp', got {self.parallelism!r}"
            )
        if not self.phases:
            raise ConfigurationError(f"app {self.name!r} needs at least one phase")
        if not self.category_label:
            object.__setattr__(self, "category_label", str(int(self.category)))


class SyntheticApp:
    """A runnable instance of an :class:`AppSpec`.

    Parameters
    ----------
    spec:
        The application description.
    n_workers:
        Ranks/threads, one pinned per core (paper: 24).
    seed:
        Seed for the per-run noise processes; runs with the same seed are
        bit-identical.
    """

    def __init__(self, spec: AppSpec, n_workers: int = 24, seed: int = 0) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.spec = spec
        self.n_workers = n_workers
        self.seed = seed
        #: When set (before launch), every worker additionally publishes
        #: its own share of each iteration's progress on
        #: ``{rank_topic_prefix}/rank{k}`` as soon as *it* finishes —
        #: i.e. before the barrier — enabling per-processing-element
        #: monitoring and imbalance detection (paper future work; see
        #: :class:`repro.telemetry.reduction.JobProgressReducer`).
        self.per_rank_progress = False
        #: Optional static per-worker work multiplier (worker id ->
        #: factor); models load imbalance from data decomposition. The
        #: largest factor defines the critical path.
        self.rank_work_scale: dict[int, float] | None = None
        #: Instrumentation intrusiveness (paper §VIII: "the resolution of
        #: these progress reports or the intrusiveness of the
        #: instrumentation might need to be changed"): compute cycles the
        #: publishing worker spends per report (serialization, socket
        #: I/O), and how many iterations are batched into one report.
        self.publish_overhead_cycles: float = 0.0
        self.report_every: int = 1

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def topic(self) -> str:
        """Topic the application publishes progress on."""
        return f"progress/{self.spec.name}"

    @property
    def rank_topic_prefix(self) -> str:
        """Prefix of the per-rank progress topics (kept disjoint from
        :attr:`topic` — subscriptions are ZeroMQ-style *prefix* filters,
        so nesting rank topics under the app topic would double-count in
        the app-level monitor)."""
        return f"rank-progress/{self.spec.name}"

    # ------------------------------------------------------------------
    # Launching
    # ------------------------------------------------------------------

    def launch(self, engine: "Engine", core_offset: int = 0) -> list[TaskState]:
        """Spawn one worker per core starting at ``core_offset``; workers
        begin executing on the engine's next :meth:`~repro.runtime.engine.Engine.run`."""
        if self.spec.parallelism == "mpi":
            mpi = SimMPI(engine, self.n_workers)
            if core_offset:
                return [
                    engine.spawn(self._body(mpi.comm.barrier, rank),
                                 core_id=core_offset + rank,
                                 name=f"{self.name}:rank{rank}")
                    for rank in range(self.n_workers)
                ]
            return mpi.launch(lambda comm, rank: self._body(comm.barrier, rank),
                              name=self.name)
        team = OmpTeam(engine, self.n_workers)
        if core_offset:
            return [
                engine.spawn(self._body(team.region_barrier, tid),
                             core_id=core_offset + tid,
                             name=f"{self.name}:thr{tid}")
                for tid in range(self.n_workers)
            ]
        return team.launch(lambda tm, tid: self._body(tm.region_barrier, tid),
                           name=self.name)

    # ------------------------------------------------------------------
    # Worker body (subclasses with irregular structure override this)
    # ------------------------------------------------------------------

    def _worker_rng(self, wid: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, wid + 1])

    def _phase_rng(self, phase_idx: int) -> np.random.Generator:
        # Shared (iteration-wide) noise stream: identical for all workers.
        return np.random.default_rng([self.seed, 0, phase_idx])

    def _body(self, barrier, wid: int) -> Iterator:
        """One worker's directive stream. Bodies are resumable state
        machines (:mod:`repro.apps.body`) rather than generators, so a
        mid-run task can be checkpointed; the directive sequence matches
        the historical generator bit-for-bit."""
        return SpmdBody(self, barrier, wid)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable run-level state (the post-construction knobs; the
        per-task loop state lives in each body's snapshot)."""
        return {
            "version": 1,
            "name": self.name,
            "per_rank_progress": self.per_rank_progress,
            "rank_work_scale": None if self.rank_work_scale is None
            else dict(self.rank_work_scale),
            "publish_overhead_cycles": self.publish_overhead_cycles,
            "report_every": self.report_every,
        }

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "SyntheticApp")
        if state["name"] != self.name:
            raise CheckpointError(
                f"app checkpoint is for {state['name']!r}, "
                f"restoring into {self.name!r}")
        self.per_rank_progress = state["per_rank_progress"]
        self.rank_work_scale = state["rank_work_scale"]
        self.publish_overhead_cycles = state["publish_overhead_cycles"]
        self.report_every = state["report_every"]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_iterations(self) -> int:
        """Iterations across all phases (per worker)."""
        return sum(p.iterations for p in self.spec.phases)

    def expected_duration(self, cfg) -> float:
        """Rough uncontended wall time at nominal frequency (seconds) —
        used by harnesses to size measurement windows."""
        total = 0.0
        for p in self.spec.phases:
            k = p.kernel
            t_iter = k.cycles / cfg.f_nominal + \
                k.cycles * k.bytes_per_cycle / cfg.core_link_bandwidth
            total += p.iterations * t_iter
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticApp({self.name!r}, workers={self.n_workers}, "
            f"category={self.spec.category_label})"
        )
