"""Resumable worker bodies: explicit step-state instead of generator frames.

The engine drives tasks through the iterator protocol (``next(task.gen)``),
so a worker body does not have to be a generator — any iterator works.
Plain generators hold their loop state in a frame that cannot be pickled
or rebuilt, which is what kept live node stacks pinned to one process.
The classes here replace the generator bodies with small state machines:

* each call to :meth:`_fill` produces one loop iteration's directives
  into an explicit queue, updating named state variables (phase index,
  iteration counter, RNG states) as it goes;
* :meth:`__next__` drains the queue, so the engine sees exactly the
  directive sequence the old generators yielded — the golden parity
  fixtures in ``tests/stack`` pin this bit-for-bit;
* :meth:`snapshot` / :meth:`restore` capture and reinstall that state,
  making a mid-run task shippable across a process boundary (the
  checkpoint layer in :mod:`repro.stack.checkpoint` builds on this).

Barriers need care: a :class:`~repro.runtime.engine.Barrier` directive
holds a live :class:`~repro.runtime.engine.BarrierGroup`, which must be
*this* engine's group after a restore. The queue therefore stores a
sentinel that is materialized through the body's barrier callable only
when popped, and :attr:`barrier_group` lets the engine find the group a
restored task was spinning at (the callables are side-effect-free).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    check_snapshot_version,
)
from repro.runtime.engine import Publish, Sleep, Work

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.base import SyntheticApp
    from repro.runtime.engine import Barrier, BarrierGroup

__all__ = ["ResumableBody", "SpmdBody", "rng_state", "restore_rng"]

#: Queue marker for "wait at the team barrier"; re-materialized through
#: the body's barrier callable at pop time (see module docstring).
_BARRIER = "__barrier__"


def rng_state(rng: np.random.Generator) -> dict:
    """Picklable state of a numpy Generator."""
    return rng.bit_generator.state


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a numpy Generator from :func:`rng_state` output."""
    rng = np.random.default_rng(0)
    if state["bit_generator"] != type(rng.bit_generator).__name__:
        raise CheckpointError(
            f"cannot restore RNG: checkpoint uses "
            f"{state['bit_generator']!r}, runtime provides "
            f"{type(rng.bit_generator).__name__!r}")
    rng.bit_generator.state = state
    return rng


class ResumableBody:
    """Iterator-protocol worker body with snapshot/restore.

    Subclasses implement :meth:`_fill` (enqueue one iteration's
    directives; return ``False`` when the run is over) and the state
    hooks :meth:`_state` / :meth:`_set_state`.
    """

    def __init__(self, app: "SyntheticApp", barrier: Callable[[], "Barrier"],
                 wid: int) -> None:
        self.app = app
        self.wid = wid
        self._barrier = barrier
        self._queue: deque[Any] = deque()
        self._exhausted = False

    # -- engine-facing ---------------------------------------------------

    @property
    def barrier_group(self) -> "BarrierGroup":
        """The group this body waits at (barrier callables are
        side-effect-free, so probing one is safe at any time)."""
        return self._barrier().group

    def __iter__(self) -> "ResumableBody":
        return self

    def __next__(self) -> Any:
        while not self._queue:
            if self._exhausted or not self._fill():
                self._exhausted = True
                raise StopIteration
        item = self._queue.popleft()
        if isinstance(item, str) and item == _BARRIER:
            return self._barrier()
        return item

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable body state (directive queue + subclass loop state)."""
        return {
            "version": 1,
            "kind": type(self).__name__,
            "queue": list(self._queue),
            "exhausted": self._exhausted,
            "state": self._state(),
        }

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, type(self).__name__)
        if state["kind"] != type(self).__name__:
            raise CheckpointError(
                f"body checkpoint is for {state['kind']!r}, "
                f"restoring into {type(self).__name__!r}")
        self._queue = deque(state["queue"])
        self._exhausted = state["exhausted"]
        self._set_state(state["state"])

    # -- subclass hooks --------------------------------------------------

    def _fill(self) -> bool:
        raise NotImplementedError

    def _state(self) -> dict:
        raise NotImplementedError

    def _set_state(self, state: dict) -> None:
        raise NotImplementedError


class SpmdBody(ResumableBody):
    """The default phase/iteration SPMD loop of :class:`SyntheticApp`.

    Emits, per iteration: the kernel quantum, the optional per-rank
    progress report, the barrier, and (worker 0) the batched progress
    publish — exactly the directive stream of the old generator body.
    """

    def __init__(self, app: "SyntheticApp", barrier: Callable[[], "Barrier"],
                 wid: int) -> None:
        super().__init__(app, barrier, wid)
        self._rng = app._worker_rng(wid)
        self._shared_rng: np.random.Generator | None = None
        self._p_idx = 0
        self._it = 0
        self._pending = 0.0
        self._batched = 0
        self._flushed = False
        # Resolved at the first _fill: callers may tune the app's
        # instrumentation knobs between construction and launch.
        self._skew: float | None = None

    def _resolve_knobs(self) -> float:
        app = self.app
        if app.report_every < 1:
            raise ConfigurationError(
                f"report_every must be >= 1, got {app.report_every}")
        if app.publish_overhead_cycles < 0:
            raise ConfigurationError("publish overhead must be >= 0")
        if app.rank_work_scale is not None:
            return app.rank_work_scale.get(self.wid, 1.0)
        return 1.0

    def _fill(self) -> bool:
        app, wid = self.app, self.wid
        if self._skew is None:
            self._skew = self._resolve_knobs()
        phases = app.spec.phases
        while self._p_idx < len(phases):
            phase = phases[self._p_idx]
            if self._it >= phase.iterations:
                self._p_idx += 1
                self._it = 0
                self._shared_rng = None
                continue
            if self._shared_rng is None:
                self._shared_rng = app._phase_rng(self._p_idx)
            shared = phase.kernel.shared_factor(self._shared_rng) * self._skew
            self._queue.append(phase.kernel.sample(self._rng, shared))
            if app.per_rank_progress and phase.publish:
                # Published pre-barrier: rank-level rates expose the
                # imbalance the barrier otherwise hides.
                self._queue.append(Publish(
                    f"{app.rank_topic_prefix}/rank{wid}",
                    phase.progress_per_iteration * self._skew / app.n_workers,
                ))
            self._queue.append(_BARRIER)
            if wid == 0 and phase.publish:
                self._pending += phase.progress_per_iteration
                self._batched += 1
                if self._batched >= app.report_every:
                    if app.publish_overhead_cycles > 0:
                        # the report itself costs the publisher time
                        self._queue.append(
                            Work(cycles=app.publish_overhead_cycles))
                    self._queue.append(Publish(app.topic, self._pending))
                    self._pending = 0.0
                    self._batched = 0
            self._it += 1
            return True
        if wid == 0 and self._pending > 0 and not self._flushed:
            self._flushed = True
            self._queue.append(Publish(app.topic, self._pending))
            return True
        return False

    def _state(self) -> dict:
        return {
            "rng": rng_state(self._rng),
            "shared_rng": None if self._shared_rng is None
            else rng_state(self._shared_rng),
            "p_idx": self._p_idx,
            "it": self._it,
            "pending": self._pending,
            "batched": self._batched,
            "flushed": self._flushed,
            "skew": self._skew,
        }

    def _set_state(self, state: dict) -> None:
        self._rng = restore_rng(state["rng"])
        self._shared_rng = None if state["shared_rng"] is None \
            else restore_rng(state["shared_rng"])
        self._p_idx = state["p_idx"]
        self._it = state["it"]
        self._pending = state["pending"]
        self._batched = state["batched"]
        self._flushed = state["flushed"]
        self._skew = state["skew"]
