"""CANDLE analogue — deep-learning cancer benchmark (paper Table II).

Category 1/2: online performance is well defined — epochs completed per
second during the training phase — but when training is bounded by a
target accuracy the number of epochs cannot be predicted in advance
(Section III-A), which is the Category-2 trait. The paper could not
instrument the real CANDLE (prebuilt TensorFlow binaries); this analogue
implements what the paper describes *in principle*: an epoch loop whose
length is decided online by a convergence criterion.

Each epoch performs a compute-heavy pass (DL training on CPU) and
updates a noisy, geometrically decaying validation loss; training stops
when the loss crosses the target or ``max_epochs`` is hit. Runs differ
by seed — exactly the unpredictability that puts accuracy-bounded
training in Category 2.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.body import ResumableBody, restore_rng, rng_state, _BARRIER
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.engine import Publish

__all__ = ["build", "CandleApp", "EPOCH_RATE"]

EPOCH_RATE = 0.5  #: training epochs/s at nominal frequency

_BYTES_PER_CYCLE = 0.10   # moderately compute-bound (vectorized GEMMs)
_IPC = 2.5


class CandleApp(SyntheticApp):
    """Training loop with an online convergence criterion."""

    def __init__(self, spec: AppSpec, *, target_loss: float,
                 loss_decay: float, loss_noise: float, max_epochs: int,
                 n_workers: int, seed: int) -> None:
        super().__init__(spec, n_workers=n_workers, seed=seed)
        if not 0.0 < loss_decay < 1.0:
            raise ConfigurationError("loss_decay must lie in (0, 1)")
        if target_loss <= 0:
            raise ConfigurationError("target_loss must be positive")
        if max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1")
        self.target_loss = target_loss
        self.loss_decay = loss_decay
        self.loss_noise = loss_noise
        self.max_epochs = max_epochs
        self.epochs_run = 0
        self.final_loss = float("nan")

    def _body(self, barrier, wid: int) -> Iterator:
        return _CandleBody(self, barrier, wid)

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["epochs_run"] = self.epochs_run
        state["final_loss"] = self.final_loss
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.epochs_run = state["epochs_run"]
        self.final_loss = state["final_loss"]

    def total_iterations(self) -> int:
        # Unknown in advance — the defining Category-2 property.
        raise ConfigurationError(
            "CANDLE's epoch count is decided online by the convergence "
            "criterion and cannot be predicted (paper Table IV, Q5 = No)"
        )


class _CandleBody(ResumableBody):
    """One training epoch per fill; the convergence loop is explicit.

    The loss trajectory is data-determined: every worker replays the
    same stream, so all workers stop after the same epoch.
    """

    def __init__(self, app: CandleApp, barrier, wid: int) -> None:
        super().__init__(app, barrier, wid)
        self._rng = app._worker_rng(wid)
        self._loss_rng = np.random.default_rng([app.seed, 0, 0])
        self._loss = 1.0
        self._epoch = 0

    def _fill(self) -> bool:
        app: CandleApp = self.app
        if not (self._loss > app.target_loss
                and self._epoch < app.max_epochs):
            if self.wid == 0:
                app.epochs_run = self._epoch
                app.final_loss = self._loss
            return False
        kernel = app.spec.phases[0].kernel
        self._queue.append(kernel.sample(self._rng))
        self._queue.append(_BARRIER)
        self._loss *= app.loss_decay * float(
            np.exp(self._loss_rng.normal(0.0, app.loss_noise)))
        self._epoch += 1
        if self.wid == 0:
            self._queue.append(Publish(app.topic, 1.0))
        return True

    def _state(self) -> dict:
        return {"rng": rng_state(self._rng),
                "loss_rng": rng_state(self._loss_rng),
                "loss": self._loss,
                "epoch": self._epoch}

    def _set_state(self, state: dict) -> None:
        self._rng = restore_rng(state["rng"])
        self._loss_rng = restore_rng(state["loss_rng"])
        self._loss = state["loss"]
        self._epoch = state["epoch"]


def build(target_loss: float = 0.25, loss_decay: float = 0.93,
          loss_noise: float = 0.05, max_epochs: int = 60,
          n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None) -> CandleApp:
    """CANDLE training-benchmark instance (accuracy-bounded epochs)."""
    cfg = cfg or skylake_config()
    kernel = KernelSpec(
        cycles=cycles_for_rate(EPOCH_RATE, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        jitter=0.01,
        shared_jitter=0.02,
    )
    spec = AppSpec(
        name="candle",
        description=(
            "Deep Learning based cancer suite. Benchmark code that uses "
            "TensorFlow to solve problems related to precision medicine "
            "for cancer."
        ),
        category=Category.CATEGORY_2,
        category_label="1/2",
        metric=OnlineMetric("Epochs per second (training phase)",
                            "epochs/s"),
        parallelism="openmp",
        phases=(PhaseSpec("train", kernel, iterations=max_epochs),),
        resource_bound="compute",
        has_fom=False,
    )
    return CandleApp(spec, target_loss=target_loss, loss_decay=loss_decay,
                     loss_noise=loss_noise, max_epochs=max_epochs,
                     n_workers=n_workers, seed=seed)
