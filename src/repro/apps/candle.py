"""CANDLE analogue — deep-learning cancer benchmark (paper Table II).

Category 1/2: online performance is well defined — epochs completed per
second during the training phase — but when training is bounded by a
target accuracy the number of epochs cannot be predicted in advance
(Section III-A), which is the Category-2 trait. The paper could not
instrument the real CANDLE (prebuilt TensorFlow binaries); this analogue
implements what the paper describes *in principle*: an epoch loop whose
length is decided online by a convergence criterion.

Each epoch performs a compute-heavy pass (DL training on CPU) and
updates a noisy, geometrically decaying validation loss; training stops
when the loss crosses the target or ``max_epochs`` is hit. Runs differ
by seed — exactly the unpredictability that puts accuracy-bounded
training in Category 2.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.engine import Publish

__all__ = ["build", "CandleApp", "EPOCH_RATE"]

EPOCH_RATE = 0.5  #: training epochs/s at nominal frequency

_BYTES_PER_CYCLE = 0.10   # moderately compute-bound (vectorized GEMMs)
_IPC = 2.5


class CandleApp(SyntheticApp):
    """Training loop with an online convergence criterion."""

    def __init__(self, spec: AppSpec, *, target_loss: float,
                 loss_decay: float, loss_noise: float, max_epochs: int,
                 n_workers: int, seed: int) -> None:
        super().__init__(spec, n_workers=n_workers, seed=seed)
        if not 0.0 < loss_decay < 1.0:
            raise ConfigurationError("loss_decay must lie in (0, 1)")
        if target_loss <= 0:
            raise ConfigurationError("target_loss must be positive")
        if max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1")
        self.target_loss = target_loss
        self.loss_decay = loss_decay
        self.loss_noise = loss_noise
        self.max_epochs = max_epochs
        self.epochs_run = 0
        self.final_loss = float("nan")

    def _body(self, barrier, wid: int) -> Generator:
        kernel = self.spec.phases[0].kernel
        rng = self._worker_rng(wid)
        # The loss trajectory is data-determined: every worker replays the
        # same stream, so all workers stop after the same epoch.
        loss_rng = np.random.default_rng([self.seed, 0, 0])
        loss = 1.0
        epoch = 0
        while loss > self.target_loss and epoch < self.max_epochs:
            yield kernel.sample(rng)
            yield barrier()
            loss *= self.loss_decay * float(
                np.exp(loss_rng.normal(0.0, self.loss_noise))
            )
            epoch += 1
            if wid == 0:
                yield Publish(self.topic, 1.0)
        if wid == 0:
            self.epochs_run = epoch
            self.final_loss = loss

    def total_iterations(self) -> int:
        # Unknown in advance — the defining Category-2 property.
        raise ConfigurationError(
            "CANDLE's epoch count is decided online by the convergence "
            "criterion and cannot be predicted (paper Table IV, Q5 = No)"
        )


def build(target_loss: float = 0.25, loss_decay: float = 0.93,
          loss_noise: float = 0.05, max_epochs: int = 60,
          n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None) -> CandleApp:
    """CANDLE training-benchmark instance (accuracy-bounded epochs)."""
    cfg = cfg or skylake_config()
    kernel = KernelSpec(
        cycles=cycles_for_rate(EPOCH_RATE, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        jitter=0.01,
        shared_jitter=0.02,
    )
    spec = AppSpec(
        name="candle",
        description=(
            "Deep Learning based cancer suite. Benchmark code that uses "
            "TensorFlow to solve problems related to precision medicine "
            "for cancer."
        ),
        category=Category.CATEGORY_2,
        category_label="1/2",
        metric=OnlineMetric("Epochs per second (training phase)",
                            "epochs/s"),
        parallelism="openmp",
        phases=(PhaseSpec("train", kernel, iterations=max_epochs),),
        resource_bound="compute",
        has_fom=False,
    )
    return CandleApp(spec, target_loss=target_loss, loss_decay=loss_decay,
                     loss_noise=loss_noise, max_epochs=max_epochs,
                     n_workers=n_workers, seed=seed)
