"""HACC analogue — cosmology N-body simulation (paper Table II).

Category 3: "many individual components with distinct performance
characteristics". Each timestep interleaves a compute-bound short-range
force kernel, a memory-bound long-range (FFT) kernel, and a periodic
analysis/output step that mostly waits on I/O. On top of that, the
short-range cost *grows* over the run as structure forms (clustering
deepens the tree walks), so timesteps per second drifts downward — the
paper's reason why "the number of timesteps per second cannot be used to
measure online performance reliably" (Section III-A).
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.body import ResumableBody, restore_rng, rng_state, _BARRIER
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.engine import Publish, Sleep

__all__ = ["build", "HaccApp"]

_SHORT_BPC = 0.02     # tree/force kernel: compute bound
_LONG_BPC = 3.0       # FFT/transpose: memory bound
_IO_SLEEP = 0.4       # analysis/output stall, seconds
_IO_EVERY = 10        # timesteps between outputs


class HaccApp(SyntheticApp):
    """Timestep loop with drifting per-step cost and mixed components."""

    def __init__(self, spec: AppSpec, *, n_steps: int, growth: float,
                 n_workers: int, seed: int) -> None:
        super().__init__(spec, n_workers=n_workers, seed=seed)
        self.n_steps = n_steps
        self.growth = growth

    def _body(self, barrier, wid: int) -> Iterator:
        return _HaccBody(self, barrier, wid)

    def total_iterations(self) -> int:
        return self.n_steps


class _HaccBody(ResumableBody):
    """One HACC timestep per fill: short-range, long-range, periodic I/O."""

    def __init__(self, app: HaccApp, barrier, wid: int) -> None:
        super().__init__(app, barrier, wid)
        self._rng = app._worker_rng(wid)
        self._shared_rng = app._phase_rng(0)
        self._step = 0

    def _fill(self) -> bool:
        app: HaccApp = self.app
        if self._step >= app.n_steps:
            return False
        short = app.spec.phases[0].kernel
        long_range = app.spec.phases[1].kernel
        # Clustering growth: the short-range kernel inflates over the
        # run, identically on every rank.
        inflation = (1.0 + app.growth) ** self._step
        shared = short.shared_factor(self._shared_rng) * inflation
        self._queue.append(short.sample(self._rng, shared))
        self._queue.append(_BARRIER)
        self._queue.append(long_range.sample(self._rng))
        self._queue.append(_BARRIER)
        if (self._step + 1) % _IO_EVERY == 0:
            self._queue.append(Sleep(_IO_SLEEP))
            self._queue.append(_BARRIER)
        if self.wid == 0:
            self._queue.append(Publish(app.topic, 1.0))
        self._step += 1
        return True

    def _state(self) -> dict:
        return {"rng": rng_state(self._rng),
                "shared_rng": rng_state(self._shared_rng),
                "step": self._step}

    def _set_state(self, state: dict) -> None:
        self._rng = restore_rng(state["rng"])
        self._shared_rng = restore_rng(state["shared_rng"])
        self._step = state["step"]


def build(n_steps: int = 80, growth: float = 0.02, n_workers: int = 24,
          seed: int = 0, cfg: NodeConfig | None = None) -> HaccApp:
    """HACC instance; per-step cost grows by ``growth`` per timestep."""
    cfg = cfg or skylake_config()
    short = KernelSpec(
        cycles=cycles_for_rate(4.0, _SHORT_BPC, cfg),
        bytes_per_cycle=_SHORT_BPC, ipc=1.8,
        jitter=0.02, shared_jitter=0.05,
    )
    long_range = KernelSpec(
        cycles=cycles_for_rate(6.0, _LONG_BPC, cfg),
        bytes_per_cycle=_LONG_BPC, ipc=1.2, jitter=0.01,
    )
    spec = AppSpec(
        name="hacc",
        description=(
            "Cosmology application that uses N-body techniques for "
            "simulation of galaxies. Many individual components with "
            "distinct performance characteristics."
        ),
        category=Category.CATEGORY_3,
        metric=None,
        parallelism="mpi",
        phases=(
            PhaseSpec("short-range", short, iterations=n_steps,
                      publish=False),
            PhaseSpec("long-range", long_range, iterations=n_steps,
                      publish=False),
        ),
        resource_bound="compute",   # Table IV: dominated by the force kernel
        has_fom=True,
    )
    return HaccApp(spec, n_steps=n_steps, growth=growth,
                   n_workers=n_workers, seed=seed)
