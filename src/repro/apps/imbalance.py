"""The paper's Listing-1 MPI load-imbalance example.

The code sample motivates the whole study (Section II): an MPI program
whose outer loop always progresses at exactly one iteration per second
(the highest rank is on the critical path with 1,000,000 work units —
one unit per microsecond of ``usleep``), but whose MIPS reading explodes
by ~20x when the load is unbalanced, because waiting ranks busy-poll at
``MPI_Barrier``. Table I's lesson: hardware-counter metrics capture
wasted cycles, not progress.

Two progress definitions are published on separate topics:

* ``progress/imbalance/iterations`` — Definition 1, one unit per outer
  iteration (iterations per second);
* ``progress/imbalance/work_units`` — Definition 2, the total work units
  all ranks completed that iteration (work units per second).
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.body import ResumableBody, _BARRIER
from repro.apps.kernels import KernelSpec, PhaseSpec
from repro.core.categories import Category, OnlineMetric
from repro.exceptions import ConfigurationError
from repro.runtime.engine import Publish, Sleep, Work

__all__ = ["build", "ImbalanceApp", "WORK_UNITS_CRITICAL"]

WORK_UNITS_CRITICAL = 1_000_000  #: work units on the critical-path rank

# usleep + MPI-stack overhead, per second slept: a small compute burst
# retiring ~1.7e8 instructions. This is what keeps the equal-work MIPS
# reading at a few thousand (Table I: 4115.5) instead of zero.
_OVERHEAD_CYCLES = 1.65e7
_OVERHEAD_INS = 1.71e8


class ImbalanceApp(SyntheticApp):
    """Listing 1: ``do_equal_work`` / ``do_unequal_work`` for 5 iterations."""

    def __init__(self, spec: AppSpec, *, equal: bool, n_iterations: int,
                 n_workers: int, seed: int) -> None:
        super().__init__(spec, n_workers=n_workers, seed=seed)
        self.equal = equal
        self.n_iterations = n_iterations

    def _sleep_seconds(self, wid: int) -> float:
        # Listing 1 passes world_rank + 1, so rank r sleeps (r+1)/size
        # seconds; the highest rank always sleeps the full second.
        if self.equal:
            return 1.0
        return (wid + 1) / self.n_workers

    def work_units(self, wid: int) -> float:
        """Work units rank ``wid`` performs per iteration (1 per us)."""
        return self._sleep_seconds(wid) * 1e6

    def total_work_units_per_iteration(self) -> float:
        """Work units across all ranks for one outer iteration."""
        return sum(self.work_units(w) for w in range(self.n_workers))

    def _body(self, barrier, wid: int) -> Iterator:
        return _ImbalanceBody(self, barrier, wid)

    def total_iterations(self) -> int:
        return self.n_iterations


class _ImbalanceBody(ResumableBody):
    """One outer iteration per fill; only the loop counter is state."""

    def __init__(self, app: ImbalanceApp, barrier, wid: int) -> None:
        super().__init__(app, barrier, wid)
        self._it = 0

    def _fill(self) -> bool:
        app: ImbalanceApp = self.app
        if self._it >= app.n_iterations:
            return False
        sleep_s = app._sleep_seconds(self.wid)
        # do_(un)equal_work: usleep performs the "work"; the tiny
        # Work quantum accounts for syscall/MPI overhead instructions.
        self._queue.append(Sleep(sleep_s))
        self._queue.append(Work(cycles=_OVERHEAD_CYCLES * sleep_s,
                                instructions=_OVERHEAD_INS * sleep_s))
        self._queue.append(_BARRIER)
        if self.wid == 0:
            self._queue.append(
                Publish("progress/imbalance/iterations", 1.0))
            self._queue.append(
                Publish("progress/imbalance/work_units",
                        app.total_work_units_per_iteration()))
        self._it += 1
        return True

    def _state(self) -> dict:
        return {"it": self._it}

    def _set_state(self, state: dict) -> None:
        self._it = state["it"]


def build(equal: bool = True, n_iterations: int = 5, n_workers: int = 24,
          seed: int = 0, cfg=None) -> ImbalanceApp:
    """Listing-1 instance; ``equal`` selects the ``do_work`` variant."""
    if n_iterations < 1:
        raise ConfigurationError("n_iterations must be >= 1")
    # The placeholder kernel is never sampled (custom body), but AppSpec
    # requires a phase; it documents the loop structure.
    placeholder = KernelSpec(cycles=_OVERHEAD_CYCLES,
                             ipc=_OVERHEAD_INS / _OVERHEAD_CYCLES)
    variant = "equal" if equal else "unequal"
    spec = AppSpec(
        name="imbalance",
        description=(
            f"Listing-1 MPI code sample (do_{variant}_work): fixed outer "
            "loop at one iteration/s; the highest rank is always on the "
            "critical path."
        ),
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Iterations per second", "iterations/s"),
        parallelism="mpi",
        phases=(PhaseSpec("outer-loop", placeholder,
                          iterations=n_iterations),),
        resource_bound="compute",
    )
    return ImbalanceApp(spec, equal=equal, n_iterations=n_iterations,
                        n_workers=n_workers, seed=seed)
