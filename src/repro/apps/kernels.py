"""Work kernels and phases for the synthetic applications.

A :class:`KernelSpec` describes one iteration's per-worker resource
demand in machine-independent terms:

* ``cycles`` — compute cycles retired per iteration,
* ``bytes_per_cycle`` — memory traffic intensity (bytes of
  bandwidth-time demand per compute cycle); together with the node's
  frequency and per-core link bandwidth this fixes the compute fraction —
  i.e. the application's beta, per the engine's exact Eq.-1 behaviour,
* ``ipc`` — instructions retired per cycle (sets MIPS),
* ``misses_per_instruction`` — explicit L3 MPO for latency-bound kernels;
  streaming kernels leave it None and get ``bytes / cache_line``,
* ``jitter`` / ``shared_jitter`` — lognormal sigma of per-iteration noise
  that is private per worker (load imbalance) or common to all workers
  (iteration-to-iteration variability, visible as fluctuation in the
  1 Hz progress series even though the barrier removes private noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig
from repro.runtime.engine import Work

__all__ = ["KernelSpec", "PhaseSpec", "cycles_for_rate",
           "lognormal_factor", "sample_quantities"]


def lognormal_factor(draw):
    """Lognormal jitter multiplier from a normal draw: ``exp(draw)``.

    Shared by the object path (scalar draws) and the vector engine's
    batched pre-draws; ``numpy.exp`` is bit-identical between array and
    scalar application, so batching preserves parity.
    """
    return np.exp(draw)


def sample_quantities(base_cycles, factor, bytes_per_cycle, ipc,
                      misses_per_instruction):
    """The four :class:`~repro.runtime.engine.Work` quantities of one
    iteration scaled by ``factor``.

    This is the single home of the iteration -> work transfer function;
    :meth:`KernelSpec.sample` applies it to scalars, the vector engine to
    whole (node, worker) arrays.
    """
    cycles = base_cycles * factor
    nbytes = cycles * bytes_per_cycle
    ins = cycles * ipc
    misses = None
    if misses_per_instruction is not None:
        misses = ins * misses_per_instruction
    return cycles, nbytes, ins, misses


@dataclass(frozen=True)
class KernelSpec:
    """Per-worker, per-iteration resource demand (see module docstring)."""

    cycles: float
    bytes_per_cycle: float = 0.0
    ipc: float = 1.0
    misses_per_instruction: float | None = None
    jitter: float = 0.0
    shared_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigurationError(f"cycles must be positive, got {self.cycles}")
        if self.bytes_per_cycle < 0:
            raise ConfigurationError("bytes_per_cycle must be non-negative")
        if self.ipc <= 0:
            raise ConfigurationError(f"ipc must be positive, got {self.ipc}")
        if self.misses_per_instruction is not None and self.misses_per_instruction < 0:
            raise ConfigurationError("misses_per_instruction must be non-negative")
        if self.jitter < 0 or self.shared_jitter < 0:
            raise ConfigurationError("jitter sigmas must be non-negative")

    def sample(self, worker_rng: np.random.Generator,
               shared_factor: float = 1.0) -> Work:
        """Draw one iteration's :class:`~repro.runtime.engine.Work`.

        ``shared_factor`` is the iteration-wide multiplier (identical for
        every worker of the same iteration); private jitter is drawn from
        ``worker_rng``.
        """
        factor = shared_factor
        if self.jitter > 0:
            factor *= float(lognormal_factor(worker_rng.normal(0.0, self.jitter)))
        cycles, nbytes, ins, misses = sample_quantities(
            self.cycles, factor, self.bytes_per_cycle, self.ipc,
            self.misses_per_instruction)
        return Work(cycles=cycles, bytes=nbytes, instructions=ins,
                    l3_misses=misses)

    def shared_factor(self, iteration_rng: np.random.Generator) -> float:
        """Iteration-wide multiplier drawn from the iteration's RNG."""
        if self.shared_jitter <= 0:
            return 1.0
        return float(lognormal_factor(
            iteration_rng.normal(0.0, self.shared_jitter)))

    def beta_at(self, cfg: NodeConfig) -> float:
        """Analytic beta of this kernel on ``cfg`` (uncontended memory):
        the compute fraction of iteration time at the nominal frequency."""
        compute = 1.0 / cfg.f_nominal
        memory = self.bytes_per_cycle / cfg.core_link_bandwidth
        return compute / (compute + memory)


@dataclass(frozen=True)
class PhaseSpec:
    """A named run of identical iterations (paper: VMC1/VMC2/DMC blocks,
    OpenMC inactive/active batches, AMG setup/solve, ...)."""

    name: str
    kernel: KernelSpec
    iterations: int
    progress_per_iteration: float = 1.0
    publish: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ConfigurationError("iterations must be non-negative")
        if self.progress_per_iteration < 0:
            raise ConfigurationError("progress_per_iteration must be non-negative")


def cycles_for_rate(rate: float, bytes_per_cycle: float,
                    cfg: NodeConfig) -> float:
    """Per-worker cycles per iteration so that iterations complete at
    ``rate`` per second at the nominal frequency (uncontended memory).

    This is the calibration inverse of the engine's iteration-time model
    ``t = C/f + C*bpc/link``.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    t_per_cycle = 1.0 / cfg.f_nominal + bytes_per_cycle / cfg.core_link_bandwidth
    return 1.0 / (rate * t_per_cycle)
