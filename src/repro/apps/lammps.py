"""LAMMPS analogue — Lennard-Jones molecular dynamics (paper §IV-B1).

Category 1, compute-bound (Table VI: beta = 1.00, MPO = 0.32e-3). The
paper's setup: pure MPI, 24 pinned processes, 40,000 atoms, an outer
timestep loop (the VERLET run function) executing ~20 timesteps/s;
progress is published once per timestep as ``n_atoms`` atom-timesteps, so
the 1 Hz monitor reports atom-timesteps per second. The online metric is
extremely consistent (Fig. 1, left).
"""

from __future__ import annotations

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.hardware.config import NodeConfig, skylake_config

__all__ = ["build", "N_ATOMS", "TIMESTEP_RATE"]

N_ATOMS = 40_000          #: atoms simulated (paper's fixed problem size)
TIMESTEP_RATE = 20.0      #: timesteps/s at nominal frequency (paper: ~20)

# Calibration: bytes_per_cycle = 0.02 puts the memory share of iteration
# time at ~0.5% (beta rounds to 1.00) while producing MPO = 0.32e-3 with
# the IPC below: misses/ins = (0.02/64) / 0.977.
_BYTES_PER_CYCLE = 0.02
_IPC = 0.977


def build(n_steps: int = 600, n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None) -> SyntheticApp:
    """LAMMPS Lennard-Jones benchmark instance.

    ``n_steps`` timesteps at roughly :data:`TIMESTEP_RATE` per second —
    the default runs ~30 s uncapped.
    """
    cfg = cfg or skylake_config()
    kernel = KernelSpec(
        cycles=cycles_for_rate(TIMESTEP_RATE, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        jitter=0.004,          # near-constant per-step cost
        shared_jitter=0.002,
    )
    spec = AppSpec(
        name="lammps",
        description=(
            "Molecular dynamics package that uses N-body simulation "
            "techniques. No detected phases in the application."
        ),
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Atom timesteps per second", "atom-steps/s",
                            per_iteration=float(N_ATOMS)),
        parallelism="mpi",
        phases=(
            PhaseSpec("verlet", kernel, iterations=n_steps,
                      progress_per_iteration=float(N_ATOMS)),
        ),
        resource_bound="compute",
        has_fom=False,
    )
    return SyntheticApp(spec, n_workers=n_workers, seed=seed)
