"""Nek5000 analogue — spectral-element CFD library (paper Table II).

Category 3: Nek5000 is used as a library inside larger applications, and
its per-timestep cost varies with the flow state — the pressure solve
runs a data-dependent number of inner iterations (CFL-driven timestep
adaptation). Timesteps per second therefore does not stay uniform, and a
high-level rate "provides little insight into the progress of the
science" (Section III-A).

The per-step work multiplier follows a bounded random walk shared by all
ranks, so the published step rate wanders by design.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.body import ResumableBody, restore_rng, rng_state, _BARRIER
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.engine import Publish

__all__ = ["build", "NekApp"]

_BPC = 1.2   # spectral-element operators: mixed compute/memory
_WALK_LO, _WALK_HI = 0.5, 3.0


class NekApp(SyntheticApp):
    """Timestep loop with a random-walking inner-solve cost."""

    def __init__(self, spec: AppSpec, *, n_steps: int, walk_sigma: float,
                 n_workers: int, seed: int) -> None:
        super().__init__(spec, n_workers=n_workers, seed=seed)
        self.n_steps = n_steps
        self.walk_sigma = walk_sigma

    def _body(self, barrier, wid: int) -> Iterator:
        return _NekBody(self, barrier, wid)

    def total_iterations(self) -> int:
        return self.n_steps


class _NekBody(ResumableBody):
    """One timestep per fill; the walk multiplier is explicit state."""

    def __init__(self, app: NekApp, barrier, wid: int) -> None:
        super().__init__(app, barrier, wid)
        self._rng = app._worker_rng(wid)
        self._walk_rng = np.random.default_rng([app.seed, 0, 7])
        self._multiplier = 1.0
        self._step = 0

    def _fill(self) -> bool:
        app: NekApp = self.app
        if self._step >= app.n_steps:
            return False
        kernel = app.spec.phases[0].kernel
        self._multiplier *= float(
            np.exp(self._walk_rng.normal(0.0, app.walk_sigma)))
        self._multiplier = float(
            np.clip(self._multiplier, _WALK_LO, _WALK_HI))
        self._queue.append(kernel.sample(self._rng, self._multiplier))
        self._queue.append(_BARRIER)
        if self.wid == 0:
            self._queue.append(Publish(app.topic, 1.0))
        self._step += 1
        return True

    def _state(self) -> dict:
        return {"rng": rng_state(self._rng),
                "walk_rng": rng_state(self._walk_rng),
                "multiplier": self._multiplier,
                "step": self._step}

    def _set_state(self, state: dict) -> None:
        self._rng = restore_rng(state["rng"])
        self._walk_rng = restore_rng(state["walk_rng"])
        self._multiplier = state["multiplier"]
        self._step = state["step"]


def build(n_steps: int = 150, walk_sigma: float = 0.12, n_workers: int = 24,
          seed: int = 0, cfg: NodeConfig | None = None) -> NekApp:
    """Nek5000 instance with CFL-style per-step cost wandering."""
    cfg = cfg or skylake_config()
    kernel = KernelSpec(
        cycles=cycles_for_rate(5.0, _BPC, cfg),
        bytes_per_cycle=_BPC, ipc=1.5, jitter=0.02,
    )
    spec = AppSpec(
        name="nek5000",
        description=(
            "Computational fluid dynamics library that is a part of "
            "larger applications."
        ),
        category=Category.CATEGORY_3,
        metric=None,
        parallelism="mpi",
        phases=(PhaseSpec("timestep", kernel, iterations=n_steps,
                          publish=False),),
        resource_bound="compute",
        has_fom=True,
    )
    return NekApp(spec, n_steps=n_steps, walk_sigma=walk_sigma,
                  n_workers=n_workers, seed=seed)
