"""OpenMC analogue — Monte Carlo neutron transport (paper §IV-B5).

Category 1, memory-latency bound but frequency-sensitive (Table VI,
active phase: beta = 0.93, MPO = 0.20e-3). Two phases: *inactive*
batches (source convergence, no tallies — faster) and *active* batches.
OpenMP with 24 pinned threads; the paper uses 10 inactive + 300 active
batches over 100,000 particles, publishing progress once per batch
(~1/s) as the particles simulated, so the monitor reports particles per
second.

Two reproduction-relevant details:

* **Latency vs. bandwidth** — OpenMC's unstructured memory accesses make
  it *latency* bound: its miss count is low (MPO = 0.2e-3) but each miss
  stalls the core for a full round trip. The kernel therefore sets
  ``bytes_per_cycle`` to the *bandwidth-time equivalent* of that latency
  (yielding beta = 0.93) and pins the counter-visible miss rate
  separately via ``misses_per_instruction``.
* **The zero-progress glitch** — the paper notes OpenMC's progress is
  "occasionally reported as zero ... due to a flaw in the design of the
  ZeroMQ-based progress monitoring framework". The spec carries a
  transport drop probability; harnesses apply it to the app's message
  bus, reproducing the spurious zeros of Fig. 3.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.hardware.config import NodeConfig, skylake_config

__all__ = ["build", "N_PARTICLES", "ACTIVE_BATCH_RATE"]

N_PARTICLES = 100_000     #: particles per batch (paper's problem size)
ACTIVE_BATCH_RATE = 1.0   #: active batches/s at nominal frequency
INACTIVE_BATCH_RATE = 2.0  #: inactive batches/s (no tallies)

# beta = 0.93 -> latency-equivalent bytes/cycle; MPO pinned explicitly.
_BYTES_PER_CYCLE = (0.07 / 0.93) * (12e9 / 3.3e9)
_IPC = 1.0
_MPO = 0.20e-3


def _kernel(rate: float, cfg: NodeConfig) -> KernelSpec:
    return KernelSpec(
        cycles=cycles_for_rate(rate, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        misses_per_instruction=_MPO,
        jitter=0.01,
        shared_jitter=0.015,
    )


def build(inactive_batches: int = 10, active_batches: int = 60,
          n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None,
          transport_drop_prob: float = 0.05) -> SyntheticApp:
    """OpenMC assembly-benchmark instance.

    Defaults scale the paper's 300 active batches down to ~60 s; pass
    ``inactive_batches=0`` to measure the active phase alone.
    """
    cfg = cfg or skylake_config()
    phases = []
    if inactive_batches:
        phases.append(
            PhaseSpec("inactive", _kernel(INACTIVE_BATCH_RATE, cfg),
                      iterations=inactive_batches,
                      progress_per_iteration=float(N_PARTICLES))
        )
    phases.append(
        PhaseSpec("active", _kernel(ACTIVE_BATCH_RATE, cfg),
                  iterations=active_batches,
                  progress_per_iteration=float(N_PARTICLES))
    )
    spec = AppSpec(
        name="openmc",
        description=(
            "Monte Carlo neutron transport code that simulates particle "
            "movement inside a nuclear reactor. Phased application."
        ),
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Particles per second", "particles/s",
                            per_iteration=float(N_PARTICLES)),
        parallelism="openmp",
        phases=tuple(phases),
        resource_bound="memory latency",
        has_fom=False,
        transport_drop_prob=transport_drop_prob,
    )
    return SyntheticApp(spec, n_workers=n_workers, seed=seed)
