"""QMCPACK analogue — performance-NiO benchmark (paper §IV-B3).

Category 1, compute-bound (Table VI, DMC phase: beta = 0.84, MPO =
3.91e-3). The benchmark has three phases — VMC1, VMC2 and DMC — each
computing *blocks* at its own rate, so the phases are clearly
distinguishable in the blocks-per-second trace (Fig. 1, right). The
paper's setup: pure OpenMP, 24 pinned threads; the DMC phase (15 steps
per block, 3000 blocks) dominates and is the phase used for the
power-capping evaluation (Fig. 4c); progress is published from the
block-reporting level outside the parallel region, ~16 blocks/s.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.hardware.config import NodeConfig, skylake_config

__all__ = ["build", "DMC_RATE", "VMC1_RATE", "VMC2_RATE"]

VMC1_RATE = 25.0   #: blocks/s in VMC1 at nominal frequency
VMC2_RATE = 20.0   #: blocks/s in VMC2 at nominal frequency
DMC_RATE = 16.0    #: blocks/s in DMC at nominal frequency (paper: ~16)

# DMC calibration: beta = 0.84 -> bytes/cycle; MPO = 3.91e-3 via IPC.
_BYTES_PER_CYCLE = (0.16 / 0.84) * (12e9 / 3.3e9)
_IPC = (_BYTES_PER_CYCLE / 64.0) / 3.91e-3


def _kernel(rate: float, cfg: NodeConfig, jitter: float) -> KernelSpec:
    return KernelSpec(
        cycles=cycles_for_rate(rate, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        jitter=0.01,
        shared_jitter=jitter,
    )


def build(vmc1_blocks: int = 150, vmc2_blocks: int = 150,
          dmc_blocks: int = 480, n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None) -> SyntheticApp:
    """performance-NiO benchmark instance.

    Defaults are scaled down from the paper's 3000 DMC blocks to ~30 s of
    DMC; pass ``vmc1_blocks=0, vmc2_blocks=0`` to run the DMC phase alone
    (as the characterization and Fig. 4c measurements do).
    """
    cfg = cfg or skylake_config()
    phases = []
    if vmc1_blocks:
        phases.append(PhaseSpec("vmc1", _kernel(VMC1_RATE, cfg, 0.015),
                                iterations=vmc1_blocks))
    if vmc2_blocks:
        phases.append(PhaseSpec("vmc2", _kernel(VMC2_RATE, cfg, 0.015),
                                iterations=vmc2_blocks))
    phases.append(PhaseSpec("dmc", _kernel(DMC_RATE, cfg, 0.02),
                            iterations=dmc_blocks))
    spec = AppSpec(
        name="qmcpack",
        description=(
            "Monte Carlo quantum chemistry code that samples particle "
            "positions randomly. Phased application."
        ),
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Blocks per second", "blocks/s"),
        parallelism="openmp",
        phases=tuple(phases),
        resource_bound="compute",
        has_fom=True,
    )
    return SyntheticApp(spec, n_workers=n_workers, seed=seed)
