"""Application registry: build the paper's applications by name.

Builders accept per-app sizing keywords (see each module); all accept
``n_workers``, ``seed`` and ``cfg``.
"""

from __future__ import annotations

from typing import Callable

from repro.apps import (
    amg,
    base,
    candle,
    hacc,
    imbalance,
    lammps,
    nek5000,
    openmc,
    qmcpack,
    stream,
    urban,
)
from repro.exceptions import ConfigurationError

__all__ = ["available", "build", "get_spec", "BUILDERS"]

#: Application name -> builder function.
BUILDERS: dict[str, Callable[..., base.SyntheticApp]] = {
    "lammps": lammps.build,
    "amg": amg.build,
    "qmcpack": qmcpack.build,
    "stream": stream.build,
    "openmc": openmc.build,
    "candle": candle.build,
    "imbalance": imbalance.build,
    "hacc": hacc.build,
    "nek5000": nek5000.build,
    "urban": urban.build,
}


def available() -> list[str]:
    """Names of all registered applications, sorted."""
    return sorted(BUILDERS)


def build(name: str, **kwargs) -> base.SyntheticApp:
    """Construct an application instance by name.

    Keyword arguments are forwarded to the app's builder (sizing, seed,
    worker count, node config).
    """
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; available: {available()}"
        ) from None
    return builder(**kwargs)


def get_spec(name: str, **kwargs) -> base.AppSpec:
    """The :class:`~repro.apps.base.AppSpec` of an application (builds a
    default instance and returns its spec)."""
    return build(name, **kwargs).spec
