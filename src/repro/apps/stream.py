"""STREAM analogue — memory-bandwidth benchmark (paper §IV-B4).

Category 1, memory-bandwidth bound (Table VI: beta = 0.37, MPO =
50.9e-3). OpenMP with 24 pinned threads; each iteration performs the
four kernels (copy, scale, add, triad) and the instrumented outer loop
publishes one progress unit per iteration, ~16 iterations/s. STREAM's
aggregate traffic runs the node's memory system near saturation, which
is what makes it the paper's stress case for RAPL (Figs. 4d and 5): the
impact of capping is dominated by what happens to achievable bandwidth,
not core throughput.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category, OnlineMetric
from repro.hardware.config import NodeConfig, skylake_config

__all__ = ["build", "ITERATION_RATE"]

ITERATION_RATE = 16.0  #: copy+scale+add+triad iterations/s at nominal freq

# beta = 0.37 -> bytes/cycle; MPO = 50.9e-3 via IPC.
_BYTES_PER_CYCLE = (0.63 / 0.37) * (12e9 / 3.3e9)
_IPC = (_BYTES_PER_CYCLE / 64.0) / 50.9e-3


def build(n_iterations: int = 500, n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None) -> SyntheticApp:
    """STREAM benchmark instance (~:data:`ITERATION_RATE` iterations/s)."""
    cfg = cfg or skylake_config()
    kernel = KernelSpec(
        cycles=cycles_for_rate(ITERATION_RATE, _BYTES_PER_CYCLE, cfg),
        bytes_per_cycle=_BYTES_PER_CYCLE,
        ipc=_IPC,
        jitter=0.004,
        shared_jitter=0.004,
    )
    spec = AppSpec(
        name="stream",
        description=(
            "Memory bandwidth benchmark designed to stress-test the "
            "memory subsystem."
        ),
        category=Category.CATEGORY_1,
        metric=OnlineMetric("Iterations per second", "iterations/s"),
        parallelism="openmp",
        phases=(
            PhaseSpec("triad-loop", kernel, iterations=n_iterations),
        ),
        resource_bound="memory bandwidth",
        has_fom=True,
    )
    return SyntheticApp(spec, n_workers=n_workers, seed=seed)
