"""URBAN analogue — multiphysics city-infrastructure suite (paper §III-A).

Category 3: URBAN couples the Nek5000 CFD library with EnergyPlus (a
building-energy simulator), and the two "run at timescales that are
orders of magnitude apart". An arbitrary combined metric such as
"buildings simulated per second" has no power-management meaning because
it does not translate to the performance of the component applications.

This analogue runs two concurrent components on disjoint core sets:

* ``urban/nek`` — a fast CFD loop (tens of steps/s) on half the cores,
* ``urban/eplus`` — a slow building-energy loop (~0.2 steps/s) on the
  other half,

each publishing on its own topic. The paper's proposed remedy — a
weighted combination of component progress — is implemented in
:mod:`repro.core.composite` and exercised against this application.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apps.base import AppSpec, SyntheticApp
from repro.apps.kernels import KernelSpec, PhaseSpec, cycles_for_rate
from repro.core.categories import Category
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.engine import TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["build", "UrbanApp", "NEK_RATE", "EPLUS_RATE"]

NEK_RATE = 40.0     #: CFD timesteps/s at nominal frequency
EPLUS_RATE = 0.2    #: building-energy timesteps/s at nominal frequency


class UrbanApp(SyntheticApp):
    """Two concurrent component apps on disjoint cores."""

    def __init__(self, spec: AppSpec, components: list[SyntheticApp],
                 n_workers: int, seed: int) -> None:
        super().__init__(spec, n_workers=n_workers, seed=seed)
        self.components = components

    def launch(self, engine: "Engine", core_offset: int = 0) -> list[TaskState]:
        tasks: list[TaskState] = []
        offset = core_offset
        for comp in self.components:
            tasks.extend(comp.launch(engine, core_offset=offset))
            offset += comp.n_workers
        return tasks

    def total_iterations(self) -> int:
        raise ConfigurationError(
            "URBAN has no single iteration space; inspect .components "
            "(paper: Category 3, multi-component)"
        )

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["components"] = [c.snapshot() for c in self.components]
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        for comp, comp_state in zip(self.components, state["components"]):
            comp.restore(comp_state)


def build(duration_steps: int = 40, n_workers: int = 24, seed: int = 0,
          cfg: NodeConfig | None = None) -> UrbanApp:
    """URBAN instance: Nek component on the first half of the cores,
    EnergyPlus component on the second half.

    ``duration_steps`` sets the slow component's step count scale: the
    fast component runs ``duration_steps * NEK_RATE / EPLUS_RATE`` steps
    so both components finish at roughly the same time... which at the
    defaults is ~200 s of simulated time; the harness normally bounds the
    run with ``engine.run(until=...)`` instead.
    """
    cfg = cfg or skylake_config()
    if n_workers < 2:
        raise ConfigurationError("URBAN needs at least 2 workers")
    half = n_workers // 2

    nek_kernel = KernelSpec(
        cycles=cycles_for_rate(NEK_RATE, 1.2, cfg),
        bytes_per_cycle=1.2, ipc=1.5, jitter=0.02, shared_jitter=0.04,
    )
    eplus_kernel = KernelSpec(
        cycles=cycles_for_rate(EPLUS_RATE, 0.15, cfg),
        bytes_per_cycle=0.15, ipc=1.1, jitter=0.03,
    )
    nek_steps = int(duration_steps * NEK_RATE / EPLUS_RATE)

    nek = SyntheticApp(
        AppSpec(
            name="urban/nek",
            description="URBAN component: Nek5000 CFD around buildings.",
            category=Category.CATEGORY_3,
            metric=None,
            parallelism="openmp",
            phases=(PhaseSpec("cfd-step", nek_kernel, iterations=nek_steps),),
            resource_bound="compute",
        ),
        n_workers=half, seed=seed,
    )
    eplus = SyntheticApp(
        AppSpec(
            name="urban/eplus",
            description="URBAN component: EnergyPlus building-energy model.",
            category=Category.CATEGORY_3,
            metric=None,
            parallelism="openmp",
            phases=(PhaseSpec("building-step", eplus_kernel,
                              iterations=duration_steps),),
            resource_bound="compute",
        ),
        n_workers=n_workers - half, seed=seed + 1,
    )
    spec = AppSpec(
        name="urban",
        description=(
            "Collection of applications for modeling and simulation of "
            "city infrastructure and transport mechanisms. Multiphysics "
            "application where individual components run at different "
            "timescales."
        ),
        category=Category.CATEGORY_3,
        metric=None,
        parallelism="openmp",
        phases=(PhaseSpec("composite", nek_kernel, iterations=0,
                          publish=False),),
        resource_bound="component-dependent",
    )
    return UrbanApp(spec, [nek, eplus], n_workers=n_workers, seed=seed)
