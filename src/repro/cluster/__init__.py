"""Multi-node cluster simulation (extension).

The paper notes its single-node study "directly maps to a multi node
study without any change" and motivates the work with hierarchical,
job-level power management; its related work (Rountree et al.) observes
that *manufacturing variability* between nodes becomes a first-order
performance problem once power is capped. This subpackage provides that
scale-up:

* :mod:`repro.cluster.variability` — per-node perturbation of the power
  model (leakage / dynamic coefficient spread),
* :mod:`repro.cluster.node_instance` — one node's full stack (hardware,
  firmware, telemetry, budget policy, application) advanced in epochs,
* :mod:`repro.cluster.lockstep` — the epoch-advance/rebalance loop
  shared by the cluster simulation and the power-aware scheduler,
* :mod:`repro.cluster.sharding` — the same lockstep loop over
  long-lived shard worker processes; serial and sharded paths run the
  identical step function, so results are bit-for-bit equal,
* :mod:`repro.cluster.simulation` — lockstep cluster execution with a
  pluggable cluster-level power policy,
* :mod:`repro.cluster.policies` — uniform budgets vs a progress-aware
  rebalancer that shifts power toward the critical-path nodes (the use
  case the paper's online-progress metric enables),
* :mod:`repro.cluster.elastic` — checkpoint-powered elasticity: the
  :class:`~repro.cluster.elastic.ShardBalancer` migrates nodes between
  shards from measured epoch wall times (results invariant by the
  parity contract), and :func:`~repro.cluster.elastic.rewind_cluster` /
  :func:`~repro.cluster.elastic.rewind_scheduler` resume or time-travel
  replay recorded runs from
  :class:`~repro.runtime.runfile.RunCheckpoint` files.
"""

from repro.cluster.elastic import (
    MigrationPlan,
    NodeMigration,
    ShardBalancer,
    rewind_cluster,
    rewind_scheduler,
)
from repro.cluster.lockstep import (
    advance_lockstep,
    collect_rates,
    rebalance_nodes,
)
from repro.cluster.node_instance import NodeInstance
from repro.cluster.policies import ProgressAwareRebalancer, UniformPowerPolicy
from repro.cluster.sharding import (
    NodeTelemetry,
    PayloadStats,
    ShardedLockstep,
    StepRequest,
    StepResult,
    step_node,
)
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.variability import perturb_config

__all__ = [
    "NodeInstance",
    "ClusterSimulation",
    "UniformPowerPolicy",
    "ProgressAwareRebalancer",
    "perturb_config",
    "advance_lockstep",
    "collect_rates",
    "rebalance_nodes",
    "PayloadStats",
    "ShardedLockstep",
    "StepRequest",
    "StepResult",
    "NodeTelemetry",
    "step_node",
    "NodeMigration",
    "MigrationPlan",
    "ShardBalancer",
    "rewind_cluster",
    "rewind_scheduler",
]
