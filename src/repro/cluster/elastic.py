"""Checkpoint-powered elasticity: rebalancing, resumption, replay.

The paper's thesis is that a fixed allocation wastes what a dynamic one
recovers — power should flow to where progress stalls. This module
applies the same idea one level up, to *compute placement*: because PR 4
made every node's full mid-run state shippable
(:meth:`~repro.cluster.node_instance.NodeInstance.snapshot`) and the
lockstep parity contract guarantees bit-identical series for any
node-to-shard assignment, nodes can move while a run is in flight —
and whole runs can stop, resume, and replay. Three capabilities share
the machinery:

* **Dynamic shard rebalancing** — :class:`ShardBalancer` watches the
  per-shard epoch wall times :class:`~repro.cluster.sharding
  .ShardedLockstep` measures and migrates nodes from the slowest shard
  to the fastest (``checkpoint() → add_nodes()``, cross-engine safe:
  an object node lands in a vector host's fallback slot and vice
  versa). Purely a wall-clock lever; simulated results are invariant.
* **Crash-resumable runs** — the epoch loops
  (:meth:`~repro.cluster.simulation.ClusterSimulation.run`,
  :meth:`~repro.scheduler.scheduler.PowerAwareScheduler.run`, the
  daemon tick) periodically write atomic
  :class:`~repro.runtime.runfile.RunCheckpoint` files; a ``kill -9``
  mid-run resumes from the last file and finishes bit-equal to the
  uninterrupted run.
* **Time-travel replay** — :func:`rewind_cluster` /
  :func:`rewind_scheduler` rebuild a run at any checkpointed epoch,
  optionally under a *different* policy or configuration, answering
  "what would this run have done from epoch N under schedule B?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.runtime.runfile import resolve_checkpoint

__all__ = [
    "NodeMigration",
    "MigrationPlan",
    "ShardBalancer",
    "rewind_cluster",
    "rewind_scheduler",
]


@dataclass(frozen=True)
class NodeMigration:
    """One node's move from shard ``src`` to shard ``dst``."""

    node_id: int
    src: int
    dst: int


@dataclass(frozen=True)
class MigrationPlan:
    """A balancer decision: the moves to apply before the next epoch.

    ``observation`` is the balancer's observation count when the plan
    was issued (a wall-clock-free sequence number, useful in traces).
    """

    observation: int
    moves: tuple[NodeMigration, ...]


class ShardBalancer:
    """Move nodes off the slowest shard when the skew justifies it.

    After every sharded epoch step the lockstep offers the balancer the
    measured per-shard wall times (:meth:`observe`). When the slowest
    shard exceeds ``threshold`` times the fastest, the balancer plans to
    move the tail of the slow shard's node list to the fast shard —
    enough nodes to roughly equalise the shards' per-node costs, but
    never the slow shard's last node, and at most ``max_moves`` per
    plan when set.

    Wall times are host measurements and therefore nondeterministic;
    that is safe *only* because placement cannot affect simulated
    results (the lockstep parity contract — see
    :mod:`repro.runtime.hosttime` for the audit reasoning). Two runs of
    the same seed may migrate differently and still produce
    bit-identical series.

    Parameters
    ----------
    threshold:
        Slowest/fastest wall-time ratio that triggers a plan (> 1).
    warmup:
        Observations to ignore before the first plan — early epochs are
        dominated by fork/import noise.
    cooldown:
        Observations to skip after each plan, letting the new placement
        produce fresh timings before judging it.
    max_moves:
        Cap on nodes moved per plan; 0 (default) means uncapped (the
        equalising estimate still applies).
    """

    def __init__(self, *, threshold: float = 1.4, warmup: int = 2,
                 cooldown: int = 3, max_moves: int = 0) -> None:
        if threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be > 1, got {threshold}")
        if warmup < 0 or cooldown < 0 or max_moves < 0:
            raise ConfigurationError(
                "warmup, cooldown and max_moves must be >= 0")
        self.threshold = threshold
        self.warmup = warmup
        self.cooldown = cooldown
        self.max_moves = max_moves
        self.observations = 0
        self.plans = 0
        self._cooling = 0

    def observe(self, shard_times: dict[int, float],
                shard_nodes: dict[int, list[int]]) -> MigrationPlan | None:
        """Judge one epoch's timings; return a plan or None.

        ``shard_times`` maps shard → wall seconds for the epoch just
        stepped; ``shard_nodes`` is the current placement. Timed shards
        must appear in both inputs; shards that hold no nodes (fresh
        capacity from :meth:`ShardedLockstep.grow`) step no work and so
        never get a timing — they join as receivers at an implicit
        0.0 s, which is what makes newly grown capacity reachable at
        all instead of invisible to the balancer.
        """
        self.observations += 1
        if self.observations <= self.warmup:
            return None
        if self._cooling > 0:
            self._cooling -= 1
            return None
        timed = [s for s in sorted(shard_times) if s in shard_nodes]
        empty = [s for s in sorted(shard_nodes)
                 if not shard_nodes[s] and s not in shard_times]
        if len(timed) + len(empty) < 2:
            return None
        donor_pool = [s for s in timed if shard_nodes[s]]
        if not donor_pool:
            return None
        slow = max(donor_pool, key=lambda s: (shard_times[s], s))
        t_of = lambda s: shard_times.get(s, 0.0)  # noqa: E731
        fast = min(timed + empty, key=lambda s: (t_of(s), -s))
        if fast == slow:
            return None
        t_slow, t_fast = shard_times[slow], t_of(fast)
        if shard_nodes[fast]:
            if t_fast <= 0.0 or t_slow <= self.threshold * t_fast:
                return None
        elif t_slow <= 0.0:
            return None  # empty receiver, but nothing measured to move
        donors = shard_nodes[slow]
        if len(donors) < 2:
            return None  # never empty a shard's last node
        # Move roughly enough nodes to close the gap at current
        # per-node costs; the cooldown absorbs estimate error.
        per_slow = t_slow / len(donors)
        receivers = shard_nodes.get(fast, [])
        per_fast = t_fast / len(receivers) if receivers else per_slow
        denom = per_slow + per_fast
        k = int((t_slow - t_fast) / denom) if denom > 0 else 1
        k = max(1, min(k, len(donors) - 1))
        if self.max_moves:
            k = min(k, self.max_moves)
        moves = tuple(NodeMigration(node_id=nid, src=slow, dst=fast)
                      for nid in donors[-k:])
        self._cooling = self.cooldown
        self.plans += 1
        return MigrationPlan(observation=self.observations, moves=moves)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardBalancer(threshold={self.threshold}, "
                f"observations={self.observations}, plans={self.plans})")


# ----------------------------------------------------------------------
# Time travel
# ----------------------------------------------------------------------


def rewind_cluster(source, epoch: int | None = None, *, policy=None,
                   shards: int = 1, engine: str = "object",
                   balance: bool = False):
    """Rebuild a :class:`ClusterSimulation` at a checkpointed epoch.

    ``source`` is a :class:`CheckpointStore`, a store directory, a
    checkpoint file path, or a :class:`RunCheckpoint`. ``policy``
    (when given) replaces the checkpointed allocation policy — the
    time-travel seam: replay the identical node state under a different
    schedule. ``shards``/``engine``/``balance`` pick the execution
    substrate for the replay; none of them affect the replayed series.
    """
    from repro.cluster.simulation import ClusterSimulation

    checkpoint = resolve_checkpoint(source, kind="cluster", epoch=epoch)
    return ClusterSimulation.resume(checkpoint, policy=policy,
                                    shards=shards, engine=engine,
                                    balance=balance)


def rewind_scheduler(source, powerbook, cfg=None,
                     epoch: int | None = None, *, config=None):
    """Rebuild a :class:`PowerAwareScheduler` at a checkpointed epoch.

    ``powerbook``/``cfg`` mirror the scheduler constructor (profiles
    are not stored in checkpoints — pass the same book, or a preloaded
    equivalent). ``config`` (when given) replaces the checkpointed
    :class:`SchedulerConfig` for the replay — e.g. a different
    ``power_budget`` or cap schedule from epoch N on. Structural
    fields (``n_slots``, ``seed``, ``variability``) must match the
    recorded run; the restored node state was built under them.
    """
    from repro.scheduler.scheduler import PowerAwareScheduler

    checkpoint = resolve_checkpoint(source, kind="scheduler", epoch=epoch)
    return PowerAwareScheduler.resume(checkpoint, powerbook, cfg,
                                      config=config)
