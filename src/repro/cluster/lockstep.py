"""Epoch-lockstep helpers shared by the cluster and the scheduler.

Nodes interact only through epoch-granular budget decisions, so a
multi-node simulation is exact when every node's independent engine is
advanced one epoch at a time and budgets are re-allocated between
epochs. Both :class:`~repro.cluster.simulation.ClusterSimulation` and
:class:`~repro.scheduler.scheduler.PowerAwareScheduler` previously
hand-rolled this loop; this module is the single implementation.

These helpers advance nodes serially in-process. Since the node stacks
became checkpointable (:mod:`repro.stack.checkpoint`), the epoch loop
can also be *sharded*: :class:`~repro.cluster.sharding.ShardedLockstep`
keeps shards of rebuilt nodes alive in long-lived worker processes and
exchanges only ``(rates, epoch_energy)`` up and budgets down per epoch,
running the identical step function so results match the serial path
bit-for-bit. Whole independent runs still fan out one level up, in
:class:`~repro.runtime.executor.RunExecutor`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node_instance import NodeInstance

__all__ = ["collect_rates", "rebalance_nodes", "advance_lockstep"]


class BudgetAllocator(Protocol):
    """Anything with ``allocate(rates) -> per-node budgets``."""

    def allocate(self, rates: Sequence[float]) -> Sequence[float]: ...


def collect_rates(nodes: Sequence["NodeInstance"],
                  window: float) -> list[float]:
    """Trailing per-node progress rates over ``window`` seconds.

    A node whose monitor has not produced a sample yet — every node in
    the first epoch, since the 1 Hz monitor only closes its first
    window at t = interval — reports 0.0 rather than poisoning the
    allocation with NaNs.
    """
    rates = []
    for node in nodes:
        if node.monitor.series.is_empty():
            rates.append(0.0)
        else:
            rates.append(node.recent_rate(window=window))
    return rates


def rebalance_nodes(nodes: Sequence["NodeInstance"],
                    allocator: BudgetAllocator,
                    window: float) -> list[float]:
    """One re-allocation round: sample rates, allocate, deliver.

    Returns the budgets delivered (applied by each node's tracking
    policy on its next tick).
    """
    rates = collect_rates(nodes, window)
    budgets = [float(b) for b in allocator.allocate(rates)]
    for node, budget in zip(nodes, budgets):
        node.receive_budget(budget)
    return budgets


def advance_lockstep(nodes: Sequence["NodeInstance"],
                     target: float) -> float:
    """Advance every node's engine to absolute local time ``target``.

    Returns the package energy (J) the nodes consumed since their
    previous :meth:`~repro.cluster.node_instance.NodeInstance.epoch_energy`
    mark — the quantity both the cluster's power accounting and the
    scheduler's budget-violation check integrate per epoch.
    """
    energy = 0.0
    for node in nodes:
        node.advance(target)
        energy += node.epoch_energy()
    return energy
