"""One cluster node's complete software/hardware stack.

A :class:`NodeInstance` is a thin, epoch-advanceable wrapper around a
:class:`~repro.stack.builder.NodeStack` built with the budget-tracking
controller — everything the single-node Testbed wires, but advanceable
in *epochs* so many nodes can run in lockstep under a cluster-level
power policy (see :mod:`repro.cluster.lockstep`).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, check_snapshot_version
from repro.hardware.config import NodeConfig
from repro.stack import BUDGET, NodeStack, StackSpec

__all__ = ["NodeInstance"]


class NodeInstance:
    """A self-contained node running one application under a budget."""

    def __init__(self, node_id: int, cfg: NodeConfig, app_name: str,
                 app_kwargs: dict | None = None, seed: int = 0,
                 initial_budget: float | None = None) -> None:
        spec = StackSpec(
            app_name=app_name,
            cfg=cfg,
            app_kwargs=app_kwargs,
            seed=seed,
            controller=BUDGET,
            initial_budget=initial_budget,
            name=f"node{node_id}",
        )
        self._init_from_spec(node_id, spec)

    @classmethod
    def from_spec(cls, node_id: int, spec: StackSpec) -> "NodeInstance":
        """Build a node directly from a picklable stack spec.

        The spec must select the budget controller (cluster nodes are
        driven by budgets, not schedules).
        """
        if spec.controller != BUDGET:
            raise ConfigurationError(
                f"cluster nodes need the budget controller, "
                f"got {spec.controller!r}")
        inst = cls.__new__(cls)
        inst._init_from_spec(node_id, spec)
        return inst

    def _init_from_spec(self, node_id: int, spec: StackSpec) -> None:
        self.node_id = node_id
        self.stack = NodeStack(spec).launch()
        self._energy_mark = 0.0

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable node state: the stack checkpoint plus the epoch
        energy mark. The mark MUST travel with the checkpoint — restoring
        a node with a zero mark would double-count every joule consumed
        before the checkpoint in the next :meth:`epoch_energy` call."""
        return {"version": 1, "node_id": self.node_id,
                "energy_mark": self._energy_mark,
                "stack": self.stack.snapshot()}

    @classmethod
    def from_checkpoint(cls, state: dict) -> "NodeInstance":
        """Rebuild a node mid-run from a :meth:`snapshot` dict."""
        check_snapshot_version(state, 1, "NodeInstance")
        inst = cls.__new__(cls)
        inst.node_id = state["node_id"]
        inst.stack = NodeStack.from_checkpoint(state["stack"])
        inst._energy_mark = state["energy_mark"]
        return inst

    # -- stack accessors (the public surface predates repro.stack) ---------

    @property
    def node(self):
        return self.stack.node

    @property
    def engine(self):
        return self.stack.engine

    @property
    def firmware(self):
        return self.stack.firmware

    @property
    def libmsr(self):
        return self.stack.libmsr

    @property
    def policy(self):
        return self.stack.policy

    @property
    def app(self):
        return self.stack.app

    @property
    def monitor(self):
        return self.stack.main_monitor

    # ------------------------------------------------------------------

    def receive_budget(self, watts: float | None) -> None:
        """Deliver a node power budget (applied on the policy's next tick)."""
        self.stack.policy.receive_budget(watts)

    def advance(self, until: float) -> None:
        """Run this node's engine to absolute simulated time ``until``."""
        if until < self.now:
            raise ConfigurationError(
                f"node {self.node_id}: cannot rewind to {until} from {self.now}"
            )
        self.stack.engine.run(until=until)

    # -- telemetry ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.stack.now

    def recent_rate(self, window: float = 5.0) -> float:
        """Mean progress rate over the trailing ``window`` seconds
        (zeros included; 0.0 when nothing has been collected yet)."""
        series = self.monitor.series
        if series.is_empty():
            return 0.0
        recent = series.window(self.now - window, self.now + 1e-9)
        if recent.is_empty():
            return 0.0
        return float(recent.values.mean())

    def cumulative_progress(self) -> float:
        """Total progress units published so far (the 1 Hz monitor's
        rate samples integrated over their collection windows)."""
        series = self.monitor.series
        if series.is_empty():
            return 0.0
        return float(series.values.sum()) * self.monitor.interval

    def epoch_energy(self) -> float:
        """Package energy consumed since the previous call (joules)."""
        delta = self.node.pkg_energy - self._energy_mark
        self._energy_mark = self.node.pkg_energy
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NodeInstance(id={self.node_id}, t={self.now:.1f}s, "
                f"f={self.node.frequency / 1e9:.1f}GHz)")
