"""One cluster node's complete software/hardware stack.

A :class:`NodeInstance` owns a simulated node, its RAPL firmware, the
libmsr access path, a budget-tracking policy, the progress bus/monitor,
and one application — everything the single-node Testbed wires, but
advanceable in *epochs* so many nodes can run in lockstep under a
cluster-level power policy.
"""

from __future__ import annotations

from repro.apps import build as build_app
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.node import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm.policies import BudgetTrackingPolicy
from repro.runtime.engine import Engine
from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.pubsub import MessageBus

__all__ = ["NodeInstance"]


class NodeInstance:
    """A self-contained node running one application under a budget."""

    def __init__(self, node_id: int, cfg: NodeConfig, app_name: str,
                 app_kwargs: dict | None = None, seed: int = 0,
                 initial_budget: float | None = None) -> None:
        self.node_id = node_id
        self.node = SimulatedNode(cfg)
        self.engine = Engine(self.node)
        self.firmware = RaplFirmware(self.node, self.engine)
        self.libmsr = LibMSR(MSRSafe(MSRDevice(self.node, self.firmware)),
                             self.node.clock)
        self.policy = BudgetTrackingPolicy(self.engine, self.libmsr)
        if initial_budget is not None:
            # Apply the admission-time cap *before* the first cycle runs:
            # the tracking policy only enforces budgets on its next tick,
            # which would leave a capped job uncapped for its first
            # second — enough to blow a cluster power budget at scale.
            self.libmsr.set_pkg_power_limit(initial_budget)
            self.policy.receive_budget(initial_budget)

        kwargs = dict(app_kwargs or {})
        kwargs.setdefault("seed", seed)
        kwargs.setdefault("cfg", cfg)
        self.app = build_app(app_name, **kwargs)

        bus = MessageBus(self.node.clock,
                         drop_prob=self.app.spec.transport_drop_prob,
                         seed=seed + 1)
        pub = bus.pub_socket()
        self.engine.on_publish(lambda t, topic, v: pub.send(topic, v))
        self.monitor = ProgressMonitor(
            self.engine, bus.sub_socket(self.app.topic),
            name=f"node{node_id}:{self.app.topic}",
        )
        self.app.launch(self.engine)
        self._energy_mark = 0.0

    # ------------------------------------------------------------------

    def receive_budget(self, watts: float | None) -> None:
        """Deliver a node power budget (applied on the policy's next tick)."""
        self.policy.receive_budget(watts)

    def advance(self, until: float) -> None:
        """Run this node's engine to absolute simulated time ``until``."""
        if until < self.now:
            raise ConfigurationError(
                f"node {self.node_id}: cannot rewind to {until} from {self.now}"
            )
        self.engine.run(until=until)

    # -- telemetry ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.node.clock.now

    def recent_rate(self, window: float = 5.0) -> float:
        """Mean progress rate over the trailing ``window`` seconds
        (zeros included; 0.0 when nothing has been collected yet)."""
        series = self.monitor.series
        if series.is_empty():
            return 0.0
        recent = series.window(self.now - window, self.now + 1e-9)
        if recent.is_empty():
            return 0.0
        return float(recent.values.mean())

    def cumulative_progress(self) -> float:
        """Total progress units published so far (the 1 Hz monitor's
        rate samples integrated over their collection windows)."""
        series = self.monitor.series
        if series.is_empty():
            return 0.0
        return float(series.values.sum()) * self.monitor.interval

    def epoch_energy(self) -> float:
        """Package energy consumed since the previous call (joules)."""
        delta = self.node.pkg_energy - self._energy_mark
        self._energy_mark = self.node.pkg_energy
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NodeInstance(id={self.node_id}, t={self.now:.1f}s, "
                f"f={self.node.frequency / 1e9:.1f}GHz)")
