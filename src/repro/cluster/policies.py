"""Cluster-level power policies.

Both policies distribute a fixed job power budget across nodes each
epoch; they differ in what they know:

* :class:`UniformPowerPolicy` — the baseline: every node gets
  ``budget / n``. Under manufacturing variability this leaves the
  inefficient nodes slow, and for bulk-synchronous applications the
  slowest node *is* the job's speed.
* :class:`ProgressAwareRebalancer` — uses exactly the paper's
  contribution, the online progress metric, to steer power: nodes
  running below the mean rate receive proportionally more budget, nodes
  above it less (bounded by per-node floor/ceiling, always summing to
  the job budget). This is the Conductor/POW-style policy the paper says
  online progress enables.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["UniformPowerPolicy", "ProgressAwareRebalancer"]


class UniformPowerPolicy:
    """Equal share for every node."""

    def __init__(self, budget: float) -> None:
        if budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {budget}")
        self.budget = budget

    def allocate(self, rates: list[float]) -> list[float]:
        """Per-node budgets given the latest per-node progress rates
        (ignored by this policy)."""
        n = len(rates)
        if n == 0:
            raise ConfigurationError("no nodes to allocate to")
        return [self.budget / n] * n


class ProgressAwareRebalancer:
    """Shift budget toward slow (critical-path) nodes.

    Parameters
    ----------
    budget:
        Total job budget (watts).
    min_node, max_node:
        Per-node clamp (watts).
    gain:
        How aggressively the deficit is converted into extra budget:
        a node running fraction ``d`` below the mean rate requests
        ``gain * d`` of its uniform share extra.
    """

    def __init__(self, budget: float, *, min_node: float = 45.0,
                 max_node: float = 200.0, gain: float = 1.5) -> None:
        if budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {budget}")
        if not 0 < min_node < max_node:
            raise ConfigurationError("need 0 < min_node < max_node")
        if gain <= 0:
            raise ConfigurationError(f"gain must be positive, got {gain}")
        self.budget = budget
        self.min_node = min_node
        self.max_node = max_node
        self.gain = gain

    def allocate(self, rates: list[float]) -> list[float]:
        """Per-node budgets from the latest per-node progress rates."""
        n = len(rates)
        if n == 0:
            raise ConfigurationError("no nodes to allocate to")
        if not n * self.min_node <= self.budget <= n * self.max_node:
            raise ConfigurationError(
                f"budget {self.budget} is infeasible for {n} nodes with "
                f"bounds [{self.min_node}, {self.max_node}]"
            )
        r = np.asarray(rates, dtype=float)
        uniform = self.budget / n
        mean = r.mean()
        if not np.isfinite(mean) or mean <= 0:
            # no usable progress signal (all-zero epoch, NaN/inf samples,
            # or a degenerate negative sum): dividing by the mean would
            # poison every budget, so fall back to the uniform split
            return [uniform] * n
        # deficit > 0 for slow nodes, < 0 for fast ones; zero-sum before
        # the bound projection
        deficit = (mean - r) / mean
        raw = np.maximum(uniform * (1.0 + self.gain * deficit),
                         self.budget * 1e-6)
        return self._project(raw)

    def _project(self, raw: np.ndarray) -> list[float]:
        """Scale ``raw`` onto the budget subject to per-node bounds.

        Solves ``sum(clip(raw * lam, min, max)) == budget`` for the
        scaling factor by bisection; the sum is continuous and monotone
        non-decreasing in ``lam``, and feasibility
        (``n*min <= budget <= n*max``, ``raw > 0``) guarantees a root.
        """
        def total(lam: float) -> float:
            return float(np.clip(raw * lam, self.min_node,
                                 self.max_node).sum())

        lo, hi = 0.0, 1.0
        while total(hi) < self.budget - 1e-9:
            hi *= 2.0
            if hi > 1e18:  # pragma: no cover - feasibility guards this
                break
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if total(mid) < self.budget:
                lo = mid
            else:
                hi = mid
        budgets = np.clip(raw * hi, self.min_node, self.max_node)
        # polish any residual rounding onto the unclamped entries
        slack = self.budget - budgets.sum()
        if abs(slack) > 1e-9:
            headroom = (budgets < self.max_node - 1e-12) \
                if slack > 0 else (budgets > self.min_node + 1e-12)
            k = int(headroom.sum())
            if k:
                budgets[headroom] += slack / k
        return [float(b) for b in budgets]
