"""Sharded epoch-lockstep execution over long-lived worker processes.

The lockstep invariant (see :mod:`repro.cluster.lockstep`) is that nodes
interact *only* through epoch-granular budget decisions. That makes the
per-epoch data flow tiny and explicit — budgets go down, trailing
progress rates and epoch energy come back up — while the heavy state
(every node's engine, firmware, bus, monitors) never moves. This module
exploits exactly that shape:

* :class:`ShardedLockstep` partitions nodes round-robin over ``shards``
  long-lived worker processes. Each worker *rebuilds* its shard's
  :class:`~repro.cluster.node_instance.NodeInstance`\\ s from picklable
  :class:`~repro.stack.spec.StackSpec`\\ s (or mid-run checkpoints, see
  :meth:`NodeInstance.snapshot`) and keeps them alive across epochs.
* Per epoch the parent sends one :class:`StepRequest` per node and gets
  one :class:`StepResult` back — a handful of floats either way.
* With ``shards=1`` no process is spawned: the same
  :func:`step_node` function runs in-process on locally built nodes, so
  the serial path and the sharded path produce identical results *by
  construction* — the golden parity tests in ``tests/cluster`` and
  ``tests/scheduler`` pin this bit-for-bit.

Budget timing is preserved exactly: the budget-tracking policy applies
budgets on its next tick, so delivering a budget in the worker
immediately before the epoch's ``advance`` is indistinguishable from the
serial code delivering it between epochs.

Two further knobs ride on the same shape:

* ``engine`` selects the node host each shard (and the serial path)
  runs: ``"object"`` keeps one live stack per node (the reference
  engine), ``"vector"`` batches eligible nodes into
  :class:`~repro.vector.host.VectorEngine` structure-of-arrays groups
  that advance in one numpy step per epoch. Both hosts expose the same
  build/step/rate/telemetry/checkpoint surface and produce bit-identical
  results (pinned by ``tests/vector``), so callers only pick a speed.
* ``compact_wire`` shrinks the per-epoch pickle traffic: requests are
  grouped by ``(target, windows)`` so those ride once per group instead
  of once per node, budgets are shipped only when they differ from what
  the parent last sent that node (the tracking policy re-applying an
  unchanged budget is a no-op, so skipping the send is exact), and
  replies drop the dataclass framing for bare float tuples.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Sequence

from repro import obs
from repro.cluster.node_instance import NodeInstance
from repro.exceptions import (
    ConfigurationError,
    ShardWorkerError,
    SimulationError,
)
from repro.runtime import hosttime
from repro.stack.spec import StackSpec
from repro.telemetry.timeseries import TimeSeries

__all__ = [
    "StepRequest",
    "StepResult",
    "NodeTelemetry",
    "PayloadStats",
    "step_node",
    "node_rate",
    "ShardedLockstep",
]


# ----------------------------------------------------------------------
# Wire types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StepRequest:
    """One node's marching orders for one epoch.

    Attributes
    ----------
    node_id:
        The node to advance.
    target:
        Absolute local time to advance the node's engine to.
    budget, set_budget:
        When ``set_budget`` is true, deliver ``budget`` (watts, or None
        for uncapped) to the node's tracking policy before advancing.
        The flag distinguishes "no budget update this epoch" from
        "update to uncapped".
    windows:
        Trailing-rate windows (seconds) to evaluate *after* the advance;
        the results come back keyed by these exact floats.
    """

    node_id: int
    target: float
    budget: float | None = None
    set_budget: bool = False
    windows: tuple[float, ...] = ()


@dataclass(frozen=True)
class StepResult:
    """What one node reports back after an epoch step."""

    node_id: int
    now: float            #: node-local clock after the advance
    energy: float         #: package joules since the previous epoch mark
    cumulative: float     #: total progress units published so far
    rates: dict[float, float] = field(default_factory=dict)


@dataclass
class PayloadStats:
    """Pickled IPC payload accounting for one :class:`ShardedLockstep`.

    The lockstep's per-epoch exchange is the traffic the ROADMAP's
    delta-shipping item wants to shrink; these numbers are its baseline.
    ``epoch_payloads`` records one ``(bytes_down, bytes_up)`` pair per
    ``step`` dispatch (i.e. per epoch, summed over the involved shards);
    the totals cover every command. Sizes are measured by re-pickling
    the exact ``(command, payload)`` tuples that cross the pipe, so they
    track what :mod:`multiprocessing` actually ships.
    """

    bytes_down: int = 0          #: total pickled request bytes, all commands
    bytes_up: int = 0            #: total pickled reply bytes, all commands
    dispatches: int = 0          #: dispatch rounds measured (all commands)
    epoch_payloads: list[tuple[int, int]] = field(default_factory=list)

    def record(self, cmd: str, down: int, up: int) -> None:
        self.bytes_down += down
        self.bytes_up += up
        self.dispatches += 1
        if cmd in ("step", "step2"):
            self.epoch_payloads.append((down, up))

    @property
    def epochs(self) -> int:
        return len(self.epoch_payloads)

    def mean_epoch_bytes(self) -> tuple[float, float]:
        """Mean per-epoch ``(bytes_down, bytes_up)`` of step traffic."""
        if not self.epoch_payloads:
            return 0.0, 0.0
        n = len(self.epoch_payloads)
        return (sum(d for d, _ in self.epoch_payloads) / n,
                sum(u for _, u in self.epoch_payloads) / n)


@dataclass(frozen=True)
class NodeTelemetry:
    """Full telemetry pulled from a node (used at job completion)."""

    node_id: int
    now: float
    progress: TimeSeries       #: copy of the main monitor's rate series
    interval: float            #: the monitor's collection interval
    pkg_energy: float          #: lifetime package energy (J)
    frequency: float           #: current package frequency (Hz)


# ----------------------------------------------------------------------
# The shard-step function (shared by serial and worker paths)
# ----------------------------------------------------------------------


def node_rate(node: NodeInstance, window: float) -> float:
    """Trailing progress rate with the lockstep empty-monitor guard
    (0.0 before the monitor's first sample), exactly as
    :func:`repro.cluster.lockstep.collect_rates` computes it."""
    if node.monitor.series.is_empty():
        return 0.0
    return node.recent_rate(window=window)


def step_node(node: NodeInstance, req: StepRequest) -> StepResult:
    """Advance one node by one epoch and report back.

    This is THE epoch step — the serial path and every shard worker run
    this same function, which is what makes sharded results identical to
    serial ones by construction.
    """
    if req.set_budget:
        node.receive_budget(req.budget)
    node.advance(req.target)
    rates = {w: node_rate(node, w) for w in req.windows}
    return StepResult(
        node_id=node.node_id,
        now=node.now,
        energy=node.epoch_energy(),
        cumulative=node.cumulative_progress(),
        rates=rates,
    )


def _node_telemetry(node: NodeInstance) -> NodeTelemetry:
    return NodeTelemetry(
        node_id=node.node_id,
        now=node.now,
        progress=node.monitor.series.copy(),
        interval=node.monitor.interval,
        pkg_energy=node.node.pkg_energy,
        frequency=node.node.frequency,
    )


def _build_node(node_id: int, item) -> NodeInstance:
    if isinstance(item, StackSpec):
        return NodeInstance.from_spec(node_id, item)
    return NodeInstance.from_checkpoint(item)


# ----------------------------------------------------------------------
# Node hosts (the engine seam)
# ----------------------------------------------------------------------


_ENGINES = ("object", "vector")


class _ObjectHost:
    """The reference node host: one live NodeInstance per node.

    This is exactly the per-node behaviour the lockstep always had,
    packaged behind the same surface :class:`repro.vector.host
    .VectorEngine` implements so the serial path and the shard workers
    select an engine instead of hard-coding one.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, NodeInstance] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def build(self, items: Sequence[tuple[int, object]]) -> None:
        for node_id, item in items:
            if node_id in self._nodes:
                raise ConfigurationError(f"node {node_id} already exists")
            self._nodes[node_id] = _build_node(node_id, item)

    def node(self, node_id: int) -> NodeInstance:
        return self._nodes[node_id]

    def remove(self, node_ids: Sequence[int]) -> None:
        for node_id in node_ids:
            del self._nodes[node_id]

    def step(self, requests: Sequence[StepRequest]) -> list[StepResult]:
        return [step_node(self._nodes[req.node_id], req)
                for req in requests]

    def rate(self, node_id: int, window: float) -> float:
        return node_rate(self._nodes[node_id], window)

    def telemetry(self, node_id: int) -> NodeTelemetry:
        return _node_telemetry(self._nodes[node_id])

    def checkpoint(self, node_id: int) -> dict:
        return self._nodes[node_id].snapshot()


def _make_host(engine: str):
    """Build the node host for ``engine`` (lazy import keeps the vector
    stack out of object-only processes)."""
    if engine == "object":
        return _ObjectHost()
    if engine == "vector":
        from repro.vector.host import VectorEngine

        return VectorEngine()
    raise ConfigurationError(
        f"engine must be one of {_ENGINES}, got {engine!r}")


# ----------------------------------------------------------------------
# Compact step wire (v2)
# ----------------------------------------------------------------------


def _decode_step_groups(groups) -> list[StepRequest]:
    """Expand a compact ``step2`` payload back into StepRequests.

    Each group is ``(target, windows, entries)``; an entry is a bare
    ``node_id`` (no budget change) or ``(node_id, budget)`` (deliver it).
    """
    requests: list[StepRequest] = []
    for target, windows, entries in groups:
        for entry in entries:
            if isinstance(entry, tuple):
                node_id, budget = entry
                requests.append(StepRequest(
                    node_id=node_id, target=target, budget=budget,
                    set_budget=True, windows=windows))
            else:
                requests.append(StepRequest(
                    node_id=entry, target=target, windows=windows))
    return requests


def _encode_step_replies(requests: Sequence[StepRequest],
                         results: Sequence[StepResult]) -> list[tuple]:
    """Strip StepResults to bare tuples, rates in window order."""
    return [(res.now, res.energy, res.cumulative,
             tuple(res.rates[w] for w in req.windows))
            for req, res in zip(requests, results)]


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(conn, engine: str = "object") -> None:
    """Shard worker loop: own a node host, serve commands.

    Protocol: ``(command, payload)`` tuples over the pipe; every command
    gets exactly one ``("ok", result)`` or ``("error", message)`` reply.
    """
    host = _make_host(engine)
    while True:
        try:
            cmd, payload = conn.recv()
        except EOFError:  # parent died; nothing sane left to do
            return
        try:
            if cmd == "build":
                host.build(payload)
                conn.send(("ok", None))
            elif cmd == "step":
                conn.send(("ok", host.step(payload)))
            elif cmd == "step2":
                requests = _decode_step_groups(payload)
                results = host.step(requests)
                conn.send(("ok", _encode_step_replies(requests, results)))
            elif cmd == "rates":
                conn.send(("ok", [host.rate(node_id, window)
                                  for node_id, window in payload]))
            elif cmd == "telemetry":
                conn.send(("ok", [host.telemetry(node_id)
                                  for node_id in payload]))
            elif cmd == "checkpoint":
                conn.send(("ok", [host.checkpoint(node_id)
                                  for node_id in payload]))
            elif cmd == "remove":
                host.remove(payload)
                conn.send(("ok", None))
            elif cmd == "close":
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", f"unknown command {cmd!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))


# ----------------------------------------------------------------------
# Parent-side coordinator
# ----------------------------------------------------------------------


class ShardedLockstep:
    """Drive a set of lockstep nodes, optionally sharded over processes.

    Parameters
    ----------
    shards:
        1 = serial in-process execution (no subprocess at all); N >= 2
        = N long-lived worker processes, nodes assigned round-robin in
        insertion order.
    engine:
        Node host every shard (and the serial path) runs: ``"object"``
        (default) keeps one live stack per node, ``"vector"`` batches
        eligible nodes into numpy structure-of-arrays groups (see
        :mod:`repro.vector`). Results are bit-identical either way;
        ineligible nodes silently fall back to object stacks inside the
        vector host.
    start_method:
        multiprocessing start method; default prefers ``fork`` (cheap,
        and the workers rebuild their nodes from specs anyway) and falls
        back to the platform default.
    measure_payloads:
        Measure the pickled size of every dispatched payload into
        :attr:`payload_stats` (the delta-shipping baseline). Off by
        default — sizing re-pickles each payload — and forced on while
        :mod:`repro.obs` tracing is enabled, which additionally emits
        one ``shard.payload`` instant per involved shard per dispatch.
        Payload sizes never influence execution.
    compact_wire:
        Ship epoch steps over the compact ``step2`` wire: targets and
        windows ride once per ``(target, windows)`` group, budgets only
        when they differ from the last one sent to that node, replies as
        bare float tuples. On by default; only affects ``shards >= 2``
        (the serial path has no wire). Set False to force the original
        one-dataclass-per-node framing.
    balancer:
        An elastic rebalancer (duck-typed as
        :class:`repro.cluster.elastic.ShardBalancer`): after every
        sharded epoch step its ``observe(shard_times, shard_nodes)`` is
        offered the measured per-shard wall times and may return a
        migration plan, which is applied immediately via
        :meth:`migrate_nodes`. Placement is provably invisible to
        simulated results (the parity contract), so the balancer can
        only change wall time. Ignored with ``shards=1``.
    """

    def __init__(self, shards: int = 1, *, engine: str = "object",
                 start_method: str | None = None,
                 measure_payloads: bool = False,
                 compact_wire: bool = True,
                 balancer=None) -> None:
        # Assigned before any validation so close() — and therefore
        # __del__ — is safe on a partially constructed instance.
        self._closed = False
        self._workers: list = []
        self._pipes: list = []
        self._shard_of: dict[int, int] = {}
        self._budget_sent: dict[int, float | None] = {}
        self._next_shard = 0
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"engine must be one of {_ENGINES}, got {engine!r}")
        self.shards = shards
        self.engine = engine
        self.measure_payloads = measure_payloads
        self.compact_wire = compact_wire
        self.balancer = balancer
        self.payload_stats = PayloadStats()
        #: Per-shard wall seconds of the most recent sharded epoch step
        #: (send-complete to reply-arrival, host clock). Placement
        #: telemetry only — never feeds a simulated quantity.
        self.shard_times: dict[int, float] = {}
        #: Total nodes migrated between shards over this lockstep's life.
        self.migrations = 0
        self._host = _make_host(engine) if shards == 1 else None
        if shards > 1:
            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = "fork" if "fork" in methods else methods[0]
            ctx = mp.get_context(start_method)
            try:
                for _ in range(shards):
                    parent_conn, child_conn = ctx.Pipe()
                    proc = ctx.Process(target=_worker_main,
                                       args=(child_conn, engine),
                                       daemon=True)
                    proc.start()
                    child_conn.close()
                    self._workers.append(proc)
                    self._pipes.append(parent_conn)
            except BaseException:  # pragma: no cover - spawn failure
                self.close()
                raise

    # -- membership --------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self._shard_of)

    def add_nodes(self, items: Sequence[tuple[int, object]], *,
                  shard: int | None = None) -> None:
        """Build nodes from ``(node_id, StackSpec | checkpoint)`` pairs.

        Specs are rebuilt fresh; checkpoint dicts (from
        :meth:`NodeInstance.snapshot`) restore a node mid-run. By
        default nodes are assigned to shards round-robin in insertion
        order; ``shard=`` pins every item in this call to one shard
        (used by :meth:`migrate_nodes`) without advancing the
        round-robin cursor.
        """
        if shard is not None and not 0 <= shard < self.shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.shards}), got {shard}")
        per_shard: dict[int, list] = {}
        local_items: list[tuple[int, object]] = []
        for node_id, item in items:
            if node_id in self._shard_of:
                raise ConfigurationError(f"node {node_id} already exists")
            if shard is None:
                target = self._next_shard % self.shards
                self._next_shard += 1
            else:
                target = shard
            self._shard_of[node_id] = target
            if self.shards == 1:
                local_items.append((node_id, item))
            else:
                per_shard.setdefault(target, []).append((node_id, item))
        if local_items:
            # one batched build so the vector host can group the whole
            # placement into shared arrays
            self._host.build(local_items)
        if self.shards > 1 and per_shard:
            self._dispatch("build", per_shard)

    def remove_nodes(self, node_ids: Sequence[int]) -> None:
        """Drop finished nodes (frees worker memory)."""
        per_shard: dict[int, list] = {}
        local_ids: list[int] = []
        for node_id in node_ids:
            shard = self._shard_of.pop(node_id)
            self._budget_sent.pop(node_id, None)
            if self.shards == 1:
                local_ids.append(node_id)
            else:
                per_shard.setdefault(shard, []).append(node_id)
        if local_ids:
            self._host.remove(local_ids)
        if self.shards > 1 and per_shard:
            self._dispatch("remove", per_shard)

    def shard_nodes(self) -> dict[int, list[int]]:
        """Current placement: shard index → node ids, insertion order.
        Every shard appears, including empty ones."""
        out: dict[int, list[int]] = {s: [] for s in range(self.shards)}
        for node_id, shard in self._shard_of.items():
            out[shard].append(node_id)
        return out

    def migrate_nodes(self, moves: dict[int, int]) -> int:
        """Move live nodes between shards via checkpoint → rebuild.

        ``moves`` maps node id → destination shard. Each node is
        checkpointed in place (:meth:`NodeInstance.snapshot` — fully
        engine-portable, so an object node may land in a vector host's
        fallback slot and vice versa), removed from its source shard and
        rebuilt on the destination, mid-run state intact. The parent's
        budget-dedup cache survives the move: the restored policy still
        holds the delivered budget, so skipping an unchanged re-send
        stays exact. No-op moves (already on the destination) are
        skipped. Returns the number of nodes actually migrated.

        The lockstep contract makes this invisible to results — golden
        parity holds for *any* placement — so migration is purely a
        wall-clock lever.
        """
        real: dict[int, int] = {}
        for node_id, dst in moves.items():
            src = self._shard_of.get(node_id)
            if src is None:
                raise ConfigurationError(f"unknown node {node_id}")
            if not 0 <= dst < self.shards:
                raise ConfigurationError(
                    f"destination shard must be in [0, {self.shards}), "
                    f"got {dst} for node {node_id}")
            if dst != src:
                real[node_id] = dst
        if not real or self.shards == 1:
            return 0
        snapshots = self.checkpoint(list(real))
        saved_budgets = {nid: self._budget_sent[nid]
                        for nid in real if nid in self._budget_sent}
        self.remove_nodes(list(real))
        per_dst: dict[int, list] = {}
        for node_id, dst in real.items():
            per_dst.setdefault(dst, []).append((node_id, snapshots[node_id]))
        for dst in sorted(per_dst):
            self.add_nodes(per_dst[dst], shard=dst)
        self._budget_sent.update(saved_budgets)
        self.migrations += len(real)
        obs.metrics().counter("shard.migrations_total").inc(len(real))
        obs.tracer().instant(
            "shard.migrate", nodes=len(real),
            moves={str(nid): dst for nid, dst in sorted(real.items())})
        return len(real)

    def local_nodes(self) -> dict[int, Any]:
        """The live nodes — serial mode only (with workers the nodes
        live in other processes and cannot be touched directly). Values
        are NodeInstances under the object engine and NodeInstance-shaped
        :class:`~repro.vector.host.VectorNodeView`\\ s (or fallbacks)
        under the vector engine."""
        if self.shards > 1:
            raise ConfigurationError(
                "live nodes are only addressable with shards=1; use "
                "step()/rates()/telemetry() in sharded mode")
        return {node_id: self._host.node(node_id)
                for node_id in self._shard_of}

    # -- the per-epoch exchange --------------------------------------------

    def step(self, requests: Sequence[StepRequest]) -> list[StepResult]:
        """Advance every requested node one epoch; results come back in
        request order. With workers, all shards advance concurrently —
        this is the parallel section. When a :attr:`balancer` is
        installed it observes the measured per-shard wall times after
        the step and may migrate nodes before the next epoch."""
        if self.shards == 1:
            return self._host.step(requests)
        per_shard: dict[int, list[StepRequest]] = {}
        for req in requests:
            per_shard.setdefault(self._shard_of[req.node_id], []).append(req)
        if not self.compact_wire:
            replies = self._dispatch("step", per_shard)
            by_node = {res.node_id: res
                       for results in replies.values() for res in results}
        else:
            payloads: dict[int, list] = {}
            grouped: dict[int, list[StepRequest]] = {}
            for shard, reqs in per_shard.items():
                payloads[shard], grouped[shard] = self._compact_payload(reqs)
            replies = self._dispatch("step2", payloads)
            by_node = {}
            for shard, rows in replies.items():
                for req, row in zip(grouped[shard], rows):
                    now, energy, cumulative, rate_values = row
                    by_node[req.node_id] = StepResult(
                        node_id=req.node_id, now=now, energy=energy,
                        cumulative=cumulative,
                        rates=dict(zip(req.windows, rate_values)))
        if self.balancer is not None and self.shard_times:
            plan = self.balancer.observe(self.shard_times,
                                         self.shard_nodes())
            if plan is not None and plan.moves:
                self.migrate_nodes(
                    {move.node_id: move.dst for move in plan.moves})
        return [by_node[req.node_id] for req in requests]

    def _compact_payload(
        self, reqs: Sequence[StepRequest],
    ) -> tuple[list, list[StepRequest]]:
        """One shard's ``step2`` payload plus the requests in the order
        the worker will answer them (groups in first-seen order, entries
        in request order within each group).

        A budget entry is shipped only when it differs from the last one
        this parent delivered to that node — the tracking policy stores
        the budget and applies it on its next tick, so re-sending an
        unchanged value is a provable no-op.
        """
        groups: list[tuple[float, tuple[float, ...], list]] = []
        members: list[list[StepRequest]] = []
        index: dict[tuple, int] = {}
        unset = object()
        for req in reqs:
            key = (req.target, req.windows)
            k = index.get(key)
            if k is None:
                k = index[key] = len(groups)
                groups.append((req.target, req.windows, []))
                members.append([])
            entries = groups[k][2]
            if req.set_budget:
                sent = self._budget_sent.get(req.node_id, unset)
                if sent is unset or sent != req.budget:
                    entries.append((req.node_id, req.budget))
                    self._budget_sent[req.node_id] = req.budget
                else:
                    entries.append(req.node_id)
            else:
                entries.append(req.node_id)
            members[k].append(req)
        ordered = [req for group in members for req in group]
        return groups, ordered

    def rates(self, pairs: Sequence[tuple[int, float]]) -> list[float]:
        """Trailing rates for ``(node_id, window)`` pairs, in order."""
        if self.shards == 1:
            return [self._host.rate(node_id, window)
                    for node_id, window in pairs]
        per_shard: dict[int, list] = {}
        order: dict[int, list[int]] = {}
        for i, (node_id, window) in enumerate(pairs):
            shard = self._shard_of[node_id]
            per_shard.setdefault(shard, []).append((node_id, window))
            order.setdefault(shard, []).append(i)
        replies = self._dispatch("rates", per_shard)
        out: list[float] = [0.0] * len(pairs)
        for shard, values in replies.items():
            for i, value in zip(order[shard], values):
                out[i] = value
        return out

    def telemetry(self, node_ids: Sequence[int]) -> dict[int, NodeTelemetry]:
        """Full telemetry for the given nodes (series copies included)."""
        if self.shards == 1:
            return {node_id: self._host.telemetry(node_id)
                    for node_id in node_ids}
        per_shard: dict[int, list[int]] = {}
        for node_id in node_ids:
            per_shard.setdefault(self._shard_of[node_id], []).append(node_id)
        replies = self._dispatch("telemetry", per_shard)
        return {tel.node_id: tel
                for tels in replies.values() for tel in tels}

    def checkpoint(self, node_ids: Sequence[int]) -> dict[int, dict]:
        """Mid-run checkpoints (see :meth:`NodeInstance.snapshot`) for
        the given nodes — e.g. to migrate them between shard layouts."""
        if self.shards == 1:
            return {node_id: self._host.checkpoint(node_id)
                    for node_id in node_ids}
        per_shard: dict[int, list[int]] = {}
        for node_id in node_ids:
            per_shard.setdefault(self._shard_of[node_id], []).append(node_id)
        replies = self._dispatch("checkpoint", per_shard)
        out: dict[int, dict] = {}
        for shard, snaps in replies.items():
            for node_id, snap in zip(per_shard[shard], snaps):
                out[node_id] = snap
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down. Idempotent, and safe against
        partially-started or already-dead workers — every pipe
        operation tolerates a broken peer."""
        if self._closed:
            return
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for pipe in self._pipes:
            try:
                pipe.recv()
            except (EOFError, OSError):
                pass
            try:
                pipe.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._workers = []
        self._pipes = []

    def __enter__(self) -> "ShardedLockstep":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # -- internals ---------------------------------------------------------

    def _worker_exitcode(self, shard: int) -> int | None:
        """Best-effort exit code of a shard worker (reaps it first)."""
        try:
            proc = self._workers[shard]
        except IndexError:  # pragma: no cover - defensive
            return None
        proc.join(timeout=1.0)
        return proc.exitcode

    def _dispatch(self, cmd: str, per_shard: dict[int, list]) -> dict[int, Any]:
        """Send ``cmd`` to every involved shard, then collect replies.

        Sends complete before any receive, so all shards compute
        concurrently. Replies are collected as they arrive (via
        :func:`multiprocessing.connection.wait`, so a dead worker
        surfaces as a typed :class:`ShardWorkerError` instead of a
        hang), and each shard's send-to-reply wall time is measured —
        for ``step``/``step2`` these land in :attr:`shard_times` as the
        balancer's signal. Worker-side exceptions ship back as formatted
        tracebacks and re-raise here as :class:`SimulationError`. With
        payload measurement on (explicitly or via tracing), each
        direction's pickled size is recorded — observation only, the
        bytes on the pipe are untouched.
        """
        if self._closed:
            raise SimulationError("ShardedLockstep is closed")
        tracer = obs.tracer()
        measure = self.measure_payloads or tracer.enabled
        sizes_down: dict[int, int] = {}
        with tracer.span("shard.dispatch", cmd=cmd,
                         shards=len(per_shard)) as span:
            for shard, payload in per_shard.items():
                if measure:
                    sizes_down[shard] = len(pickle.dumps((cmd, payload)))
                try:
                    self._pipes[shard].send((cmd, payload))
                except (BrokenPipeError, OSError) as exc:
                    raise ShardWorkerError(
                        shard, cmd, self._worker_exitcode(shard)) from exc
            start = hosttime.perf_s()
            replies: dict[int, Any] = {}
            arrivals: dict[int, float] = {}
            pending = {self._pipes[shard]: shard for shard in per_shard}
            while pending:
                for conn in _conn_wait(list(pending)):
                    shard = pending.pop(conn)
                    try:
                        status, value = conn.recv()
                    except (EOFError, OSError) as exc:
                        raise ShardWorkerError(
                            shard, cmd, self._worker_exitcode(shard)) from exc
                    arrivals[shard] = hosttime.perf_s() - start
                    if status != "ok":
                        raise SimulationError(
                            f"shard {shard} failed on {cmd!r}:\n{value}")
                    replies[shard] = value
            if cmd in ("step", "step2"):
                self._record_step_times(arrivals)
            if measure:
                total_down = total_up = 0
                for shard in per_shard:
                    up = len(pickle.dumps(("ok", replies[shard])))
                    down = sizes_down[shard]
                    total_down += down
                    total_up += up
                    tracer.instant("shard.payload", cmd=cmd, shard=shard,
                                   bytes_down=down, bytes_up=up)
                self.payload_stats.record(cmd, total_down, total_up)
                span.set(bytes_down=total_down, bytes_up=total_up)
                registry = obs.metrics()
                registry.counter("shard.pickle_bytes",
                                 direction="down").inc(total_down)
                registry.counter("shard.pickle_bytes",
                                 direction="up").inc(total_up)
        return replies

    def _record_step_times(self, arrivals: dict[int, float]) -> None:
        """Publish one epoch step's per-shard wall times (placement
        telemetry: the balancer's input and the obs imbalance gauge)."""
        self.shard_times = dict(sorted(arrivals.items()))
        registry = obs.metrics()
        for shard, seconds in self.shard_times.items():
            registry.histogram("shard.epoch_wall_s",
                               shard=shard).observe(seconds)
        if len(self.shard_times) >= 2:
            slowest = max(self.shard_times.values())
            fastest = min(self.shard_times.values())
            registry.gauge("shard.imbalance").set(
                slowest / fastest if fastest > 0 else float("inf"))
