"""Lockstep cluster execution.

Nodes interact only through the epoch-granular budget policy, so the
cluster is simulated exactly by advancing each node's independent engine
one epoch at a time and re-running the allocation between epochs — no
cross-node event interleaving is needed.

The epoch loop runs on :class:`~repro.cluster.sharding.ShardedLockstep`:
with ``shards=1`` (the default) nodes live in-process exactly as before;
with ``shards>=2`` they are partitioned over long-lived worker processes
that advance concurrently, exchanging only budgets down and
``(rates, epoch_energy)`` up. Both paths execute the same step function,
so the produced series are bit-for-bit identical — ``tests/cluster``
pins this.

Job-level progress views follow the paper's discussion of combining
job-wide and node-local metrics:

* ``total`` — sum of node rates (total science per second),
* ``critical path`` — the slowest node's rate: for bulk-synchronous jobs
  this is the job's effective speed, and it is exactly the quantity the
  progress-aware policy raises under variability.
"""

from __future__ import annotations

import copy

import numpy as np

from repro import obs
from repro.cluster.node_instance import NodeInstance
from repro.cluster.sharding import ShardedLockstep, StepRequest
from repro.cluster.variability import perturb_config
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    check_snapshot_version,
)
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.runfile import RUN_CHECKPOINT_VERSION, RunCheckpoint
from repro.stack import BUDGET, StackSpec
from repro.telemetry.timeseries import TimeSeries

__all__ = ["ClusterSimulation"]


def _balancer(balance: bool, shards: int):
    """A ShardBalancer when asked for and meaningful, else None (local
    import — :mod:`repro.cluster.elastic` imports this module back for
    its rewind helpers)."""
    if not balance or shards < 2:
        return None
    from repro.cluster.elastic import ShardBalancer

    return ShardBalancer()


class ClusterSimulation:
    """A job of ``n_nodes`` identical application instances under a
    cluster power policy.

    Parameters
    ----------
    n_nodes:
        Nodes in the job.
    app_name, app_kwargs:
        Application each node runs (per-node seeds are derived).
    policy:
        Object with ``allocate(rates) -> list[budgets]`` (see
        :mod:`repro.cluster.policies`).
    cfg:
        Baseline node configuration.
    variability:
        ``(sigma_dynamic, sigma_static)`` manufacturing spread; ``None``
        for perfectly identical nodes.
    seed:
        Cluster seed (drives both variability and application noise).
    shards:
        Worker processes to shard the nodes over; 1 (default) runs
        serially in-process. Results are identical either way.
    engine:
        Node engine the lockstep layer runs: ``"object"`` (default, one
        live stack per node) or ``"vector"`` (numpy structure-of-arrays
        batches, see :mod:`repro.vector`). Results are bit-identical;
        the vector engine is simply faster at scale.
    balance:
        With ``shards >= 2``, install a
        :class:`~repro.cluster.elastic.ShardBalancer` that migrates
        nodes off slow shards between epochs. Pure wall-clock lever;
        results stay bit-identical (see :mod:`repro.cluster.elastic`).
    """

    def __init__(self, n_nodes: int, app_name: str, policy, *,
                 app_kwargs: dict | None = None,
                 cfg: NodeConfig | None = None,
                 variability: tuple[float, float] | None = (0.05, 0.08),
                 seed: int = 0, shards: int = 1,
                 engine: str = "object", balance: bool = False) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        base_cfg = cfg if cfg is not None else skylake_config()
        self.policy = policy
        self._node_ids = list(range(n_nodes))
        specs: list[tuple[int, StackSpec]] = []
        for i in range(n_nodes):
            node_cfg = base_cfg
            if variability is not None:
                rng = np.random.default_rng([seed, i])
                node_cfg = perturb_config(base_cfg, rng,
                                          sigma_dynamic=variability[0],
                                          sigma_static=variability[1])
            specs.append((i, StackSpec(
                app_name=app_name,
                cfg=node_cfg,
                app_kwargs=app_kwargs,
                seed=seed + 1000 * i,
                controller=BUDGET,
                name=f"node{i}",
            )))
        self._lockstep = ShardedLockstep(
            shards=shards, engine=engine, balancer=_balancer(balance, shards))
        self._lockstep.add_nodes(specs)
        self._now = 0.0
        self._epochs = 0  #: completed epochs (RunCheckpoint file index)
        # Rates the next allocation will use, keyed by window; seeded
        # with the empty-monitor zeros collect_rates reports at t=0.
        self._alloc_rates: dict[float, list[float]] = {}
        self.budget_history = TimeSeries("allocated-total")
        self.total_progress = TimeSeries("job-total-progress")
        self.critical_path = TimeSeries("job-critical-path")
        self.total_energy = 0.0  #: package energy integrated over run()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def nodes(self) -> list[NodeInstance]:
        """The live nodes in node order (serial mode only); NodeInstances
        under the object engine, NodeInstance-shaped views under the
        vector engine."""
        local = self._lockstep.local_nodes()
        return [local[i] for i in self._node_ids]

    @property
    def shards(self) -> int:
        return self._lockstep.shards

    def close(self) -> None:
        """Shut down shard workers (no-op in serial mode)."""
        self._lockstep.close()

    def _rates_for(self, window: float) -> list[float]:
        """Per-node trailing rates for the next allocation: cached from
        the previous epoch's step results (node state has not changed
        since), or pulled from the nodes when the window is new."""
        if window in self._alloc_rates:
            return self._alloc_rates[window]
        if self._now == 0.0:
            return [0.0] * len(self._node_ids)
        return self._lockstep.rates([(i, window) for i in self._node_ids])

    def run(self, duration: float | None = None, epoch: float = 1.0, *,
            until: float | None = None, checkpoint_store=None,
            checkpoint_every: int = 0) -> None:
        """Advance the whole cluster in ``epoch``-sized lockstep rounds;
        budgets are re-allocated from the trailing progress rates before
        every round.

        Exactly one of ``duration`` (relative) and ``until`` (an
        absolute end time) must be given. Resumed runs must use
        ``until`` with the *original* end time: ``now + (end - now)``
        re-associates the float arithmetic, so only sharing the exact
        ``end`` value keeps every epoch target — and therefore every
        series — bit-identical to the uninterrupted run.

        With ``checkpoint_every=N`` (and a
        :class:`~repro.runtime.runfile.CheckpointStore`), an atomic
        :class:`RunCheckpoint` is saved after every N-th completed
        epoch — the crash-resume and time-travel record.
        """
        if (duration is None) == (until is None):
            raise ConfigurationError(
                "pass exactly one of duration= or until=")
        if epoch <= 0:
            raise ConfigurationError("epoch must be positive")
        if duration is not None:
            if duration <= 0:
                raise ConfigurationError("duration must be positive")
            end = self.now + duration
        else:
            end = until
            if end <= self.now + 1e-9:
                raise ConfigurationError(
                    f"until={end} is not after now={self.now}")
        if checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_store is None:
            raise ConfigurationError(
                "checkpoint_every needs a checkpoint_store")
        alloc_window = 3 * epoch
        tracer = obs.tracer()
        epochs = obs.metrics().counter("cluster.epochs")
        with tracer.span("cluster.run", n_nodes=len(self._node_ids),
                         duration=end - self.now, epoch=epoch,
                         shards=self.shards):
            while self.now < end - 1e-9:
                with tracer.span("cluster.epoch", now=self.now):
                    rates = self._rates_for(alloc_window)
                    budgets = [float(b) for b in self.policy.allocate(rates)]
                    target = min(self.now + epoch, end)
                    requests = [
                        StepRequest(node_id=i, target=target, budget=b,
                                    set_budget=True,
                                    windows=(alloc_window, epoch))
                        for i, b in zip(self._node_ids, budgets)
                    ]
                    results = self._lockstep.step(requests)
                    epoch_energy = 0.0
                    for res in results:
                        epoch_energy += res.energy
                    self.total_energy += epoch_energy
                    # Track node 0's clock, not the computed target: the
                    # engine advances by deltas, so the node clock can
                    # differ from the target by an ULP — and the serial
                    # code's `now` was the node clock.
                    self._now = results[0].now
                    self._alloc_rates = {
                        alloc_window: [res.rates[alloc_window]
                                       for res in results],
                        epoch: [res.rates[epoch] for res in results],
                    }
                    current = self._alloc_rates[epoch]
                    self.total_progress.append(target, float(np.sum(current)))
                    self.critical_path.append(target, float(np.min(current)))
                    self.budget_history.append(target, float(np.sum(budgets)))
                epochs.inc()
                self._epochs += 1
                if checkpoint_every and \
                        self._epochs % checkpoint_every == 0:
                    checkpoint_store.save(self.run_checkpoint())

    # -- checkpointing (see repro.runtime.runfile) ---------------------------

    @property
    def epochs_done(self) -> int:
        """Completed epochs over this simulation's whole life (resumes
        continue the count)."""
        return self._epochs

    @property
    def migrations(self) -> int:
        """Nodes migrated between shards by the balancer so far."""
        return self._lockstep.migrations

    def snapshot(self) -> dict:
        """Picklable mid-run state: the clock, the allocation caches,
        the published series, the policy, and — through the lockstep —
        a full :meth:`NodeInstance.snapshot` of every node. Restore
        onto a freshly constructed (node-free) simulation."""
        node_cps = self._lockstep.checkpoint(self._node_ids)
        return {
            "version": 1,
            "now": self._now,
            "epochs": self._epochs,
            "node_ids": list(self._node_ids),
            "alloc_rates": {w: list(r)
                            for w, r in self._alloc_rates.items()},
            "total_energy": self.total_energy,
            "policy": copy.deepcopy(self.policy),
            "budget_history": self.budget_history.snapshot(),
            "total_progress": self.total_progress.snapshot(),
            "critical_path": self.critical_path.snapshot(),
            "nodes": node_cps,
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot`, rebuilding every node from its
        checkpoint inside the lockstep layer (placement is fresh:
        round-robin over this simulation's shards — invisible to
        results by the parity contract)."""
        check_snapshot_version(state, 1, "ClusterSimulation")
        if self._lockstep.n_nodes:
            raise CheckpointError(
                "cluster restore target must be freshly constructed "
                "(it already holds nodes)")
        self._now = state["now"]
        self._epochs = state["epochs"]
        self._node_ids = list(state["node_ids"])
        self._alloc_rates = {w: list(r)
                             for w, r in state["alloc_rates"].items()}
        self.total_energy = state["total_energy"]
        self.policy = copy.deepcopy(state["policy"])
        self.budget_history.restore(state["budget_history"])
        self.total_progress.restore(state["total_progress"])
        self.critical_path.restore(state["critical_path"])
        self._lockstep.add_nodes(
            [(nid, state["nodes"][nid]) for nid in self._node_ids])

    def run_checkpoint(self) -> RunCheckpoint:
        """This instant of the run as a :class:`RunCheckpoint` (kind
        ``"cluster"``), ready for :func:`~repro.runtime.runfile
        .save_run_checkpoint` or a :class:`CheckpointStore`."""
        return RunCheckpoint(
            version=RUN_CHECKPOINT_VERSION,
            kind="cluster",
            epoch=self._epochs,
            now=self._now,
            config={"n_nodes": len(self._node_ids),
                    "shards": self.shards,
                    "engine": self._lockstep.engine},
            state=self.snapshot(),
        )

    @classmethod
    def resume(cls, checkpoint: RunCheckpoint, *, policy=None,
               shards: int = 1, engine: str = "object",
               balance: bool = False) -> "ClusterSimulation":
        """Rebuild a simulation from a :meth:`run_checkpoint`.

        ``shards``/``engine``/``balance`` choose the execution
        substrate for the continuation — independent of what the
        recorded run used, and invisible to results. ``policy`` (when
        given) replaces the checkpointed policy: the time-travel seam.
        Continue with ``run(until=...)`` (sharing the original end
        time) for bit-identical series.
        """
        if checkpoint.kind != "cluster":
            raise CheckpointError(
                f"expected a 'cluster' checkpoint, got "
                f"{checkpoint.kind!r}")
        sim = cls.__new__(cls)
        sim.policy = None
        sim._node_ids = []
        sim._lockstep = ShardedLockstep(
            shards=shards, engine=engine, balancer=_balancer(balance, shards))
        sim._now = 0.0
        sim._epochs = 0
        sim._alloc_rates = {}
        sim.budget_history = TimeSeries("allocated-total")
        sim.total_progress = TimeSeries("job-total-progress")
        sim.critical_path = TimeSeries("job-critical-path")
        sim.total_energy = 0.0
        sim.restore(checkpoint.state)
        if policy is not None:
            sim.policy = policy
        return sim

    # -- summaries ------------------------------------------------------------

    def node_rates(self, window: float = 5.0) -> list[float]:
        """Latest per-node progress rates."""
        return self._lockstep.rates([(i, window) for i in self._node_ids])

    def node_frequencies(self) -> list[float]:
        """Current per-node package frequencies (Hz)."""
        telemetry = self._lockstep.telemetry(self._node_ids)
        return [telemetry[i].frequency for i in self._node_ids]

    def steady_critical_path(self, skip: float = 5.0) -> float:
        """Mean critical-path rate after the first ``skip`` seconds."""
        if self.critical_path.is_empty():
            raise ConfigurationError("run() has not produced samples yet")
        window = self.critical_path.window(skip, self.now + 1e-9)
        if window.is_empty():
            raise ConfigurationError("skip exceeds the simulated duration")
        return window.mean()
