"""Lockstep cluster execution.

Nodes interact only through the epoch-granular budget policy, so the
cluster is simulated exactly by advancing each node's independent engine
one epoch at a time and re-running the allocation between epochs — no
cross-node event interleaving is needed.

Job-level progress views follow the paper's discussion of combining
job-wide and node-local metrics:

* ``total`` — sum of node rates (total science per second),
* ``critical path`` — the slowest node's rate: for bulk-synchronous jobs
  this is the job's effective speed, and it is exactly the quantity the
  progress-aware policy raises under variability.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.lockstep import (
    advance_lockstep,
    collect_rates,
    rebalance_nodes,
)
from repro.cluster.node_instance import NodeInstance
from repro.cluster.variability import perturb_config
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.telemetry.timeseries import TimeSeries

__all__ = ["ClusterSimulation"]


class ClusterSimulation:
    """A job of ``n_nodes`` identical application instances under a
    cluster power policy.

    Parameters
    ----------
    n_nodes:
        Nodes in the job.
    app_name, app_kwargs:
        Application each node runs (per-node seeds are derived).
    policy:
        Object with ``allocate(rates) -> list[budgets]`` (see
        :mod:`repro.cluster.policies`).
    cfg:
        Baseline node configuration.
    variability:
        ``(sigma_dynamic, sigma_static)`` manufacturing spread; ``None``
        for perfectly identical nodes.
    seed:
        Cluster seed (drives both variability and application noise).
    """

    def __init__(self, n_nodes: int, app_name: str, policy, *,
                 app_kwargs: dict | None = None,
                 cfg: NodeConfig | None = None,
                 variability: tuple[float, float] | None = (0.05, 0.08),
                 seed: int = 0) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        base_cfg = cfg if cfg is not None else skylake_config()
        self.policy = policy
        self.nodes: list[NodeInstance] = []
        for i in range(n_nodes):
            node_cfg = base_cfg
            if variability is not None:
                rng = np.random.default_rng([seed, i])
                node_cfg = perturb_config(base_cfg, rng,
                                          sigma_dynamic=variability[0],
                                          sigma_static=variability[1])
            self.nodes.append(NodeInstance(
                node_id=i, cfg=node_cfg, app_name=app_name,
                app_kwargs=app_kwargs, seed=seed + 1000 * i,
            ))
        self.budget_history = TimeSeries("allocated-total")
        self.total_progress = TimeSeries("job-total-progress")
        self.critical_path = TimeSeries("job-critical-path")
        self.total_energy = 0.0  #: package energy integrated over run()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.nodes[0].now

    def run(self, duration: float, epoch: float = 1.0) -> None:
        """Advance the whole cluster by ``duration`` seconds in
        ``epoch``-sized lockstep rounds; budgets are re-allocated from
        the trailing progress rates before every round."""
        if duration <= 0 or epoch <= 0:
            raise ConfigurationError("duration and epoch must be positive")
        end = self.now + duration
        while self.now < end - 1e-9:
            budgets = rebalance_nodes(self.nodes, self.policy,
                                      window=3 * epoch)
            target = min(self.now + epoch, end)
            self.total_energy += advance_lockstep(self.nodes, target)
            current = collect_rates(self.nodes, window=epoch)
            self.total_progress.append(target, float(np.sum(current)))
            self.critical_path.append(target, float(np.min(current)))
            self.budget_history.append(target, float(np.sum(budgets)))

    # -- summaries ------------------------------------------------------------

    def node_rates(self, window: float = 5.0) -> list[float]:
        """Latest per-node progress rates."""
        return [n.recent_rate(window) for n in self.nodes]

    def node_frequencies(self) -> list[float]:
        """Current per-node package frequencies (Hz)."""
        return [n.node.frequency for n in self.nodes]

    def steady_critical_path(self, skip: float = 5.0) -> float:
        """Mean critical-path rate after the first ``skip`` seconds."""
        if self.critical_path.is_empty():
            raise ConfigurationError("run() has not produced samples yet")
        window = self.critical_path.window(skip, self.now + 1e-9)
        if window.is_empty():
            raise ConfigurationError("skip exceeds the simulated duration")
        return window.mean()
