"""Lockstep cluster execution.

Nodes interact only through the epoch-granular budget policy, so the
cluster is simulated exactly by advancing each node's independent engine
one epoch at a time and re-running the allocation between epochs — no
cross-node event interleaving is needed.

The epoch loop runs on :class:`~repro.cluster.sharding.ShardedLockstep`:
with ``shards=1`` (the default) nodes live in-process exactly as before;
with ``shards>=2`` they are partitioned over long-lived worker processes
that advance concurrently, exchanging only budgets down and
``(rates, epoch_energy)`` up. Both paths execute the same step function,
so the produced series are bit-for-bit identical — ``tests/cluster``
pins this.

Job-level progress views follow the paper's discussion of combining
job-wide and node-local metrics:

* ``total`` — sum of node rates (total science per second),
* ``critical path`` — the slowest node's rate: for bulk-synchronous jobs
  this is the job's effective speed, and it is exactly the quantity the
  progress-aware policy raises under variability.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cluster.node_instance import NodeInstance
from repro.cluster.sharding import ShardedLockstep, StepRequest
from repro.cluster.variability import perturb_config
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.stack import BUDGET, StackSpec
from repro.telemetry.timeseries import TimeSeries

__all__ = ["ClusterSimulation"]


class ClusterSimulation:
    """A job of ``n_nodes`` identical application instances under a
    cluster power policy.

    Parameters
    ----------
    n_nodes:
        Nodes in the job.
    app_name, app_kwargs:
        Application each node runs (per-node seeds are derived).
    policy:
        Object with ``allocate(rates) -> list[budgets]`` (see
        :mod:`repro.cluster.policies`).
    cfg:
        Baseline node configuration.
    variability:
        ``(sigma_dynamic, sigma_static)`` manufacturing spread; ``None``
        for perfectly identical nodes.
    seed:
        Cluster seed (drives both variability and application noise).
    shards:
        Worker processes to shard the nodes over; 1 (default) runs
        serially in-process. Results are identical either way.
    engine:
        Node engine the lockstep layer runs: ``"object"`` (default, one
        live stack per node) or ``"vector"`` (numpy structure-of-arrays
        batches, see :mod:`repro.vector`). Results are bit-identical;
        the vector engine is simply faster at scale.
    """

    def __init__(self, n_nodes: int, app_name: str, policy, *,
                 app_kwargs: dict | None = None,
                 cfg: NodeConfig | None = None,
                 variability: tuple[float, float] | None = (0.05, 0.08),
                 seed: int = 0, shards: int = 1,
                 engine: str = "object") -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        base_cfg = cfg if cfg is not None else skylake_config()
        self.policy = policy
        self._node_ids = list(range(n_nodes))
        specs: list[tuple[int, StackSpec]] = []
        for i in range(n_nodes):
            node_cfg = base_cfg
            if variability is not None:
                rng = np.random.default_rng([seed, i])
                node_cfg = perturb_config(base_cfg, rng,
                                          sigma_dynamic=variability[0],
                                          sigma_static=variability[1])
            specs.append((i, StackSpec(
                app_name=app_name,
                cfg=node_cfg,
                app_kwargs=app_kwargs,
                seed=seed + 1000 * i,
                controller=BUDGET,
                name=f"node{i}",
            )))
        self._lockstep = ShardedLockstep(shards=shards, engine=engine)
        self._lockstep.add_nodes(specs)
        self._now = 0.0
        # Rates the next allocation will use, keyed by window; seeded
        # with the empty-monitor zeros collect_rates reports at t=0.
        self._alloc_rates: dict[float, list[float]] = {}
        self.budget_history = TimeSeries("allocated-total")
        self.total_progress = TimeSeries("job-total-progress")
        self.critical_path = TimeSeries("job-critical-path")
        self.total_energy = 0.0  #: package energy integrated over run()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def nodes(self) -> list[NodeInstance]:
        """The live nodes in node order (serial mode only); NodeInstances
        under the object engine, NodeInstance-shaped views under the
        vector engine."""
        local = self._lockstep.local_nodes()
        return [local[i] for i in self._node_ids]

    @property
    def shards(self) -> int:
        return self._lockstep.shards

    def close(self) -> None:
        """Shut down shard workers (no-op in serial mode)."""
        self._lockstep.close()

    def _rates_for(self, window: float) -> list[float]:
        """Per-node trailing rates for the next allocation: cached from
        the previous epoch's step results (node state has not changed
        since), or pulled from the nodes when the window is new."""
        if window in self._alloc_rates:
            return self._alloc_rates[window]
        if self._now == 0.0:
            return [0.0] * len(self._node_ids)
        return self._lockstep.rates([(i, window) for i in self._node_ids])

    def run(self, duration: float, epoch: float = 1.0) -> None:
        """Advance the whole cluster by ``duration`` seconds in
        ``epoch``-sized lockstep rounds; budgets are re-allocated from
        the trailing progress rates before every round."""
        if duration <= 0 or epoch <= 0:
            raise ConfigurationError("duration and epoch must be positive")
        end = self.now + duration
        alloc_window = 3 * epoch
        tracer = obs.tracer()
        epochs = obs.metrics().counter("cluster.epochs")
        with tracer.span("cluster.run", n_nodes=len(self._node_ids),
                         duration=duration, epoch=epoch,
                         shards=self.shards):
            while self.now < end - 1e-9:
                with tracer.span("cluster.epoch", now=self.now):
                    rates = self._rates_for(alloc_window)
                    budgets = [float(b) for b in self.policy.allocate(rates)]
                    target = min(self.now + epoch, end)
                    requests = [
                        StepRequest(node_id=i, target=target, budget=b,
                                    set_budget=True,
                                    windows=(alloc_window, epoch))
                        for i, b in zip(self._node_ids, budgets)
                    ]
                    results = self._lockstep.step(requests)
                    epoch_energy = 0.0
                    for res in results:
                        epoch_energy += res.energy
                    self.total_energy += epoch_energy
                    # Track node 0's clock, not the computed target: the
                    # engine advances by deltas, so the node clock can
                    # differ from the target by an ULP — and the serial
                    # code's `now` was the node clock.
                    self._now = results[0].now
                    self._alloc_rates = {
                        alloc_window: [res.rates[alloc_window]
                                       for res in results],
                        epoch: [res.rates[epoch] for res in results],
                    }
                    current = self._alloc_rates[epoch]
                    self.total_progress.append(target, float(np.sum(current)))
                    self.critical_path.append(target, float(np.min(current)))
                    self.budget_history.append(target, float(np.sum(budgets)))
                epochs.inc()

    # -- summaries ------------------------------------------------------------

    def node_rates(self, window: float = 5.0) -> list[float]:
        """Latest per-node progress rates."""
        return self._lockstep.rates([(i, window) for i in self._node_ids])

    def node_frequencies(self) -> list[float]:
        """Current per-node package frequencies (Hz)."""
        telemetry = self._lockstep.telemetry(self._node_ids)
        return [telemetry[i].frequency for i in self._node_ids]

    def steady_critical_path(self, skip: float = 5.0) -> float:
        """Mean critical-path rate after the first ``skip`` seconds."""
        if self.critical_path.is_empty():
            raise ConfigurationError("run() has not produced samples yet")
        window = self.critical_path.window(skip, self.now + 1e-9)
        if window.is_empty():
            raise ConfigurationError("skip exceeds the simulated duration")
        return window.mean()
