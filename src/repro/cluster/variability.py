"""Manufacturing variability across nodes.

Identical SKUs differ in leakage and switching efficiency; under a power
cap those differences translate directly into frequency — and therefore
progress — spread (Rountree et al., cited by the paper). Variability is
modelled as per-node lognormal factors on the static (``leak_per_volt``)
and dynamic (``c_dyn``) power coefficients: an inefficient node draws
more power at the same operating point, so a capped run settles it at a
lower frequency.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig

__all__ = ["perturb_config"]


def perturb_config(cfg: NodeConfig, rng: np.random.Generator, *,
                   sigma_dynamic: float = 0.05,
                   sigma_static: float = 0.08) -> NodeConfig:
    """A per-node variant of ``cfg`` with perturbed power coefficients.

    Parameters
    ----------
    cfg:
        Baseline node description.
    rng:
        Per-node random stream (seed it from the node index for
        reproducible clusters).
    sigma_dynamic, sigma_static:
        Lognormal sigmas of the dynamic / static coefficient factors.
        Defaults give a few percent dynamic and ~8 % leakage spread, in
        line with published Ivy Bridge/Haswell measurements.
    """
    if sigma_dynamic < 0 or sigma_static < 0:
        raise ConfigurationError("variability sigmas must be non-negative")
    dyn_factor = float(np.exp(rng.normal(0.0, sigma_dynamic)))
    static_factor = float(np.exp(rng.normal(0.0, sigma_static)))
    return dataclasses.replace(
        cfg,
        c_dyn=cfg.c_dyn * dyn_factor,
        leak_per_volt=cfg.leak_per_volt * static_factor,
    )
