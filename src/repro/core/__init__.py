"""The paper's contribution: online progress, categorization, and the
power-capping impact model.

* :mod:`repro.core.progress` — online-performance definitions and trace
  characterization (consistent / fluctuating / phased),
* :mod:`repro.core.categories` — the Category 1/2/3 taxonomy and
  rule-based categorization from specialist answers,
* :mod:`repro.core.survey` — the questionnaire (Table III) and the
  recorded specialist responses (Table IV),
* :mod:`repro.core.beta` — the beta compute-boundedness metric and MPO,
* :mod:`repro.core.model` — Eqs. 1-7: the impact of a RAPL power cap on
  progress,
* :mod:`repro.core.fitting` — fitting beta/alpha to measurements,
* :mod:`repro.core.errors` — prediction-error analysis,
* :mod:`repro.core.composite` — weighted multi-component progress for
  Category-3 applications (the paper's proposed extension).
"""

from repro.core.beta import beta_from_times, mpo_from_delta
from repro.core.categories import Category, OnlineMetric
from repro.core.model import PowerCapModel

__all__ = [
    "Category",
    "OnlineMetric",
    "PowerCapModel",
    "beta_from_times",
    "mpo_from_delta",
]
