"""The beta compute-boundedness metric and MPO (paper Section IV-A).

The beta metric (Hsu & Kremer) measures how strongly execution time
responds to CPU frequency; the paper computes it from execution times at
the maximum (3300 MHz) and a reduced (1600 MHz) frequency by inverting
its Eq. 1::

    T(f) / T(f_max) = beta * (f_max / f - 1) + 1
    => beta = (T(f_low)/T(f_high) - 1) / (f_high/f_low - 1)

MPO (misses per operation) is the frequency-independent companion:
L3 total cache misses divided by total instructions, both from PAPI
counters.
"""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.hardware.counters import CounterSnapshot

__all__ = ["beta_from_times", "mpo_from_delta"]


def beta_from_times(t_low: float, t_high: float,
                    f_low: float, f_high: float) -> float:
    """Beta from execution times at two frequencies.

    Parameters
    ----------
    t_low, t_high:
        Execution times at ``f_low`` and ``f_high`` respectively
        (``f_high`` is the nominal maximum; ``t_low >= t_high`` for any
        physical workload).
    f_low, f_high:
        The two frequencies, ``0 < f_low < f_high``.

    Returns
    -------
    float
        Beta clipped to [0, 1]: 1 for ideally compute-bound code (time
        scales inversely with frequency), 0 for frequency-insensitive
        code.
    """
    if not 0 < f_low < f_high:
        raise ModelError(f"need 0 < f_low < f_high, got {f_low}, {f_high}")
    if t_low <= 0 or t_high <= 0:
        raise ModelError("execution times must be positive")
    beta = (t_low / t_high - 1.0) / (f_high / f_low - 1.0)
    return min(max(beta, 0.0), 1.0)


def mpo_from_delta(delta: CounterSnapshot) -> float:
    """Misses per operation over a counter interval.

    ``delta`` is a difference of two snapshots
    (:meth:`~repro.hardware.counters.CounterSnapshot.delta`); the value is
    L3_TCM / TOT_INS, as the paper computes with PAPI.
    """
    ins = delta.total("PAPI_TOT_INS")
    if ins <= 0:
        raise ModelError("MPO undefined: no instructions in the interval")
    return delta.total("PAPI_L3_TCM") / ins
