"""Application categories for online performance (paper Section III-B).

* **Category 1** — iterative codes with a well-defined online-performance
  metric that correlates with the application's scientific goal (and FOM,
  when defined): QMCPACK, OpenMC, LAMMPS, STREAM.
* **Category 2** — codes whose online performance is well defined but
  does not indicate how far the application has progressed toward its
  goal (iteration counts unknown in advance): AMG, CANDLE's training.
* **Category 3** — codes without a reliable single metric, or composed of
  components that each need their own: URBAN, Nek5000, HACC.

:func:`categorize` derives the category mechanically from the
questionnaire answers of :mod:`repro.core.survey`, reproducing Table V
from Table IV rather than hard-coding it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.survey import SurveyResponse

__all__ = ["Category", "OnlineMetric", "categorize"]


class Category(enum.IntEnum):
    """The paper's three-way application taxonomy."""

    CATEGORY_1 = 1
    CATEGORY_2 = 2
    CATEGORY_3 = 3

    def describe(self) -> str:
        """One-line description matching Section III-B."""
        return {
            Category.CATEGORY_1:
                "well-defined online performance correlated with the "
                "scientific goal",
            Category.CATEGORY_2:
                "well-defined online performance that does not indicate "
                "progress toward the goal",
            Category.CATEGORY_3:
                "no reliable single online-performance metric",
        }[self]


@dataclass(frozen=True)
class OnlineMetric:
    """An application's online-performance metric (paper Table V)."""

    name: str          #: e.g. "Blocks per second"
    unit: str          #: e.g. "blocks/s"
    per_iteration: float = 1.0  #: progress units published per iteration

    def __str__(self) -> str:
        return self.name


def categorize(response: "SurveyResponse") -> Category:
    """Derive the category from questionnaire answers (Table IV -> V).

    Rules, following Section III-B verbatim:

    * If online performance cannot be monitored reliably, or the
      application is multi-component in a way that defeats a single
      metric (Q2 is No, or Q7 is Yes while Q3 is No and Q2 is No) —
      Category 3.
    * Else if online performance does not measure progress toward the
      scientific goal (Q3 is No) — Category 2.
    * Else — Category 1.
    """
    if not response.q2_online_measurable:
        return Category.CATEGORY_3
    if not response.q3_measures_goal:
        return Category.CATEGORY_2
    return Category.CATEGORY_1
