"""Weighted multi-component progress (the paper's Category-3 remedy).

Section VI-B3: "We can improve upon this by studying individual
components separately and modeling progress as a weighted combination of
the progress of individual components." This module implements that
extension and is exercised against the URBAN application, whose two
components run at timescales orders of magnitude apart.

Each component's rate series is first normalized by its own baseline
(uncapped) rate, putting all components on a common "fraction of full
speed" scale; the composite is then the weighted mean. Under a power cap
the composite responds even though no single raw metric is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries

__all__ = ["ComponentSpec", "CompositeProgress"]


@dataclass(frozen=True)
class ComponentSpec:
    """One component's contribution to the composite."""

    name: str
    baseline_rate: float   #: uncapped rate in the component's own units
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.baseline_rate <= 0:
            raise ConfigurationError(
                f"baseline_rate must be positive, got {self.baseline_rate}"
            )
        if self.weight < 0:
            raise ConfigurationError(f"weight must be non-negative, got {self.weight}")


class CompositeProgress:
    """Combine per-component rate series into one normalized series."""

    def __init__(self, components: list[ComponentSpec]) -> None:
        if not components:
            raise ConfigurationError("need at least one component")
        total = sum(c.weight for c in components)
        if total <= 0:
            raise ConfigurationError("component weights must not all be zero")
        self.components = list(components)
        self._total_weight = total

    def normalize(self, name: str, rate: float) -> float:
        """A single component observation as a fraction of its baseline."""
        for c in self.components:
            if c.name == name:
                return rate / c.baseline_rate
        raise ConfigurationError(f"unknown component {name!r}")

    def combine(self, series_by_component: dict[str, TimeSeries],
                interval: float = 1.0) -> TimeSeries:
        """Composite normalized-progress series.

        Each component series is resampled onto a common grid (empty bins
        hold the component's last seen normalized rate, since slow
        components legitimately report rarely), normalized, weighted and
        averaged.
        """
        missing = [c.name for c in self.components
                   if c.name not in series_by_component]
        if missing:
            raise ConfigurationError(f"missing component series: {missing}")
        t0 = min(s.times[0] for s in series_by_component.values()
                 if not s.is_empty())
        # nudge the end past the last sample so it lands inside the final
        # half-open resampling bin
        t1 = max(s.times[-1] for s in series_by_component.values()
                 if not s.is_empty()) + 1e-9
        out = TimeSeries("composite")
        resampled = {}
        for c in self.components:
            s = series_by_component[c.name]
            r = s.resample(interval, t_start=t0, t_end=t1, fill=np.nan)
            # forward-fill: a silent slow component is still progressing
            vals = r.values
            last = 0.0
            filled = []
            for v in vals:
                if not np.isnan(v):
                    last = v
                filled.append(last)
            resampled[c.name] = (r.times, np.asarray(filled) / c.baseline_rate)
        times = next(iter(resampled.values()))[0]
        for i, t in enumerate(times):
            acc = 0.0
            for c in self.components:
                acc += c.weight * resampled[c.name][1][i]
            out.append(float(t), acc / self._total_weight)
        return out
