"""Prediction-error analysis for the model evaluation (paper §VI-B2).

The paper reports per-cap percentage errors of the predicted change in
progress against the measured one, and characterizes their *direction*:
overestimation (model predicts more impact than measured — AMG, QMCPACK
midrange) versus underestimation (LAMMPS at stringent caps, STREAM badly
— Fig. 4d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError

__all__ = ["percentage_error", "ErrorSummary", "summarize_errors"]


def percentage_error(predicted: float, measured: float) -> float:
    """Signed percentage error, relative to the measured value.

    Positive means the model *overestimates* the impact. Matches the
    paper's convention (e.g. "overestimating the impact by 250% of the
    measured value").
    """
    if measured == 0.0:
        raise ModelError("percentage error undefined for measured == 0")
    return (predicted - measured) / abs(measured) * 100.0


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate error statistics over a cap sweep."""

    n_points: int
    mape: float                 #: mean |percentage error|
    max_overestimate: float     #: most positive signed error (0 if none)
    max_underestimate: float    #: most negative signed error (0 if none)
    per_point: tuple[float, ...]  #: signed errors, sweep order

    def within(self, percent: float) -> float:
        """Fraction of points whose |error| is within ``percent``."""
        if percent < 0:
            raise ModelError("threshold must be non-negative")
        errs = np.abs(self.per_point)
        return float(np.mean(errs <= percent))


def summarize_errors(predicted, measured) -> ErrorSummary:
    """Signed-error summary for parallel arrays of predictions and
    measurements (points with measured == 0 are rejected)."""
    pred = np.asarray(predicted, dtype=float)
    meas = np.asarray(measured, dtype=float)
    if pred.shape != meas.shape or pred.ndim != 1 or len(pred) == 0:
        raise ModelError("predicted/measured must be equal-length 1-D, non-empty")
    errors = tuple(percentage_error(p, m) for p, m in zip(pred, meas))
    arr = np.asarray(errors)
    return ErrorSummary(
        n_points=len(arr),
        mape=float(np.mean(np.abs(arr))),
        max_overestimate=float(max(arr.max(), 0.0)),
        max_underestimate=float(min(arr.min(), 0.0)),
        per_point=errors,
    )
