"""Fitting the progress model to measurements.

The paper fixes alpha = 2 and measures beta from two timings; Section
VI-B3 notes that alpha actually "varies between 1 and 4 depending on the
range of the power cap being applied" and proposes parameterizing RAPL.
This module provides that parameterization: least-squares fits of alpha
(and optionally beta) to observed ``(P_corecap, progress)`` pairs, used
by the ablation benchmarks to quantify how much of the model error a
fitted alpha removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.model import PowerCapModel
from repro.exceptions import FittingError

__all__ = ["FitResult", "fit_alpha", "fit_beta_alpha"]

_ALPHA_BOUNDS = (1.0, 4.0)
_BETA_BOUNDS = (1e-3, 1.0)


@dataclass(frozen=True)
class FitResult:
    """Outcome of a model fit."""

    model: PowerCapModel
    residual_rms: float      #: RMS of progress residuals (progress units/s)
    n_points: int

    @property
    def alpha(self) -> float:
        return self.model.alpha

    @property
    def beta(self) -> float:
        return self.model.beta


def _validate(p_corecaps, progresses) -> tuple[np.ndarray, np.ndarray]:
    caps = np.asarray(p_corecaps, dtype=float)
    rates = np.asarray(progresses, dtype=float)
    if caps.shape != rates.shape or caps.ndim != 1:
        raise FittingError("caps and progresses must be 1-D and equal length")
    if len(caps) < 2:
        raise FittingError(f"need at least 2 observations, got {len(caps)}")
    if np.any(caps <= 0) or np.any(rates < 0):
        raise FittingError("caps must be positive and rates non-negative")
    return caps, rates


def _rms(model: PowerCapModel, caps: np.ndarray, rates: np.ndarray) -> float:
    pred = np.array([model.progress_at_core_power(c) for c in caps])
    return float(np.sqrt(np.mean((pred - rates) ** 2)))


def fit_alpha(p_corecaps, progresses, *, beta: float, r_max: float,
              p_coremax: float) -> FitResult:
    """Fit alpha alone, keeping the measured beta (the paper's proposed
    refinement)."""
    caps, rates = _validate(p_corecaps, progresses)

    def loss(alpha: float) -> float:
        m = PowerCapModel(beta=beta, r_max=r_max, p_coremax=p_coremax,
                          alpha=float(alpha))
        return _rms(m, caps, rates)

    res = optimize.minimize_scalar(loss, bounds=_ALPHA_BOUNDS,
                                   method="bounded")
    if not res.success:  # pragma: no cover - bounded scalar rarely fails
        raise FittingError(f"alpha fit failed: {res.message}")
    model = PowerCapModel(beta=beta, r_max=r_max, p_coremax=p_coremax,
                          alpha=float(res.x))
    return FitResult(model=model, residual_rms=_rms(model, caps, rates),
                     n_points=len(caps))


def fit_beta_alpha(p_corecaps, progresses, *, r_max: float,
                   p_coremax: float) -> FitResult:
    """Jointly fit beta and alpha to the observations."""
    caps, rates = _validate(p_corecaps, progresses)
    if len(caps) < 3:
        raise FittingError(
            f"joint beta/alpha fit needs at least 3 observations, got {len(caps)}"
        )

    def residuals(params: np.ndarray) -> np.ndarray:
        beta, alpha = params
        m = PowerCapModel(beta=float(beta), r_max=r_max,
                          p_coremax=p_coremax, alpha=float(alpha))
        return np.array([m.progress_at_core_power(c) for c in caps]) - rates

    res = optimize.least_squares(
        residuals,
        x0=np.array([0.5, 2.0]),
        bounds=([_BETA_BOUNDS[0], _ALPHA_BOUNDS[0]],
                [_BETA_BOUNDS[1], _ALPHA_BOUNDS[1]]),
    )
    if not res.success:
        raise FittingError(f"beta/alpha fit failed: {res.message}")
    beta, alpha = map(float, res.x)
    model = PowerCapModel(beta=beta, r_max=r_max, p_coremax=p_coremax,
                          alpha=alpha)
    return FitResult(model=model, residual_rms=_rms(model, caps, rates),
                     n_points=len(caps))
