"""The paper's model of power capping's impact on progress (Section VI-A).

Chain of reasoning, equation by equation:

1. DVFS impact on execution time (Etinski et al.)::

       T(f)/T(f_max) = beta * (f_max/f - 1) + 1                    (Eq. 1)

2. Core power follows frequency: ``P_core ~ f**alpha``, alpha in
   [1, 3] (the paper fixes alpha = 2 in all predictions).       (Eq. 2)

3. Progress is inverse time: ``r(f) ~ 1/T(f)``.                 (Eq. 3)

4. Change of variable f -> P_core::

       r(P_core) = r(P_coremax) /
                   (beta * ((P_coremax/P_core)**(1/alpha) - 1) + 1)  (Eq. 4)

5. RAPL splits a package cap in the ratio of compute-boundedness::

       P_corecap = beta * P_cap                                    (Eq. 5)

6. A binding cap is fully used: ``P_core ~= P_corecap``.        (Eq. 6)

7. Change in progress when capping from the uncapped state::

       delta = r(P_coremax) * [1 - 1/(beta*((P_coremax/P_corecap)**(1/alpha) - 1) + 1)]   (Eq. 7)

The model is deliberately *not* the simulator's ground truth: it assumes
a fixed alpha, ignores static power, ladder discreteness, turbo and the
DDCM fallback — the exact simplifications whose consequences the paper's
Fig. 4 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError

__all__ = ["PowerCapModel"]


@dataclass(frozen=True)
class PowerCapModel:
    """Predicts progress under a package power cap.

    Parameters
    ----------
    beta:
        Application compute-boundedness in [0, 1] (measured per
        Section IV-A).
    r_max:
        Uncapped progress rate ``r(P_coremax)`` in the application's
        progress units per second.
    p_coremax:
        Core power at the uncapped operating point (watts). The paper
        estimates it from the uncapped package power and beta.
    alpha:
        Exponent of the core power/frequency relation; the paper fixes 2.
    """

    beta: float
    r_max: float
    p_coremax: float
    alpha: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta <= 1.0:
            raise ModelError(f"beta must lie in [0, 1], got {self.beta}")
        if self.r_max <= 0:
            raise ModelError(f"r_max must be positive, got {self.r_max}")
        if self.p_coremax <= 0:
            raise ModelError(f"p_coremax must be positive, got {self.p_coremax}")
        if self.alpha < 1.0:
            raise ModelError(f"alpha must be >= 1, got {self.alpha}")

    # -- Eq. 1 ---------------------------------------------------------------

    def time_ratio(self, f: float, f_max: float) -> float:
        """``T(f)/T(f_max)`` from Eq. 1."""
        if not 0 < f <= f_max:
            raise ModelError(f"need 0 < f <= f_max, got f={f}, f_max={f_max}")
        return self.beta * (f_max / f - 1.0) + 1.0

    # -- Eq. 4 -----------------------------------------------------------------

    def progress_at_core_power(self, p_core: float) -> float:
        """``r(P_core)`` from Eq. 4, clamped at the uncapped rate for
        ``P_core >= p_coremax`` (a cap above the operating point has no
        effect)."""
        if p_core <= 0:
            raise ModelError(f"p_core must be positive, got {p_core}")
        if p_core >= self.p_coremax:
            return self.r_max
        denom = self.beta * ((self.p_coremax / p_core) ** (1.0 / self.alpha)
                             - 1.0) + 1.0
        return self.r_max / denom

    # -- Eq. 5 -------------------------------------------------------------------

    def effective_core_cap(self, p_cap: float) -> float:
        """``P_corecap = beta * P_cap`` (Eq. 5): the model's estimate of
        the core-power budget RAPL grants under a package cap."""
        if p_cap <= 0:
            raise ModelError(f"p_cap must be positive, got {p_cap}")
        return self.beta * p_cap

    # -- Eq. 7 ---------------------------------------------------------------------

    def delta_progress(self, p_corecap: float) -> float:
        """Predicted *change* in progress when capping the core at
        ``p_corecap`` from the uncapped state (Eq. 7). Non-negative;
        zero when the cap does not bind."""
        return self.r_max - self.progress_at_core_power(p_corecap)

    def delta_progress_at_package_cap(self, p_cap: float) -> float:
        """Eq. 5 + Eq. 7: predicted change in progress for a *package*
        cap."""
        return self.delta_progress(self.effective_core_cap(p_cap))

    def slowdown_at_package_cap(self, p_cap: float) -> float:
        """Predicted *fractional* progress slowdown under a package cap:
        ``delta / r_max`` in [0, 1). This is the quantity a resource
        manager compares against a job's slowdown tolerance when
        choosing a cap (the paper's Section VI use case)."""
        return self.delta_progress_at_package_cap(p_cap) / self.r_max

    # -- inverse (the paper's stated use case: pick a budget for a target
    # performance) ---------------------------------------------------------

    def core_power_for_progress(self, r_target: float) -> float:
        """Smallest core power budget that sustains ``r_target``
        (inverse of Eq. 4)."""
        if not 0 < r_target <= self.r_max:
            raise ModelError(
                f"target rate must lie in (0, r_max={self.r_max}], got {r_target}"
            )
        if r_target == self.r_max:
            return self.p_coremax
        if self.beta == 0.0:
            # frequency-insensitive code sustains any rate <= r_max at
            # arbitrarily low core power, per the model
            raise ModelError(
                "beta = 0: the model places no core-power requirement on "
                "a frequency-insensitive application"
            )
        # denom = r_max/r = beta*((Pmax/P)^(1/alpha) - 1) + 1
        ratio = (self.r_max / r_target - 1.0) / self.beta + 1.0
        return self.p_coremax / ratio**self.alpha

    def package_cap_for_progress(self, r_target: float) -> float:
        """Package cap that sustains ``r_target`` (inverse of Eq. 5+7)."""
        return self.core_power_for_progress(r_target) / self.beta
