"""Online-performance trace characterization (paper Section IV-C).

The paper characterizes each application's 1 Hz progress series as

* **consistent** — LAMMPS, STREAM: the rate barely moves,
* **fluctuating** — AMG: the rate bounces between 2.5 and 3 iterations/s
  and "needs to be averaged out",
* **phased** — QMCPACK, OpenMC: distinct phases compute at clearly
  different rates.

:func:`classify_trace` reproduces that judgment mechanically, and
:func:`steady_rate` implements the measurement protocol used throughout
the evaluation (trim the warmup/cooldown edges, ignore transport-glitch
zeros, average the rest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries

__all__ = ["TraceClass", "TraceCharacterization", "classify_trace",
           "steady_rate"]

#: Trace classes, as string constants (kept readable in reports).
class TraceClass:
    CONSISTENT = "consistent"
    FLUCTUATING = "fluctuating"
    PHASED = "phased"


@dataclass(frozen=True)
class TraceCharacterization:
    """Result of classifying a progress trace."""

    trace_class: str
    cv: float                      #: coefficient of variation (nonzero samples)
    n_segments: int                #: detected constant-rate segments
    segment_rates: tuple[float, ...]  #: mean rate per segment


def steady_rate(series: TimeSeries, *, warmup: float = 2.0,
                cooldown: float = 0.0, ignore_zeros: bool = True) -> float:
    """Mean progress rate over the steady portion of a run.

    Drops ``warmup`` seconds from the start and ``cooldown`` from the
    end; optionally ignores zero samples (transport glitches, see
    OpenMC). Raises if nothing remains.
    """
    if series.is_empty():
        raise ConfigurationError("cannot take the steady rate of an empty series")
    t0 = series.times[0] + warmup
    t1 = series.times[-1] - cooldown
    window = series.window(t0, t1 + 1e-9)
    values = window.values
    if ignore_zeros:
        values = values[values > 0.0]
    if values.size == 0:
        raise ConfigurationError(
            "no samples left after trimming; widen the measurement window"
        )
    return float(values.mean())


def _segment(values: np.ndarray, rel_step: float) -> list[np.ndarray]:
    """Greedy segmentation: start a new segment when the running segment
    mean and the next sample differ by more than ``rel_step``."""
    segments: list[list[float]] = [[float(values[0])]]
    for v in values[1:]:
        seg = segments[-1]
        mean = float(np.mean(seg))
        scale = max(abs(mean), 1e-12)
        if abs(v - mean) / scale > rel_step:
            segments.append([float(v)])
        else:
            seg.append(float(v))
    return [np.asarray(s) for s in segments]


def classify_trace(series: TimeSeries, *, consistent_cv: float = 0.04,
                   phase_step: float = 0.15, min_segment: int = 3,
                   ignore_zeros: bool = True) -> TraceCharacterization:
    """Classify a 1 Hz progress series (see module docstring).

    Parameters
    ----------
    series:
        The monitor's rate series.
    consistent_cv:
        CV at or below which a single-segment trace counts as consistent.
    phase_step:
        Relative rate change that opens a new segment.
    min_segment:
        Segments shorter than this are treated as noise, not phases.
    ignore_zeros:
        Drop zero samples (transport glitches) before classifying.
    """
    if series.is_empty():
        raise ConfigurationError("cannot classify an empty series")
    values = series.values
    if ignore_zeros:
        values = values[values > 0.0]
    if values.size < 2:
        raise ConfigurationError("need at least 2 nonzero samples to classify")

    mean = float(values.mean())
    cv = float(values.std() / abs(mean)) if mean else float("inf")

    segments = [s for s in _segment(values, phase_step) if len(s) >= min_segment]
    segment_rates = tuple(float(s.mean()) for s in segments)

    # Phases are *sustained, distinct* rate levels; oscillation between
    # quantized bucket values (AMG's 2 vs 3 iterations per bucket) yields
    # several segments at indistinguishable means and is fluctuation.
    distinct_levels = False
    if len(segment_rates) >= 2:
        spread = max(segment_rates) - min(segment_rates)
        distinct_levels = spread / max(abs(mean), 1e-12) > phase_step

    if distinct_levels:
        trace_class = TraceClass.PHASED
    elif cv <= consistent_cv:
        trace_class = TraceClass.CONSISTENT
    else:
        trace_class = TraceClass.FLUCTUATING
    return TraceCharacterization(
        trace_class=trace_class,
        cv=cv,
        n_segments=max(len(segments), 1),
        segment_rates=segment_rates or (mean,),
    )
