"""The semi-structured specialist interviews (paper Tables III & IV).

:data:`QUESTIONS` reproduces Table III verbatim. :data:`RESPONSES`
encodes Table IV; where the published table is typographically ambiguous
the answers follow the unambiguous statements in Section III's prose
(e.g. "the number of iterations cannot be predicted in advance" for AMG
and CANDLE; "online performance cannot be monitored reliably" for the
Category-3 codes).

:func:`category_label` combines the responses with the rule-based
categorizer to regenerate Table V's category column (including CANDLE's
"1/2" borderline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categories import Category, categorize
from repro.exceptions import ConfigurationError

__all__ = ["QUESTIONS", "SurveyResponse", "RESPONSES", "category_label"]

#: Table III, verbatim.
QUESTIONS: tuple[str, ...] = (
    "Is there a well-defined FOM for the application?",
    "Can we measure online performance during execution that correlates "
    "well with either FOM or the execution time?",
    "Does online performance measure progress toward an "
    "application-defined scientific goal?",
    "Is the execution time accurately predictable based on a performance "
    "model of the application?",
    "If the application is loop based, is the number of loop iterations "
    "decided prior to execution?",
    "If application is loop based, do loop iterations proceed in a "
    "uniform manner in terms of instructions executed?",
    "Does the application have multiple phases or components that are "
    "clearly demarcated from a design or performance characteristic "
    "standpoint?",
    "What system resource is the application limited by?",
)


@dataclass(frozen=True)
class SurveyResponse:
    """One application's answers (Table IV row)."""

    app: str
    q1_has_fom: bool
    q2_online_measurable: bool
    q3_measures_goal: bool
    q4_time_predictable: bool
    q5_iterations_known: bool
    q6_iterations_uniform: bool
    q7_phased: bool
    q8_resource: str
    borderline: bool = False  #: CANDLE: Category 1 during training, 2 overall

    def answers(self) -> tuple:
        """Answers in question order (Y/N booleans then the resource)."""
        return (self.q1_has_fom, self.q2_online_measurable,
                self.q3_measures_goal, self.q4_time_predictable,
                self.q5_iterations_known, self.q6_iterations_uniform,
                self.q7_phased, self.q8_resource)


#: Table IV.
RESPONSES: dict[str, SurveyResponse] = {
    r.app: r for r in (
        SurveyResponse("qmcpack", True, True, True, True, True, True, True,
                       "compute"),
        SurveyResponse("openmc", False, True, True, True, True, True, True,
                       "memory latency"),
        SurveyResponse("amg", False, True, False, False, False, True, True,
                       "memory bandwidth"),
        SurveyResponse("lammps", False, True, True, True, True, True, False,
                       "compute"),
        SurveyResponse("candle", False, True, False, False, False, True,
                       True, "compute", borderline=True),
        SurveyResponse("stream", True, True, True, True, True, True, False,
                       "memory bandwidth"),
        SurveyResponse("urban", False, False, False, False, False, False,
                       True, "component-dependent"),
        SurveyResponse("nek5000", True, False, False, False, False, False,
                       False, "compute"),
        SurveyResponse("hacc", True, False, False, False, False, False,
                       True, "compute"),
    )
}


def get_response(app: str) -> SurveyResponse:
    """Response row for an application name."""
    try:
        return RESPONSES[app]
    except KeyError:
        raise ConfigurationError(
            f"no survey response recorded for {app!r}; "
            f"known: {sorted(RESPONSES)}"
        ) from None


def category_label(app: str) -> str:
    """Table V's category column, derived from the Table IV answers."""
    response = get_response(app)
    category = categorize(response)
    if response.borderline and category is Category.CATEGORY_2:
        return "1/2"
    return str(int(category))
