"""repro.daemon — the simulation as a long-running service.

The paper's Node Resource Manager is not a batch library: it is a
long-lived daemon that applications connect to over ZeroMQ, submitting
work and streaming progress reports the power-capping logic consumes
asynchronously (Ramesh et al., IPDPS 2019). This package is that
batch-to-service transition for the reproduction: a :class:`Daemon`
event loop owns one shared simulated cluster
(:class:`~repro.scheduler.scheduler.PowerAwareScheduler` over
:mod:`repro.cluster`), admits and queues submissions from many
concurrent clients, and fans progress telemetry out to subscribers.

Layering — each module owns one concern:

* :mod:`repro.daemon.protocol` — the versioned, line-delimited JSON
  wire format: ``*Request`` / ``*Reply`` / ``*Telemetry`` dataclasses
  and their codec;
* :mod:`repro.daemon.service` — the :class:`Daemon` core: thread-safe
  admission (bounded, FIFO per priority), the deterministic tick loop,
  telemetry fan-out over :mod:`repro.telemetry.pubsub` (HWM drops,
  slow-joiner loss, modelled latency — the paper's ZeroMQ transport
  semantics), and periodic checkpoints;
* :mod:`repro.daemon.server` — real sockets (Unix-domain or TCP): one
  reader thread per client, a driver loop pacing simulated epochs
  against wall time;
* :mod:`repro.daemon.client` — the ``upctl``-style client library and
  CLI (``python -m repro.daemon.client run/status/list/kill/watch``);
* :mod:`repro.daemon.checkpointing` — crash-resumable persistence on
  the repo-wide :class:`~repro.runtime.runfile.RunCheckpoint` format
  (``--resume`` picks a run up from the last periodic checkpoint file
  or the epoch-stamped ``--checkpoint-dir`` store; ``--resume-epoch``
  rewinds — time travel);
* :mod:`repro.daemon.hostio` — the package's *only* wall-clock reads,
  audited by the determinism lint;
* :mod:`repro.daemon.profiles` — the offline-measured demo power book
  for socket smoke tests that cannot afford live characterization.

Determinism: everything under :class:`Daemon` is keyed off the
simulation clock and the seeds — replaying the same sequence of
admitted commands per tick reproduces the identical event trace and
telemetry stream, bit for bit. Wall time exists only *outside* the
core: the server decides when ticks happen, never what they compute.

Start a daemon with ``python -m repro.daemon --socket /tmp/repro.sock``
and talk to it with ``python -m repro.daemon.client --socket
/tmp/repro.sock run lammps --nodes 2 --seconds 3``.
"""

from repro.daemon.checkpointing import (
    build_run_checkpoint,
    load_checkpoint,
    resume_daemon,
    save_checkpoint,
)
from repro.daemon.client import DaemonClient
from repro.daemon.protocol import PROTOCOL_VERSION, decode, encode
from repro.daemon.server import DaemonServer
from repro.daemon.service import Daemon, DaemonConfig

__all__ = [
    "Daemon",
    "DaemonConfig",
    "DaemonServer",
    "DaemonClient",
    "build_run_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "resume_daemon",
    "PROTOCOL_VERSION",
    "encode",
    "decode",
]
