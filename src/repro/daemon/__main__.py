"""Daemon entry point: ``python -m repro.daemon``.

Quick start (demo book skips live characterization)::

    python -m repro.daemon --socket /tmp/repro.sock --book demo \\
        --n-slots 4 --power-budget 300

    python -m repro.daemon --tcp 127.0.0.1:0 --book demo --manual

The daemon prints one ``ready`` line once the socket is bound (with
the resolved address — useful with ``--tcp 127.0.0.1:0``) and serves
until a client sends ``shutdown``. ``--resume`` continues from the
checkpoint file instead of starting an empty cluster; pair it with
``--checkpoint-every`` so there is always a recent file to resume
*from*. ``--checkpoint-dir`` + ``--checkpoint-interval`` keep an
epoch-stamped *store* of checkpoints instead of one file; with
``--resume`` that picks up the latest, and ``--resume-epoch N``
rewinds to the newest checkpoint at or before epoch N (time travel —
e.g. replay from epoch N under a different ``--power-budget``).
"""

from __future__ import annotations

import argparse
import sys

from repro.daemon.checkpointing import resume_daemon
from repro.daemon.profiles import demo_book
from repro.daemon.server import DaemonServer
from repro.daemon.service import Daemon, DaemonConfig
from repro.runtime.pacing import EpochPacer
from repro.scheduler.powerbook import PowerBook
from repro.scheduler.scheduler import SchedulerConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.daemon",
        description="Run the simulated cluster as a long-lived service.")
    endpoint = parser.add_argument_group("endpoint")
    endpoint.add_argument("--socket", help="Unix-domain socket path")
    endpoint.add_argument("--tcp",
                          help="HOST:PORT (port 0 = ephemeral)")

    cluster = parser.add_argument_group("cluster")
    cluster.add_argument("--n-slots", type=int, default=4)
    cluster.add_argument("--power-budget", type=float, default=300.0)
    cluster.add_argument("--policy", default="backfill",
                         choices=("fcfs", "backfill"))
    cluster.add_argument("--epoch", type=float, default=1.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--shards", type=int, default=1)
    cluster.add_argument("--engine", default="object",
                         choices=("object", "vector"),
                         help="node-hosting engine inside each shard")
    cluster.add_argument("--balance", action="store_true",
                         help="rebalance nodes across shards from "
                              "measured epoch wall times (placement "
                              "only; results are invariant)")
    cluster.add_argument("--n-workers", type=int, default=4)
    cluster.add_argument("--min-cap", type=float, default=55.0)
    cluster.add_argument("--cap-step", type=float, default=5.0)

    service = parser.add_argument_group("service")
    service.add_argument("--queue-capacity", type=int, default=64)
    service.add_argument("--book", default="live",
                         choices=("live", "demo"),
                         help="live = characterize apps on first "
                              "submission; demo = preloaded lammps "
                              "profile")
    service.add_argument("--telemetry-delay", type=float, default=0.0)
    service.add_argument("--telemetry-drop", type=float, default=0.0)
    service.add_argument("--telemetry-seed", type=int, default=0)

    pacing = parser.add_argument_group("pacing")
    pacing.add_argument("--sim-rate", type=float, default=20.0,
                        help="simulated seconds per wall second")
    pacing.add_argument("--tick-wall", type=float, default=0.05,
                        help="driver-loop poll interval (wall s)")
    pacing.add_argument("--manual", action="store_true",
                        help="advance only on client 'tick' requests")

    persist = parser.add_argument_group("persistence")
    persist.add_argument("--checkpoint", default=None,
                         help="checkpoint file path")
    persist.add_argument("--checkpoint-every", type=int, default=0,
                         help="epochs between periodic checkpoints "
                              "(0 = only on shutdown)")
    persist.add_argument("--checkpoint-dir", default=None,
                         help="directory for an epoch-stamped "
                              "checkpoint store (keeps every epoch; "
                              "enables --resume-epoch)")
    persist.add_argument("--checkpoint-interval", type=int, default=0,
                         help="epochs between store checkpoints "
                              "(0 = only on shutdown)")
    persist.add_argument("--resume", action="store_true",
                         help="continue from --checkpoint (or the "
                              "latest file in --checkpoint-dir) "
                              "instead of starting empty")
    persist.add_argument("--resume-epoch", type=int, default=None,
                         help="with --resume and --checkpoint-dir: "
                              "rewind to the newest checkpoint at or "
                              "before this epoch")
    return parser


def daemon_from_args(args) -> Daemon:
    if args.resume:
        if args.checkpoint_dir:
            return resume_daemon(args.checkpoint_dir,
                                 epoch=args.resume_epoch)
        if not args.checkpoint:
            raise SystemExit(
                "--resume requires --checkpoint or --checkpoint-dir")
        if args.resume_epoch is not None:
            raise SystemExit("--resume-epoch requires --checkpoint-dir")
        return resume_daemon(args.checkpoint)
    if args.resume_epoch is not None:
        raise SystemExit("--resume-epoch requires --resume")
    config = DaemonConfig(
        scheduler=SchedulerConfig(
            n_slots=args.n_slots, power_budget=args.power_budget,
            policy=args.policy, epoch=args.epoch, seed=args.seed,
            shards=args.shards, engine=args.engine,
            balance=args.balance, n_workers=args.n_workers,
            min_cap=args.min_cap, cap_step=args.cap_step),
        queue_capacity=args.queue_capacity,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_dir=args.checkpoint_dir,
        telemetry_delay=args.telemetry_delay,
        telemetry_drop=args.telemetry_drop,
        telemetry_seed=args.telemetry_seed,
    )
    if args.book == "demo":
        book = demo_book(n_workers=args.n_workers, seed=args.seed)
    else:
        book = PowerBook(n_workers=args.n_workers, seed=args.seed)
    return Daemon(config, book)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if bool(args.socket) == bool(args.tcp):
        raise SystemExit("exactly one of --socket/--tcp is required")
    daemon = daemon_from_args(args)
    pacer = None
    if not args.manual:
        pacer = EpochPacer(args.sim_rate, daemon.config.scheduler.epoch)
    tcp = None
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        tcp = (host or "127.0.0.1", int(port))
    server = DaemonServer(daemon, socket_path=args.socket, tcp=tcp,
                          pacer=pacer, tick_wall=args.tick_wall)
    address = server.bind()
    mode = "manual" if args.manual else f"paced x{args.sim_rate}"
    print(f"repro-daemon ready on {address} ({mode})", flush=True)
    try:
        server.serve_forever()
    finally:
        daemon.close()
    print("repro-daemon stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
