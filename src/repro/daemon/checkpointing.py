"""Crash-resumable persistence for the daemon.

A long-running service must survive its host: the daemon periodically
(every ``checkpoint_every`` epochs into the single ``checkpoint_path``
file, every ``checkpoint_interval`` epochs into the epoch-stamped
``checkpoint_dir`` store, and on clean shutdown) writes a
:class:`~repro.runtime.runfile.RunCheckpoint` of kind ``"daemon"`` —
its config, admission bookkeeping, the power book's measured profiles,
and a full mid-run
:meth:`~repro.scheduler.scheduler.PowerAwareScheduler.snapshot`
(which itself carries a :class:`~repro.stack.checkpoint.NodeCheckpoint`
for every running node). :func:`resume_daemon` rebuilds the whole
service from any of those sources and continues *bit-for-bit*: same
placements, same caps, same telemetry values. The epoch-stamped store
additionally enables time travel — resume from epoch N rather than the
latest file (``--resume-epoch``).

The envelope is the repo-wide one (:mod:`repro.runtime.runfile`), so
the same tooling reads cluster, scheduler, and daemon checkpoints, and
a daemon resume can never silently install a cluster file. The daemon's
own payload lives in ``state`` behind its own
:data:`DAEMON_STATE_VERSION`.

What is deliberately **not** persisted:

* watch subscriptions — they are connection-scoped; clients reconnect
  and re-enter as slow joiners, exactly as after any disconnect;
* the telemetry bus's loss-process state — a resumed daemon restarts
  the drop RNG from its seed. Simulation results never depend on the
  bus (it is observe-only), so this cannot affect parity.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
leaves the previous checkpoint intact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.daemon import protocol as proto
from repro.exceptions import CheckpointError, check_snapshot_version
from repro.hardware.config import NodeConfig
from repro.runtime.runfile import (
    RUN_CHECKPOINT_VERSION,
    RunCheckpoint,
    load_run_checkpoint,
    resolve_checkpoint,
    save_run_checkpoint,
)
from repro.scheduler.powerbook import AppPowerProfile, PowerBook

if TYPE_CHECKING:  # runtime import would be circular
    from repro.daemon.service import Daemon

__all__ = ["DAEMON_STATE_VERSION", "build_run_checkpoint",
           "save_checkpoint", "load_checkpoint", "resume_daemon"]

#: Schema version of the daemon's ``state`` payload inside the
#: :class:`RunCheckpoint` envelope; bump on layout change.
DAEMON_STATE_VERSION = 2


def build_run_checkpoint(daemon: "Daemon") -> RunCheckpoint:
    """The daemon's full mid-run state as a ``"daemon"`` checkpoint.

    ``state["meta"]`` holds one entry per submission the daemon ever
    accepted: ``{"seq", "priority", "request": RunRequest, "buffered",
    "killed"}`` — submissions still buffered at checkpoint time are
    re-admitted on the resumed daemon's first tick.
    """
    meta = [{
        "seq": m.seq,
        "priority": m.priority,
        "request": m.request,
        "buffered": m.buffered,
        "killed": m.killed,
    } for m in sorted(daemon._meta.values(), key=lambda m: m.seq)]
    state = {
        "version": DAEMON_STATE_VERSION,
        "protocol": proto.PROTOCOL_VERSION,
        "epochs": daemon.epochs,
        "ticks": daemon.ticks,
        "seq": daemon._seq,
        "meta": meta,
        "progress": dict(daemon._progress),
        "book_profiles": dict(daemon.book._profiles),
        "book_n_workers": daemon.book.n_workers,
        "book_seed": daemon.book.seed,
        "scheduler": daemon.scheduler.snapshot(),
    }
    return RunCheckpoint(
        version=RUN_CHECKPOINT_VERSION,
        kind="daemon",
        epoch=daemon.epochs,
        now=daemon.scheduler.now,
        config=daemon.config,
        state=state,
    )


def save_checkpoint(daemon: "Daemon", path: str) -> str:
    """Atomically write ``daemon``'s state to ``path``; returns it."""
    return save_run_checkpoint(build_run_checkpoint(daemon), path)


def load_checkpoint(path: str) -> RunCheckpoint:
    """Read and validate a single daemon checkpoint file."""
    return load_run_checkpoint(path, kind="daemon")


def resume_daemon(source: object, cfg: NodeConfig | None = None, *,
                  epoch: int | None = None) -> "Daemon":
    """Rebuild a live :class:`~repro.daemon.service.Daemon` from a
    checkpoint.

    ``source`` is anything :func:`~repro.runtime.runfile
    .resolve_checkpoint` accepts: a checkpoint file path, a store
    directory (or :class:`~repro.runtime.runfile.CheckpointStore`), or
    a loaded :class:`RunCheckpoint`. With a store, ``epoch`` rewinds to
    the newest checkpoint at-or-before that epoch (time travel);
    ``None`` resumes the latest.

    The resumed daemon continues exactly where the checkpointed one
    stopped: running nodes are reinstalled from their node checkpoints,
    queued and still-buffered jobs keep their admission order, and the
    power book keeps its measured profiles (no re-characterization).
    """
    from repro.daemon.service import Daemon, _Admitted

    checkpoint = resolve_checkpoint(source, kind="daemon", epoch=epoch)
    state = checkpoint.state
    check_snapshot_version(state, DAEMON_STATE_VERSION, "Daemon")
    book = PowerBook(cfg, n_workers=state["book_n_workers"],
                     seed=state["book_seed"])
    for profile in state["book_profiles"].values():
        if not isinstance(profile, AppPowerProfile):
            raise CheckpointError(
                f"checkpoint power book holds a "
                f"{type(profile).__name__}, not an AppPowerProfile")
        book.preload(profile)
    daemon = Daemon(checkpoint.config, book, cfg)
    # the daemon is not shared yet, but its counters and collections
    # are declared lock-protected (repro.sanitize guards them under an
    # active tracker), so restore state under the lock like any writer
    with daemon._lock:
        daemon.scheduler.restore(state["scheduler"])
        daemon.clock.advance_to(daemon.scheduler.now)
        daemon.epochs = state["epochs"]
        daemon.ticks = state["ticks"]
        daemon._seq = state["seq"]
        daemon._progress.update(state["progress"])
        for entry in state["meta"]:
            meta = _Admitted(entry["seq"], entry["priority"],
                             entry["request"])
            meta.buffered = entry["buffered"]
            meta.killed = entry["killed"]
            daemon._meta[entry["request"].job_id] = meta
            if meta.buffered:
                daemon._buffer.append(meta)
    return daemon
