"""Crash-resumable persistence for the daemon.

A long-running service must survive its host: the daemon periodically
(every ``checkpoint_every`` epochs, and on clean shutdown) pickles a
:class:`DaemonCheckpoint` — its config, admission bookkeeping, the
power book's measured profiles, and a full mid-run
:meth:`~repro.scheduler.scheduler.PowerAwareScheduler.snapshot`
(which itself carries a :class:`~repro.stack.checkpoint.NodeCheckpoint`
for every running node). :func:`resume_daemon` rebuilds the whole
service from that file and continues *bit-for-bit*: same placements,
same caps, same telemetry values.

What is deliberately **not** persisted:

* watch subscriptions — they are connection-scoped; clients reconnect
  and re-enter as slow joiners, exactly as after any disconnect;
* the telemetry bus's loss-process state — a resumed daemon restarts
  the drop RNG from its seed. Simulation results never depend on the
  bus (it is observe-only), so this cannot affect parity.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

from repro.daemon import protocol as proto
from repro.exceptions import CheckpointError
from repro.hardware.config import NodeConfig
from repro.scheduler.powerbook import AppPowerProfile, PowerBook

__all__ = ["DaemonCheckpoint", "save_checkpoint", "load_checkpoint",
           "resume_daemon"]

#: Schema version of :class:`DaemonCheckpoint`; bump on layout change.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class DaemonCheckpoint:
    """Everything needed to rebuild a daemon mid-run.

    ``meta`` holds one entry per submission the daemon ever accepted:
    ``{"seq", "priority", "request": RunRequest, "buffered",
    "killed"}`` — submissions still buffered at checkpoint time are
    re-admitted on the resumed daemon's first tick.
    """

    version: int
    protocol: int
    config: object                 #: the DaemonConfig (picklable frozen dc)
    epochs: int
    ticks: int
    seq: int
    meta: list = field(default_factory=list)
    progress: dict = field(default_factory=dict)
    book_profiles: dict = field(default_factory=dict)
    book_n_workers: int = 8
    book_seed: int = 0
    scheduler: dict = field(default_factory=dict)


def save_checkpoint(daemon, path: str) -> str:
    """Atomically write ``daemon``'s state to ``path``; returns it."""
    meta = [{
        "seq": m.seq,
        "priority": m.priority,
        "request": m.request,
        "buffered": m.buffered,
        "killed": m.killed,
    } for m in sorted(daemon._meta.values(), key=lambda m: m.seq)]
    checkpoint = DaemonCheckpoint(
        version=CHECKPOINT_VERSION,
        protocol=proto.PROTOCOL_VERSION,
        config=daemon.config,
        epochs=daemon.epochs,
        ticks=daemon.ticks,
        seq=daemon._seq,
        meta=meta,
        progress=dict(daemon._progress),
        book_profiles=dict(daemon.book._profiles),
        book_n_workers=daemon.book.n_workers,
        book_seed=daemon.book.seed,
        scheduler=daemon.scheduler.snapshot(),
    )
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str) -> DaemonCheckpoint:
    """Read and validate a checkpoint file."""
    try:
        with open(path, "rb") as fh:
            checkpoint = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(
            f"cannot read daemon checkpoint {path!r}: {exc}") from exc
    if not isinstance(checkpoint, DaemonCheckpoint):
        raise CheckpointError(
            f"{path!r} does not hold a DaemonCheckpoint "
            f"(got {type(checkpoint).__name__})")
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"daemon checkpoint {path!r} has schema version "
            f"{checkpoint.version}; this build reads "
            f"{CHECKPOINT_VERSION}")
    return checkpoint


def resume_daemon(source, cfg: NodeConfig | None = None):
    """Rebuild a live :class:`~repro.daemon.service.Daemon` from a
    checkpoint (a path or a loaded :class:`DaemonCheckpoint`).

    The resumed daemon continues exactly where the checkpointed one
    stopped: running nodes are reinstalled from their node checkpoints,
    queued and still-buffered jobs keep their admission order, and the
    power book keeps its measured profiles (no re-characterization).
    """
    from repro.daemon.service import Daemon, _Admitted

    checkpoint = source if isinstance(source, DaemonCheckpoint) \
        else load_checkpoint(source)
    book = PowerBook(cfg, n_workers=checkpoint.book_n_workers,
                     seed=checkpoint.book_seed)
    for profile in checkpoint.book_profiles.values():
        if not isinstance(profile, AppPowerProfile):
            raise CheckpointError(
                f"checkpoint power book holds a "
                f"{type(profile).__name__}, not an AppPowerProfile")
        book.preload(profile)
    daemon = Daemon(checkpoint.config, book, cfg)
    daemon.scheduler.restore(checkpoint.scheduler)
    daemon.clock.advance_to(daemon.scheduler.now)
    daemon.epochs = checkpoint.epochs
    daemon.ticks = checkpoint.ticks
    daemon._seq = checkpoint.seq
    daemon._progress.update(checkpoint.progress)
    for entry in checkpoint.meta:
        meta = _Admitted(entry["seq"], entry["priority"],
                         entry["request"])
        meta.buffered = entry["buffered"]
        meta.killed = entry["killed"]
        daemon._meta[entry["request"].job_id] = meta
        if meta.buffered:
            daemon._buffer.append(meta)
    return daemon
