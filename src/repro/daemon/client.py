"""``upctl``-style client: library and CLI for a running daemon.

:class:`DaemonClient` is a small synchronous client over one socket
connection. Requests are strictly request/reply; pushed telemetry
frames (for ``watch`` subscriptions) arriving between replies are
buffered and handed out through :meth:`recv_frame`/:meth:`frames`.

The CLI mirrors the library::

    python -m repro.daemon.client --socket /tmp/repro.sock run j1 lammps \\
        --nodes 2 --work-units 8.9e5 --max-slowdown 0.3
    python -m repro.daemon.client --socket /tmp/repro.sock status j1
    python -m repro.daemon.client --socket /tmp/repro.sock list
    python -m repro.daemon.client --socket /tmp/repro.sock watch w1 \\
        --max-frames 20
    python -m repro.daemon.client --socket /tmp/repro.sock kill j1

Every command prints its reply as one JSON object on stdout (telemetry
frames as one JSON object per line), so shell pipelines can ``jq``
them; an :class:`~repro.daemon.protocol.ErrorReply` exits non-zero
with the message on stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import socket
import sys

from repro.daemon import hostio
from repro.daemon import protocol as proto
from repro.exceptions import ConfigurationError, DaemonError

__all__ = ["DaemonClient", "main"]

_TELEMETRY_TYPES = (proto.StreamTelemetry, proto.EventTelemetry)


class DaemonClient:
    """One connection to a daemon; safe for a single thread.

    Parameters
    ----------
    socket_path:
        Unix-domain socket path; mutually exclusive with ``tcp``.
    tcp:
        ``(host, port)`` of a TCP daemon.
    timeout:
        Wall-clock socket timeout per read (seconds).
    """

    def __init__(self, *, socket_path: str | None = None,
                 tcp: tuple[str, int] | None = None,
                 timeout: float = 30.0) -> None:
        if (socket_path is None) == (tcp is None):
            raise ConfigurationError(
                "exactly one of socket_path/tcp must be given")
        self.socket_path = socket_path
        self.tcp = tcp
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buf = bytearray()   # partial wire line across reads
        self._frames: list = []   # pushed telemetry seen out of band

    # -- connection ----------------------------------------------------

    def connect(self) -> "DaemonClient":
        if self._sock is not None:
            return self
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(self.tcp,
                                            timeout=self.timeout)
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._buf.clear()

    def __enter__(self) -> "DaemonClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/reply -------------------------------------------------

    def request(self, message: object) -> object:
        """Send one request and return its reply; telemetry frames
        arriving first are buffered for :meth:`recv_frame`."""
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        self._sock.sendall(proto.encode(message))
        while True:
            reply = self._read_message()
            if isinstance(reply, _TELEMETRY_TYPES):
                self._frames.append(reply)
                continue
            return reply

    def _read_message(self) -> object:
        # Hand-rolled line buffering (not sock.makefile): a read that
        # times out must leave partial data intact so the next read
        # resumes cleanly — file objects over sockets cannot do that.
        assert self._sock is not None
        while True:
            i = self._buf.find(b"\n")
            if i >= 0:
                line = bytes(self._buf[:i + 1])
                del self._buf[:i + 1]
                return proto.decode(line)
            chunk = self._sock.recv(65536)
            if not chunk:
                raise DaemonError("daemon closed the connection")
            self._buf += chunk

    # -- telemetry -----------------------------------------------------

    def recv_frame(self, timeout: float | None = None) -> object | None:
        """Next pushed telemetry frame, or None when ``timeout`` wall
        seconds pass without one."""
        if self._frames:
            return self._frames.pop(0)
        assert self._sock is not None, "not connected"
        old = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            message = self._read_message()
        except socket.timeout:
            return None
        finally:
            self._sock.settimeout(old)
        if not isinstance(message, _TELEMETRY_TYPES):
            raise DaemonError(
                f"expected a telemetry frame, got "
                f"{type(message).__name__}")
        return message

    def frames(self, *, max_frames: int | None = None,
               wall_budget: float = 30.0, idle: float | None = None):
        """Yield pushed frames until ``max_frames`` arrive,
        ``wall_budget`` wall seconds elapse, or (with ``idle``) no
        frame arrives for ``idle`` wall seconds — the usual way to
        drain "everything the daemon has pushed so far"."""
        start = hostio.monotonic_s()
        quiet = start
        seen = 0
        while max_frames is None or seen < max_frames:
            now = hostio.monotonic_s()
            left = wall_budget - (now - start)
            if left <= 0:
                return
            if idle is not None and now - quiet >= idle:
                return
            frame = self.recv_frame(timeout=min(left, 0.25))
            if frame is None:
                continue
            quiet = hostio.monotonic_s()
            seen += 1
            yield frame

    # -- one method per command ----------------------------------------

    def run(self, job_id: str, app_name: str, *, n_nodes: int,
            work_units: float, max_slowdown: float | None = None,
            priority: int = 0, app_kwargs: dict | None = None) -> object:
        return self.request(proto.RunRequest(
            job_id=job_id, app_name=app_name, n_nodes=n_nodes,
            work_units=work_units, max_slowdown=max_slowdown,
            priority=priority, app_kwargs=app_kwargs))

    def status(self, job_id: str) -> object:
        return self.request(proto.StatusRequest(job_id=job_id))

    def list(self) -> object:
        return self.request(proto.ListRequest())

    def kill(self, job_id: str) -> object:
        return self.request(proto.KillRequest(job_id=job_id))

    def watch(self, watch_id: str, *, topic: str = "progress",
              hwm: int = 1000, events: bool = True) -> object:
        return self.request(proto.WatchRequest(
            watch_id=watch_id, topic=topic, hwm=hwm, events=events))

    def tick(self, epochs: int = 1) -> object:
        return self.request(proto.TickRequest(epochs=epochs))

    def info(self) -> object:
        return self.request(proto.InfoRequest())

    def shutdown(self) -> object:
        return self.request(proto.ShutdownRequest())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _parse_endpoint(args) -> dict:
    if bool(args.socket) == bool(args.tcp):
        raise SystemExit("exactly one of --socket/--tcp is required")
    if args.socket:
        return {"socket_path": args.socket}
    host, _, port = args.tcp.rpartition(":")
    return {"tcp": (host or "127.0.0.1", int(port))}


def _emit(message: object) -> int:
    """Print a reply as JSON; error replies exit non-zero."""
    body = dataclasses.asdict(message)
    body["type"] = proto.wire_type(type(message))
    # unbuffered so watchers stream frames even when stdout is a pipe
    print(json.dumps(body), flush=True)
    if isinstance(message, proto.ErrorReply):
        print(f"error [{message.code}]: {message.message}",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.daemon.client",
        description="Talk to a running repro daemon.")
    parser.add_argument("--socket", help="Unix-domain socket path")
    parser.add_argument("--tcp", help="daemon TCP endpoint HOST:PORT")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="socket timeout in wall seconds")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="submit a job")
    run.add_argument("job_id")
    run.add_argument("app_name")
    run.add_argument("--nodes", type=int, default=1)
    run.add_argument("--work-units", type=float, required=True,
                     help="progress units per node to produce")
    run.add_argument("--max-slowdown", type=float, default=None,
                     help="eco-mode tolerance in (0, 1); omit = uncapped")
    run.add_argument("--priority", type=int, default=0)
    run.add_argument("--app-kwargs", default=None,
                     help="application sizing as a JSON object")

    status = sub.add_parser("status", help="one job's state")
    status.add_argument("job_id")

    sub.add_parser("list", help="all jobs this daemon has seen")

    kill = sub.add_parser("kill", help="cancel a pending/running job")
    kill.add_argument("job_id")

    watch = sub.add_parser("watch",
                           help="stream telemetry frames to stdout")
    watch.add_argument("watch_id")
    watch.add_argument("--topic", default="progress")
    watch.add_argument("--hwm", type=int, default=1000)
    watch.add_argument("--no-events", action="store_true")
    watch.add_argument("--max-frames", type=int, default=None)
    watch.add_argument("--wall-budget", type=float, default=30.0)
    watch.add_argument("--idle", type=float, default=None,
                       help="stop after this many wall seconds "
                            "without a frame")

    tick = sub.add_parser("tick", help="advance a manual-mode daemon")
    tick.add_argument("epochs", type=int, nargs="?", default=1)

    sub.add_parser("info", help="daemon-wide counters")
    sub.add_parser("shutdown", help="stop the daemon (checkpoints "
                                    "first when configured)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    endpoint = _parse_endpoint(args)
    with DaemonClient(timeout=args.timeout, **endpoint) as client:
        if args.command == "run":
            app_kwargs = json.loads(args.app_kwargs) \
                if args.app_kwargs else None
            return _emit(client.run(
                args.job_id, args.app_name, n_nodes=args.nodes,
                work_units=args.work_units,
                max_slowdown=args.max_slowdown, priority=args.priority,
                app_kwargs=app_kwargs))
        if args.command == "status":
            return _emit(client.status(args.job_id))
        if args.command == "list":
            return _emit(client.list())
        if args.command == "kill":
            return _emit(client.kill(args.job_id))
        if args.command == "tick":
            return _emit(client.tick(args.epochs))
        if args.command == "info":
            return _emit(client.info())
        if args.command == "shutdown":
            return _emit(client.shutdown())
        # watch: print the reply, then stream frames as JSON lines
        reply = client.watch(args.watch_id, topic=args.topic,
                             hwm=args.hwm, events=not args.no_events)
        code = _emit(reply)
        if code:
            return code
        for frame in client.frames(max_frames=args.max_frames,
                                   wall_budget=args.wall_budget,
                                   idle=args.idle):
            _emit(frame)
        return 0


if __name__ == "__main__":
    sys.exit(main())
