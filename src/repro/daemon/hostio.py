"""The daemon package's only wall-clock access — audited.

The determinism contract (see the :mod:`repro.daemon` package
docstring) is that wall time decides *when* ticks happen, never what
they compute. To keep that auditable, every host-clock read and sleep
the daemon performs funnels through this module, which is registered in
``repro.lint``'s ``AUDITED_CLOCK_MODULES`` — the det-wallclock rule
flags ``time.monotonic``/``time.sleep`` anywhere else under
``repro/``. Anything that imports from here is, by construction, on
the nondeterministic side of the seam and must not feed values into
simulation state.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s", "sleep"]


def monotonic_s() -> float:
    """Monotonic host clock in seconds (pacing and timeouts only)."""
    return time.monotonic()


def sleep(seconds: float) -> None:
    """Block the calling (driver or client) thread on the host clock."""
    time.sleep(seconds)
