"""Offline-measured demo power book for daemon smoke runs.

A live :class:`~repro.scheduler.powerbook.PowerBook` characterizes each
application on first submission — two DVFS-pinned runs plus capped
probe runs, tens of simulated minutes of cluster time. That is the
right default for experiments, but a socket smoke test (CI's
daemon-smoke job, the README quick start) only wants the service
plumbing exercised, not the measurement protocol.

:func:`demo_book` returns a book preloaded with the lammps profile
those runs produce on the exact engine with the calibrated Skylake
node — the same constants the scheduler test fixtures pin
(``r_max = 8.96e5`` units/s, ``p_uncapped = 65.0`` W) — so a demo
daemon admits ``lammps`` jobs instantly and every cap decision still
goes through the real model. Submitting any *other* application falls
through to live characterization as usual.
"""

from __future__ import annotations

from repro.core.model import PowerCapModel
from repro.scheduler.powerbook import AppPowerProfile, PowerBook

__all__ = ["DEMO_LAMMPS_RATE", "DEMO_LAMMPS_POWER", "demo_book"]

#: Steady uncapped lammps progress rate on the calibrated Skylake node
#: (units/s), as measured by the characterization protocol.
DEMO_LAMMPS_RATE = 8.96e5
#: Steady uncapped lammps package power on the same node (W).
DEMO_LAMMPS_POWER = 65.0


def demo_book(*, n_workers: int = 4, seed: int = 0) -> PowerBook:
    """A power book with lammps preloaded from offline measurements."""
    book = PowerBook(n_workers=n_workers, seed=seed)
    book.preload(AppPowerProfile(
        app_name="lammps",
        beta=1.0,
        mpo=3e-4,
        r_max=DEMO_LAMMPS_RATE,
        p_uncapped=DEMO_LAMMPS_POWER,
        model=PowerCapModel(beta=1.0, r_max=DEMO_LAMMPS_RATE,
                            p_coremax=DEMO_LAMMPS_POWER, alpha=2.0),
        fit_residual_rms=0.0,
        probe_caps=(50.0,),
    ))
    return book
