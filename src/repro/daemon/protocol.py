"""The daemon's wire format: versioned, line-delimited JSON.

The paper's NRM speaks JSON messages over ZeroMQ sockets; this module
is the reproduction's equivalent, transport-agnostic so the same codec
serves Unix-domain sockets, TCP, and in-process tests. Every message is
one line::

    {"v": 1, "type": "run_request", "body": {...}}\\n

Three message families, mirrored in the class-name suffixes the
shard-boundary lint recognizes as wire types:

* ``*Request`` — client to daemon commands;
* ``*Reply`` — daemon to client responses (every request gets exactly
  one reply; failures are a typed :class:`ErrorReply`, never a closed
  connection);
* ``*Telemetry`` — daemon to client stream frames, pushed to ``watch``
  subscribers after each tick.

All field types are JSON-native (numbers, strings, bools, lists,
dicts, None), so a decoded message round-trips exactly and the
dataclasses stay trivially picklable. Unknown message types, version
mismatches, and malformed bodies raise
:class:`~repro.exceptions.ProtocolError` — the server catches it and
answers with an :class:`ErrorReply` instead of dying.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass, field

from repro.exceptions import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "RunRequest",
    "StatusRequest",
    "ListRequest",
    "KillRequest",
    "WatchRequest",
    "TickRequest",
    "InfoRequest",
    "ShutdownRequest",
    "RunReply",
    "StatusReply",
    "ListReply",
    "KillReply",
    "WatchReply",
    "TickReply",
    "InfoReply",
    "ShutdownReply",
    "ErrorReply",
    "StreamTelemetry",
    "EventTelemetry",
    "encode",
    "decode",
    "wire_type",
]

#: Bump on any incompatible wire change; both ends refuse a mismatch.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Requests (client -> daemon)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """Submit one job (the ``upctl run`` equivalent).

    ``priority`` orders admission: higher priorities drain first, ties
    drain in arrival order (FIFO per priority). ``work_units`` is the
    per-node progress target, exactly as in
    :class:`~repro.scheduler.job.Job`.
    """

    job_id: str
    app_name: str
    n_nodes: int
    work_units: float
    max_slowdown: float | None = None
    priority: int = 0
    app_kwargs: dict | None = None


@dataclass(frozen=True)
class StatusRequest:
    job_id: str


@dataclass(frozen=True)
class ListRequest:
    pass


@dataclass(frozen=True)
class KillRequest:
    job_id: str


@dataclass(frozen=True)
class WatchRequest:
    """Subscribe this connection to the telemetry stream.

    ``watch_id`` names the subscription: reconnecting with the same id
    re-enters as a slow joiner (fresh queue, no stale backlog — see
    :meth:`repro.telemetry.pubsub.SubSocket.resubscribe`). ``topic`` is
    a ZeroMQ-style prefix filter over the daemon's telemetry topics
    (``progress/<job_id>/<node_id>``, ``cluster/power``, ...); ``hwm``
    bounds the subscriber queue, and ``events`` additionally streams
    the scheduler's lifecycle events (reliable, not loss-modelled).
    """

    watch_id: str
    topic: str = "progress"
    hwm: int = 1000
    events: bool = True


@dataclass(frozen=True)
class TickRequest:
    """Manually advance up to ``epochs`` simulated epochs (paced
    daemons tick themselves; manual mode is for tests and replays)."""

    epochs: int = 1


@dataclass(frozen=True)
class InfoRequest:
    pass


@dataclass(frozen=True)
class ShutdownRequest:
    pass


# ----------------------------------------------------------------------
# Replies (daemon -> client)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunReply:
    job_id: str
    seq: int          #: daemon-wide admission sequence number
    state: str        #: JobState value at reply time ("pending")


@dataclass(frozen=True)
class StatusReply:
    job_id: str
    state: str
    n_nodes: int
    work_units: float
    progress: float               #: min-over-nodes cumulative units
    submit_time: float | None
    start_time: float | None
    end_time: float | None
    cap: float | None             #: per-node cap chosen at admission
    measured_slowdown: float | None


@dataclass(frozen=True)
class ListReply:
    now: float
    #: one ``{job_id, state, app_name, n_nodes, priority, seq}`` per job
    jobs: list = field(default_factory=list)


@dataclass(frozen=True)
class KillReply:
    job_id: str
    was_running: bool


@dataclass(frozen=True)
class WatchReply:
    watch_id: str
    resumed: bool     #: True when an existing subscription reconnected


@dataclass(frozen=True)
class TickReply:
    now: float
    epochs: int       #: epochs actually run (0 when the cluster idles)
    running: int
    queued: int


@dataclass(frozen=True)
class InfoReply:
    protocol: int
    now: float
    epochs: int
    n_slots: int
    power_budget: float
    policy: str
    queued: int
    running: int
    completed: int
    killed: int


@dataclass(frozen=True)
class ShutdownReply:
    checkpointed: bool


@dataclass(frozen=True)
class ErrorReply:
    """Typed failure; ``code`` is machine-readable and stable.

    Codes: ``queue-full``, ``duplicate-job``, ``unknown-job``,
    ``unknown-app``, ``inadmissible``, ``not-active``, ``bad-request``,
    ``protocol``, ``internal``.
    """

    code: str
    message: str


# ----------------------------------------------------------------------
# Telemetry stream (daemon -> watch subscribers)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StreamTelemetry:
    """One pub/sub bus message, forwarded to a subscriber.

    ``time`` is the *publish* stamp in simulated seconds; under a
    modelled transport delay the frame reaches the client strictly
    later, so a monitor computing rates from these frames sees exactly
    the staleness the paper's ZeroMQ transport produces under load.
    """

    time: float
    topic: str
    value: float


@dataclass(frozen=True)
class EventTelemetry:
    """One scheduler lifecycle event (reliable side channel)."""

    time: float
    kind: str         #: event class name, e.g. "JobStarted"
    data: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------

_MESSAGE_TYPES = (
    RunRequest, StatusRequest, ListRequest, KillRequest, WatchRequest,
    TickRequest, InfoRequest, ShutdownRequest,
    RunReply, StatusReply, ListReply, KillReply, WatchReply, TickReply,
    InfoReply, ShutdownReply, ErrorReply,
    StreamTelemetry, EventTelemetry,
)


def wire_type(cls: type) -> str:
    """``RunRequest`` -> ``"run_request"`` (the envelope type tag)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", cls.__name__).lower()


_BY_TYPE = {wire_type(cls): cls for cls in _MESSAGE_TYPES}


def encode(message: object) -> bytes:
    """One wire line (newline-terminated UTF-8) for ``message``."""
    cls = type(message)
    tag = wire_type(cls)
    if _BY_TYPE.get(tag) is not cls:
        raise ProtocolError(f"{cls.__name__} is not a wire message type")
    envelope = {"v": PROTOCOL_VERSION, "type": tag,
                "body": dataclasses.asdict(message)}
    try:
        line = json.dumps(envelope, allow_nan=False, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"{cls.__name__} body is not JSON-encodable: {exc}") from exc
    return line.encode("utf-8") + b"\n"


def decode(line: bytes | str) -> object:
    """Parse one wire line back into its message dataclass."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed wire line: {exc}") from exc
    if not isinstance(envelope, dict):
        raise ProtocolError(
            f"wire line is not an object: {type(envelope).__name__}")
    version = envelope.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}")
    tag = envelope.get("type")
    cls = _BY_TYPE.get(tag)
    if cls is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise ProtocolError(f"{tag}: body must be an object")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(body) - known
    if unknown:
        raise ProtocolError(
            f"{tag}: unknown field(s) {sorted(unknown)}")
    try:
        return cls(**body)
    except TypeError as exc:
        raise ProtocolError(f"{tag}: {exc}") from exc
