"""Socket front-end: the daemon on a Unix-domain or TCP endpoint.

:class:`DaemonServer` puts a :class:`~repro.daemon.service.Daemon` on
a real socket. One acceptor thread hands each client to its own reader
thread; requests are decoded off the line-delimited JSON wire
(:mod:`repro.daemon.protocol`), served through :meth:`Daemon.handle`
(which serializes them under the daemon lock), and answered on the
same connection. ``watch`` subscriptions additionally receive pushed
telemetry frames after every tick.

Two driving modes:

* **paced** — the server thread owns an
  :class:`~repro.runtime.pacing.EpochPacer` and converts elapsed wall
  time (read through the audited :mod:`repro.daemon.hostio` module)
  into simulated epochs, so the simulation advances in real time while
  clients come and go;
* **manual** (``pacer=None``) — simulated time moves only when a
  client sends ``tick``. This is the deterministic mode the e2e tests
  replay command logs under.

Either way, *what* an epoch computes never depends on wall time — the
pacer only decides how many epochs to run (see
:mod:`repro.runtime.pacing`).
"""

from __future__ import annotations

import os
import socket
import threading

from repro import obs, sanitize
from repro.daemon import hostio
from repro.daemon import protocol as proto
from repro.daemon.service import Daemon
from repro.exceptions import ConfigurationError, ProtocolError
from repro.runtime.pacing import EpochPacer

__all__ = ["DaemonServer"]


class _ClientConn:
    """One accepted connection: its socket, a write lock (replies and
    pushed telemetry frames interleave from different threads), and the
    watch subscriptions it owns."""

    __slots__ = ("name", "sock", "wlock", "watch_ids")

    def __init__(self, name: str, sock: socket.socket) -> None:
        self.name = name
        self.sock = sock
        self.wlock = sanitize.tracked_lock("_ClientConn.wlock")
        # iterated by the driver thread, mutated by the reader thread:
        # reads are as racy as writes here, so guard both
        self.watch_ids: set[str] = sanitize.guarded(
            set(), "_ClientConn.watch_ids", self.wlock, reads=True)


class DaemonServer:
    """Serve one :class:`Daemon` over a socket until shutdown.

    Parameters
    ----------
    daemon:
        The service core to expose.
    socket_path:
        Unix-domain socket path; mutually exclusive with ``tcp``.
    tcp:
        ``(host, port)``; port 0 binds an ephemeral port (read the
        result from :attr:`address`).
    pacer:
        Wall-clock pacing, or None for manual (tick-by-request) mode.
    tick_wall:
        Paced mode's driver-loop sleep between pacer polls (wall
        seconds).
    """

    def __init__(self, daemon: Daemon, *, socket_path: str | None = None,
                 tcp: tuple[str, int] | None = None,
                 pacer: EpochPacer | None = None,
                 tick_wall: float = 0.05) -> None:
        if (socket_path is None) == (tcp is None):
            raise ConfigurationError(
                "exactly one of socket_path/tcp must be given")
        if tick_wall <= 0:
            raise ConfigurationError(
                f"tick_wall must be positive, got {tick_wall}")
        self.daemon = daemon
        self.socket_path = socket_path
        self.tcp = tcp
        self.pacer = pacer
        self.tick_wall = tick_wall
        self.address: str = ""
        self._listener: socket.socket | None = None
        self._conns_lock = sanitize.tracked_lock(
            "DaemonServer._conns_lock")
        self._conns: dict[int, _ClientConn] = sanitize.guarded(
            {}, "DaemonServer._conns", self._conns_lock, reads=True)
        self._stop = threading.Event()
        self._next_client = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self) -> str:
        """Create and bind the listening socket; returns the address."""
        if self.socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(self.socket_path)
            except OSError:
                # a previous daemon's stale socket file: claim the path
                # if nobody is listening, else re-raise
                if self._path_is_live():
                    listener.close()
                    raise
                os.unlink(self.socket_path)
                listener.bind(self.socket_path)
            self.address = self.socket_path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self.tcp)
            host, port = listener.getsockname()[:2]
            self.address = f"{host}:{port}"
        listener.listen()
        listener.settimeout(0.1)  # so the acceptor notices shutdown
        # benign: bind() happens-before Thread.start() of the acceptor,
        # and _listener is never rebound afterwards
        self._listener = listener  # repro-lint: disable=conc-unguarded-write
        return self.address

    def _path_is_live(self) -> bool:
        """Is some daemon actually listening on ``socket_path``?"""
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.connect(self.socket_path)
        except OSError:
            return False
        finally:
            probe.close()
        return True

    def serve_forever(self) -> None:
        """Bind (if needed), accept clients, and drive ticks until a
        ``shutdown`` request arrives. Blocks the calling thread."""
        if self._listener is None:
            self.bind()
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="daemon-accept", daemon=True)
        acceptor.start()
        try:
            self._drive()
        finally:
            self._stop.set()
            acceptor.join(timeout=2.0)
            self._teardown()

    def shutdown(self) -> None:
        """Stop the server from another thread."""
        self._stop.set()

    def _drive(self) -> None:
        """Paced mode: convert wall time to epochs; manual mode: just
        flush telemetry produced by client-driven ticks."""
        last = hostio.monotonic_s()
        while not self._stop.is_set():
            hostio.sleep(self.tick_wall)
            if self.pacer is not None:
                now = hostio.monotonic_s()
                due = self.pacer.epochs_due(now - last)
                last = now
                if due:
                    self.daemon.tick(due)
            self._flush_watchers()

    def _teardown(self) -> None:
        if self._listener is not None:
            self._listener.close()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.sock.close()

    # ------------------------------------------------------------------
    # Client handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._conns_lock:
                cid = self._next_client
                self._next_client += 1
                conn = _ClientConn(f"client-{cid}", sock)
                self._conns[cid] = conn
            threading.Thread(target=self._client_loop, args=(cid, conn),
                             name=f"daemon-{conn.name}",
                             daemon=True).start()

    def _client_loop(self, cid: int, conn: _ClientConn) -> None:
        try:
            with conn.sock.makefile("rb") as reader:
                for line in reader:
                    if not line.strip():
                        continue
                    if not self._serve_line(conn, line):
                        break
        except OSError:
            pass
        finally:
            self._drop_client(cid, conn)

    def _serve_line(self, conn: _ClientConn, line: bytes) -> bool:
        """Serve one request line; False ends the connection's loop
        (after a shutdown request took the whole server down)."""
        try:
            request = proto.decode(line)
        except ProtocolError as exc:
            self._send(conn, proto.ErrorReply(code="protocol",
                                              message=str(exc)))
            return True
        reply = self.daemon.handle(request)
        if isinstance(request, proto.WatchRequest) and \
                isinstance(reply, proto.WatchReply):
            # the driver thread iterates watch_ids in _flush_watchers;
            # wlock serialises this reader-thread mutation against it
            with conn.wlock:
                conn.watch_ids.add(reply.watch_id)
        self._send(conn, reply)
        if isinstance(request, proto.TickRequest):
            # a manual tick produced telemetry; push it out now rather
            # than waiting for the driver loop's next pass
            self._flush_watchers()
        if isinstance(request, proto.ShutdownRequest):
            self._stop.set()
            return False
        return True

    def _drop_client(self, cid: int, conn: _ClientConn) -> None:
        with conn.wlock:
            watch_ids = list(conn.watch_ids)
        for watch_id in watch_ids:
            self.daemon.detach_watch(watch_id)
        with self._conns_lock:
            self._conns.pop(cid, None)
        conn.sock.close()

    # ------------------------------------------------------------------
    # Telemetry push
    # ------------------------------------------------------------------

    def _flush_watchers(self) -> None:
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            with conn.wlock:
                watch_ids = list(conn.watch_ids)
            for watch_id in watch_ids:
                for frame in self.daemon.drain_watch(watch_id):
                    self._send(conn, frame)

    def _send(self, conn: _ClientConn, message: object) -> None:
        try:
            data = proto.encode(message)
        except ProtocolError as exc:
            data = proto.encode(proto.ErrorReply(code="internal",
                                                 message=str(exc)))
        try:
            with conn.wlock:
                conn.sock.sendall(data)
        except OSError:
            return  # reader thread will observe the close and clean up
        obs.metrics().counter("daemon.client_bytes_out",
                              client=conn.name).inc(len(data))
