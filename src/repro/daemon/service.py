"""The daemon core: one shared cluster behind a request interface.

:class:`Daemon` is the transport-free heart of the service. It owns a
:class:`~repro.scheduler.scheduler.PowerAwareScheduler`, a bounded
thread-safe admission buffer in front of it, and a
:class:`~repro.telemetry.pubsub.MessageBus` that progress telemetry
fans out over. The socket layer (:mod:`repro.daemon.server`) and the
tests drive it the same way:

* :meth:`handle` — serve one protocol request, return exactly one
  reply. Safe to call from many client threads at once; every request
  runs under the daemon lock.
* :meth:`tick` — drain the admission buffer into the scheduler and
  advance up to ``max_epochs`` simulated epochs. *Only* tick moves
  simulated time; requests between ticks see a frozen simulation.
* :meth:`drain_watch` — collect the telemetry frames owed to one
  ``watch`` subscription (bus messages whose modelled delivery time
  has arrived, plus the reliable lifecycle-event side channel).

Determinism: the daemon's observable behaviour is a pure function of
its config, the power book, and the *sequence* of admitted commands
between ticks. Wall time never enters — the server decides when ticks
happen, never what they compute — so a manual-tick replay of the same
command log reproduces the identical event trace and telemetry stream,
bit for bit (the e2e suite holds a daemon run to byte-equality with
the equivalent batch :meth:`PowerAwareScheduler.run`).

Admission is FIFO per priority: the buffer drains in
``(-priority, seq)`` order, where ``seq`` is assigned under the lock
at admission, so equal-priority jobs enter the scheduler queue exactly
in arrival order no matter how many client threads race.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import deque
from dataclasses import dataclass

from repro import obs, sanitize
from repro.daemon import protocol as proto
from repro.exceptions import ConfigurationError, ReproError
from repro.hardware.config import NodeConfig
from repro.scheduler.events import SchedulerEvent
from repro.scheduler.job import Job, JobState
from repro.scheduler.powerbook import PowerBook
from repro.scheduler.scheduler import PowerAwareScheduler, SchedulerConfig
from repro.runtime.clock import SimClock
from repro.telemetry.pubsub import MessageBus, SubSocket

__all__ = ["DaemonConfig", "Daemon"]

#: Reliable event outboxes are bounded too (a detached watcher must not
#: grow without limit); beyond this the oldest events are discarded.
_EVENT_OUTBOX_CAP = 10_000


@dataclass(frozen=True)
class DaemonConfig:
    """Static parameters of one daemon instance.

    Attributes
    ----------
    scheduler:
        The shared cluster's :class:`SchedulerConfig`.
    queue_capacity:
        Jobs that may wait (admission buffer + scheduler queue) before
        new submissions are rejected with a ``queue-full`` error.
    checkpoint_every:
        Simulated epochs between periodic checkpoints; 0 disables.
    checkpoint_path:
        Where periodic (and shutdown) checkpoints are written (a single
        file, atomically replaced each time).
    checkpoint_interval:
        Simulated epochs between epoch-stamped
        :class:`~repro.runtime.runfile.RunCheckpoint` saves into
        ``checkpoint_dir``; 0 disables.
    checkpoint_dir:
        Directory for the epoch-stamped checkpoint store
        (:class:`~repro.runtime.runfile.CheckpointStore`). Unlike the
        single ``checkpoint_path`` file, the store keeps *every*
        checkpoint, enabling time-travel resume (``--resume-epoch``).
    telemetry_delay:
        Modelled bus delivery latency in *simulated* seconds — frames
        published at epoch *t* become receivable at ``t + delay``.
    telemetry_drop:
        Seeded per-message loss probability on the bus.
    telemetry_seed:
        Seed of the loss process.
    default_hwm:
        Subscriber queue bound when a ``watch`` does not choose one.
    """

    scheduler: SchedulerConfig
    queue_capacity: int = 64
    checkpoint_every: int = 0
    checkpoint_path: str | None = None
    checkpoint_interval: int = 0
    checkpoint_dir: str | None = None
    telemetry_delay: float = 0.0
    telemetry_drop: float = 0.0
    telemetry_seed: int = 0
    default_hwm: int = 1000

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got "
                f"{self.checkpoint_every}")
        if self.checkpoint_every and not self.checkpoint_path:
            raise ConfigurationError(
                "checkpoint_every > 0 requires a checkpoint_path")
        if self.checkpoint_interval < 0:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 0, got "
                f"{self.checkpoint_interval}")
        if self.checkpoint_interval and not self.checkpoint_dir:
            raise ConfigurationError(
                "checkpoint_interval > 0 requires a checkpoint_dir")
        if self.default_hwm < 1:
            raise ConfigurationError(
                f"default_hwm must be >= 1, got {self.default_hwm}")


class _Admitted:
    """Daemon-side lifetime record of one submission."""

    __slots__ = ("seq", "priority", "request", "buffered", "killed")

    def __init__(self, seq: int, priority: int,
                 request: proto.RunRequest) -> None:
        self.seq = seq
        self.priority = priority
        self.request = request
        self.buffered = True   #: still in the admission buffer
        self.killed = False    #: killed *while* buffered (no record)


class _Watcher:
    """One named ``watch`` subscription (outlives its connection)."""

    __slots__ = ("watch_id", "sub", "want_events", "events",
                 "events_lost", "attached")

    def __init__(self, watch_id: str, sub: SubSocket,
                 want_events: bool) -> None:
        self.watch_id = watch_id
        self.sub = sub
        self.want_events = want_events
        self.events: deque = deque()
        self.events_lost = 0
        self.attached = True


class Daemon:
    """Thread-safe service front of one power-aware simulated cluster.

    Parameters
    ----------
    config:
        Daemon parameters (wrapping the scheduler's).
    powerbook:
        Shared application profiles; preload
        (:func:`repro.daemon.profiles.demo_book`) to skip live
        characterization on first submission.
    cfg:
        Baseline slot hardware configuration.
    """

    def __init__(self, config: DaemonConfig, powerbook: PowerBook,
                 cfg: NodeConfig | None = None) -> None:
        self.config = config
        self.book = powerbook
        self.scheduler = PowerAwareScheduler(config.scheduler, powerbook,
                                             cfg)
        # The bus lives in simulated time: this clock mirrors the
        # scheduler's `now` so stamps, delays, and drops stay inside
        # the deterministic core.
        self.clock = SimClock()
        self.bus = MessageBus(self.clock, delay=config.telemetry_delay,
                              drop_prob=config.telemetry_drop,
                              seed=config.telemetry_seed)
        self._pub = self.bus.pub_socket()
        # tracked when a repro.sanitize tracker is active, a plain
        # threading.RLock otherwise (zero cost when off)
        self._lock = sanitize.tracked_rlock("Daemon._lock")
        self._buffer: list[_Admitted] = sanitize.guarded(
            [], "Daemon._buffer", self._lock)
        self._meta: dict[str, _Admitted] = sanitize.guarded(
            {}, "Daemon._meta", self._lock)
        self._progress: dict[str, float] = sanitize.guarded(
            {}, "Daemon._progress", self._lock)
        self._watchers: dict[str, _Watcher] = sanitize.guarded(
            {}, "Daemon._watchers", self._lock)
        self._seq = 0
        self.epochs = 0          #: scheduler steps taken over the lifetime
        self.ticks = 0
        self._shutdown = False
        if config.checkpoint_dir:
            from repro.runtime.runfile import CheckpointStore

            self._run_store = CheckpointStore(config.checkpoint_dir,
                                              kind="daemon")
        else:
            self._run_store = None
        self.scheduler.add_listener(self._on_event)
        self.scheduler.add_epoch_listener(self._on_epoch)
        # under an active sanitizer: subscriber bookkeeping and the
        # scalar counters must only change while the daemon lock is
        # held (guards are installed last so __init__ itself is free)
        sanitize.guard_attr(self.bus, "_subs", "MessageBus._subs",
                            self._lock)
        sanitize.guard_fields(self, ("_seq", "epochs", "ticks",
                                     "_shutdown"), self._lock)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def handle(self, request: object) -> object:
        """Serve one protocol request; always returns one reply
        (failures become typed :class:`~repro.daemon.protocol.
        ErrorReply`\\ s, never exceptions — the transport must stay
        up)."""
        with self._lock:
            try:
                if isinstance(request, proto.RunRequest):
                    return self._handle_run(request)
                if isinstance(request, proto.StatusRequest):
                    return self._handle_status(request)
                if isinstance(request, proto.ListRequest):
                    return self._handle_list()
                if isinstance(request, proto.KillRequest):
                    return self._handle_kill(request)
                if isinstance(request, proto.WatchRequest):
                    return self._handle_watch(request)
                if isinstance(request, proto.TickRequest):
                    return self._handle_tick(request)
                if isinstance(request, proto.InfoRequest):
                    return self._handle_info()
                if isinstance(request, proto.ShutdownRequest):
                    return self._handle_shutdown()
                return proto.ErrorReply(
                    code="bad-request",
                    message=f"{type(request).__name__} is not a request")
            except ReproError as exc:
                return proto.ErrorReply(code="internal", message=str(exc))

    def _reject(self, code: str, message: str) -> proto.ErrorReply:
        obs.metrics().counter("daemon.rejected", code=code).inc()
        return proto.ErrorReply(code=code, message=message)

    def _handle_run(self, req: proto.RunRequest) -> object:
        if self._shutdown:
            return self._reject("bad-request", "daemon is shutting down")
        if req.job_id in self._meta:
            return self._reject(
                "duplicate-job", f"job {req.job_id!r} was already "
                "submitted to this daemon")
        waiting = len(self._buffer) + len(self.scheduler.queue)
        if waiting >= self.config.queue_capacity:
            return self._reject(
                "queue-full",
                f"{waiting} jobs already waiting "
                f"(capacity {self.config.queue_capacity})")
        try:
            job = self._job_from(req, submit_time=self.scheduler.now)
        except (ConfigurationError, TypeError) as exc:
            return self._reject("bad-request", str(exc))
        try:
            ok, reason = self.scheduler.admissible(job)
        except ReproError as exc:
            return self._reject(
                "unknown-app",
                f"cannot characterize {req.app_name!r}: {exc}")
        if not ok:
            return self._reject("inadmissible", reason)
        entry = _Admitted(self._seq, req.priority, req)
        self._seq += 1
        self._buffer.append(entry)
        self._meta[req.job_id] = entry
        metrics = obs.metrics()
        metrics.counter("daemon.admitted").inc()
        metrics.gauge("daemon.queue_depth").set(len(self._buffer))
        obs.tracer().instant("daemon.admit", job_id=req.job_id,
                             seq=entry.seq, priority=req.priority)
        return proto.RunReply(job_id=req.job_id, seq=entry.seq,
                              state=JobState.PENDING.value)

    def _job_from(self, req: proto.RunRequest,
                  submit_time: float) -> Job:
        return Job(
            job_id=req.job_id,
            app_name=req.app_name,
            n_nodes=req.n_nodes,
            work_units=req.work_units,
            submit_time=submit_time,
            max_slowdown=req.max_slowdown,
            app_kwargs=dict(req.app_kwargs) if req.app_kwargs else None,
        )

    def _handle_status(self, req: proto.StatusRequest) -> object:
        meta = self._meta.get(req.job_id)
        if meta is None:
            return self._reject("unknown-job",
                                f"unknown job {req.job_id!r}")
        r = meta.request
        if meta.buffered or meta.killed:
            state = (JobState.KILLED if meta.killed
                     else JobState.PENDING).value
            return proto.StatusReply(
                job_id=r.job_id, state=state, n_nodes=r.n_nodes,
                work_units=r.work_units, progress=0.0, submit_time=None,
                start_time=None, end_time=None, cap=None,
                measured_slowdown=None)
        record = self.scheduler.records[req.job_id]
        if record.state is JobState.COMPLETED:
            progress = record.job.work_units
        else:
            progress = self._progress.get(req.job_id, 0.0)
        return proto.StatusReply(
            job_id=r.job_id, state=record.state.value,
            n_nodes=r.n_nodes, work_units=record.job.work_units,
            progress=progress, submit_time=record.job.submit_time,
            start_time=_finite(record.start_time),
            end_time=_finite(record.end_time),
            cap=record.cap,
            measured_slowdown=_finite(record.measured_slowdown))

    def _handle_list(self) -> proto.ListReply:
        jobs = []
        for meta in sorted(self._meta.values(), key=lambda m: m.seq):
            if meta.buffered or meta.killed:
                state = (JobState.KILLED if meta.killed
                         else JobState.PENDING).value
            else:
                state = self.scheduler.records[
                    meta.request.job_id].state.value
            jobs.append({
                "job_id": meta.request.job_id,
                "state": state,
                "app_name": meta.request.app_name,
                "n_nodes": meta.request.n_nodes,
                "priority": meta.priority,
                "seq": meta.seq,
            })
        return proto.ListReply(now=self.scheduler.now, jobs=jobs)

    def _handle_kill(self, req: proto.KillRequest) -> object:
        meta = self._meta.get(req.job_id)
        if meta is None:
            return self._reject("unknown-job",
                                f"unknown job {req.job_id!r}")
        if meta.buffered:
            self._buffer.remove(meta)
            meta.buffered = False
            meta.killed = True
            obs.metrics().gauge("daemon.queue_depth").set(
                len(self._buffer))
            return proto.KillReply(job_id=req.job_id, was_running=False)
        if meta.killed:
            return self._reject("not-active",
                                f"job {req.job_id!r} is already killed")
        record = self.scheduler.records[req.job_id]
        if record.state in (JobState.COMPLETED, JobState.KILLED):
            return self._reject(
                "not-active",
                f"job {req.job_id!r} is already {record.state.value}")
        was_running = record.state is JobState.RUNNING
        self.scheduler.cancel(req.job_id)
        return proto.KillReply(job_id=req.job_id, was_running=was_running)

    def _handle_watch(self, req: proto.WatchRequest) -> object:
        watcher = self._watchers.get(req.watch_id)
        if watcher is not None:
            if watcher.attached:
                return self._reject(
                    "bad-request",
                    f"watch id {req.watch_id!r} is already attached")
            # Reconnect: ZeroMQ slow-joiner semantics — the stream
            # restarts fresh, only the reliable event backlog survives.
            watcher.sub.resubscribe()
            watcher.attached = True
            return proto.WatchReply(watch_id=req.watch_id, resumed=True)
        try:
            sub = self.bus.sub_socket(
                req.topic, hwm=req.hwm or self.config.default_hwm)
        except ConfigurationError as exc:
            return self._reject("bad-request", str(exc))
        watcher = _Watcher(req.watch_id, sub, req.events)
        sanitize.guard_attr(sub, "_queue", "SubSocket._queue",
                            self._lock)
        sanitize.guard_attr(watcher, "events", "_Watcher.events",
                            self._lock)
        self._watchers[req.watch_id] = watcher
        return proto.WatchReply(watch_id=req.watch_id, resumed=False)

    def _handle_tick(self, req: proto.TickRequest) -> object:
        if req.epochs < 1:
            return self._reject("bad-request",
                                f"epochs must be >= 1, got {req.epochs}")
        epochs = self.tick(req.epochs)
        return proto.TickReply(
            now=self.scheduler.now, epochs=epochs,
            running=self.scheduler.n_running,
            queued=len(self._buffer) + len(self.scheduler.queue))

    def _handle_info(self) -> proto.InfoReply:
        states = [JobState.COMPLETED, JobState.KILLED]
        counts = {state: 0 for state in states}
        for record in self.scheduler.records.values():
            if record.state in counts:
                counts[record.state] += 1
        killed_buffered = sum(1 for m in self._meta.values() if m.killed)
        return proto.InfoReply(
            protocol=proto.PROTOCOL_VERSION,
            now=self.scheduler.now,
            epochs=self.epochs,
            n_slots=self.config.scheduler.n_slots,
            power_budget=self.config.scheduler.power_budget,
            policy=self.config.scheduler.policy,
            queued=len(self._buffer) + len(self.scheduler.queue),
            running=self.scheduler.n_running,
            completed=counts[JobState.COMPLETED],
            killed=counts[JobState.KILLED] + killed_buffered)

    def _handle_shutdown(self) -> proto.ShutdownReply:
        self._shutdown = True
        checkpointed = False
        if self.config.checkpoint_path:
            self.checkpoint()
            checkpointed = True
        if self._run_store is not None:
            self.store_checkpoint()
            checkpointed = True
        return proto.ShutdownReply(checkpointed=checkpointed)

    # ------------------------------------------------------------------
    # The tick loop
    # ------------------------------------------------------------------

    def tick(self, max_epochs: int = 1) -> int:
        """Admit buffered jobs, then advance up to ``max_epochs``
        scheduler steps. Returns the steps actually taken (0 when the
        cluster is idle — an idle daemon's simulated time stands
        still). This is the only method that moves simulated time."""
        with self._lock:
            with obs.tracer().span("daemon.tick",
                                   buffered=len(self._buffer),
                                   max_epochs=max_epochs):
                self._admit_buffered()
                taken = 0
                while taken < max_epochs:
                    if not self.scheduler.step():
                        if self.scheduler.now > self.clock.now:
                            # idle-hop moved time with no epoch results
                            self.clock.advance_to(self.scheduler.now)
                        break
                    taken += 1
                    self.epochs += 1
                    if self.scheduler.now > self.clock.now:
                        self.clock.advance_to(self.scheduler.now)
                    every = self.config.checkpoint_every
                    if every and self.epochs % every == 0:
                        self.checkpoint()
                    interval = self.config.checkpoint_interval
                    if interval and self.epochs % interval == 0:
                        self.store_checkpoint()
            self.ticks += 1
            dropped = self.bus.dropped + sum(
                w.sub.overflowed for w in self._watchers.values())
            obs.metrics().gauge("daemon.telemetry_dropped").set(dropped)
            return taken

    def _admit_buffered(self) -> None:
        """Move buffered submissions into the scheduler queue, highest
        priority first, FIFO within a priority (seq assigned under the
        admission lock breaks ties deterministically)."""
        if not self._buffer:
            return
        self._buffer.sort(key=lambda m: (-m.priority, m.seq))
        for meta in self._buffer:
            self.scheduler.submit(
                self._job_from(meta.request,
                               submit_time=self.scheduler.now))
            meta.buffered = False
        self._buffer.clear()
        obs.metrics().gauge("daemon.queue_depth").set(0)

    # ------------------------------------------------------------------
    # Scheduler listeners (called inside tick, under the lock)
    # ------------------------------------------------------------------

    def _on_event(self, event: SchedulerEvent) -> None:
        kind = type(event).__name__
        if kind == "JobStarted":
            record = self.scheduler.records[event.job_id]
            obs.metrics().histogram("daemon.admit_wait_s").observe(
                record.wait_time)
        frame = proto.EventTelemetry(
            time=event.time, kind=kind, data=_event_data(event))
        for watcher in self._watchers.values():
            if not watcher.want_events:
                continue
            if len(watcher.events) >= _EVENT_OUTBOX_CAP:
                watcher.events.popleft()
                watcher.events_lost += 1
            watcher.events.append(frame)

    def _on_epoch(self, now: float, results: dict) -> None:
        """Publish one progress frame per (job, node) for the epoch —
        the daemon's equivalent of the paper's per-node progress
        reports — plus the cluster's epoch power draw."""
        self.clock.advance_to(now)
        epoch_energy = 0.0
        for job_id, by_node in results.items():
            floor = math.inf
            for node_id, res in by_node.items():
                self._pub.send(f"progress/{job_id}/{node_id}",
                               res.cumulative)
                floor = min(floor, res.cumulative)
                epoch_energy += res.energy
            self._progress[job_id] = floor
        self._pub.send("cluster/power",
                       epoch_energy / self.config.scheduler.epoch)

    # ------------------------------------------------------------------
    # Watch plumbing (server-facing)
    # ------------------------------------------------------------------

    def drain_watch(self, watch_id: str) -> list:
        """Frames owed to one subscription: the reliable event backlog
        first, then every bus message whose modelled delivery time has
        arrived. Called by the server after each tick."""
        with self._lock:
            watcher = self._watchers.get(watch_id)
            if watcher is None:
                return []
            frames: list = []
            while watcher.events:
                frames.append(watcher.events.popleft())
            if not watcher.sub.closed:
                frames.extend(
                    proto.StreamTelemetry(time=m.time, topic=m.topic,
                                          value=m.value)
                    for m in watcher.sub.recv_all())
            return frames

    def detach_watch(self, watch_id: str) -> None:
        """The connection owning ``watch_id`` went away: disconnect its
        subscriber (messages published while detached are lost — slow
        joiner on reconnect) but keep the watcher resumable."""
        with self._lock:
            watcher = self._watchers.get(watch_id)
            if watcher is None or not watcher.attached:
                return
            watcher.attached = False
            if not watcher.sub.closed:
                watcher.sub.close()

    def watch_ids(self) -> list[str]:
        """Attached subscription ids (server flush loop)."""
        with self._lock:
            return [w.watch_id for w in self._watchers.values()
                    if w.attached]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> str:
        """Write a resumable checkpoint to the configured path."""
        from repro.daemon.checkpointing import save_checkpoint

        if not self.config.checkpoint_path:
            raise ConfigurationError(
                "daemon has no checkpoint_path configured")
        with self._lock:
            path = save_checkpoint(self, self.config.checkpoint_path)
        obs.tracer().instant("daemon.checkpoint", path=path,
                             epochs=self.epochs)
        return path

    def store_checkpoint(self) -> str:
        """Write an epoch-stamped checkpoint into the configured store
        (``checkpoint_dir``); returns the file path. Unlike
        :meth:`checkpoint`, earlier epochs stay on disk, so the run can
        later be rewound (time travel)."""
        from repro.daemon.checkpointing import build_run_checkpoint

        if self._run_store is None:
            raise ConfigurationError(
                "daemon has no checkpoint_dir configured")
        with self._lock:
            path = self._run_store.save(build_run_checkpoint(self))
        obs.tracer().instant("daemon.checkpoint", path=path,
                             epochs=self.epochs)
        return path

    def close(self) -> None:
        """Tear down the scheduler's shard workers."""
        with self._lock:
            self.scheduler.close()


def _finite(value: float | None) -> float | None:
    """NaN-free wire value (JSON has no NaN; absent means absent)."""
    if value is None or math.isnan(value):
        return None
    return float(value)


def _event_data(event: SchedulerEvent) -> dict:
    """A scheduler event's payload as JSON-safe primitives."""
    data = dataclasses.asdict(event)
    data.pop("time", None)
    for key, value in data.items():
        if isinstance(value, float) and math.isnan(value):
            data[key] = None
        elif isinstance(value, tuple):
            data[key] = list(value)
    return data
