"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing hardware-emulation faults (bad MSR access, privilege
violations) from simulation misuse (scheduling in the past, double-starting
an application) and from modelling problems (unfittable data).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "ShardWorkerError",
    "MSRError",
    "MSRAccessError",
    "MSRPermissionError",
    "PowercapError",
    "ModelError",
    "FittingError",
    "TelemetryError",
    "CheckpointError",
    "DaemonError",
    "ProtocolError",
    "check_snapshot_version",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied (bad core count, empty
    frequency ladder, non-positive bandwidth, ...)."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine was driven into an invalid state."""


class SchedulingError(SimulationError):
    """A timer or event was scheduled at a time in the simulated past."""


class ShardWorkerError(SimulationError):
    """A shard worker process died or its pipe broke mid-command.

    Raised instead of hanging on a dead pipe; carries the shard index
    and, when known, the worker's exit code. After this error the
    lockstep's distributed state is unrecoverable — callers should
    ``close()`` it and resume from the last :class:`RunCheckpoint`.
    """

    def __init__(self, shard: int, cmd: str,
                 exitcode: int | None = None) -> None:
        self.shard = shard
        self.cmd = cmd
        self.exitcode = exitcode
        detail = (f"exit code {exitcode}" if exitcode is not None
                  else "pipe closed")
        super().__init__(
            f"shard {shard} worker died during {cmd!r} ({detail}); "
            "lockstep state is unrecoverable — close() and resume from "
            "the last checkpoint")


class MSRError(ReproError):
    """Base class for model-specific-register emulation faults."""


class MSRAccessError(MSRError, KeyError):
    """An MSR address that does not exist on the emulated CPU was accessed."""


class MSRPermissionError(MSRError, PermissionError):
    """msr-safe denied the access: the register (or write mask) is not
    whitelisted for unprivileged access."""


class PowercapError(ReproError):
    """The powercap sysfs emulation rejected an operation (unknown zone,
    constraint out of range, malformed value)."""


class ModelError(ReproError, ValueError):
    """The analytic progress model was evaluated outside its domain
    (non-positive power cap, beta outside [0, 1], ...)."""


class FittingError(ModelError):
    """Model fitting failed: insufficient or degenerate observations."""


class TelemetryError(ReproError):
    """Progress-reporting infrastructure misuse (publishing on a closed
    socket, subscribing after close, ...)."""


class CheckpointError(ReproError, RuntimeError):
    """A node checkpoint could not be taken or reinstalled (unpicklable
    task body, schema mismatch, rebuilt stack diverging from the
    checkpointed one)."""


class DaemonError(ReproError, RuntimeError):
    """The simulation service was driven into an invalid state (request
    against a stopped daemon, resume from a foreign checkpoint, ...)."""


class ProtocolError(DaemonError):
    """A daemon wire message could not be encoded or decoded (unknown
    type, protocol version mismatch, malformed body)."""


def check_snapshot_version(state: dict, expected: int, owner: str) -> None:
    """Reject a component snapshot written under a different schema.

    Every ``snapshot()`` dict carries a ``version`` key (enforced by
    ``repro.lint``'s ``ckpt-missing-version`` rule); every ``restore()``
    calls this first so a schema change fails loudly instead of
    mis-restoring old state. Snapshots predating the version field are
    treated as version 1 — the schemas are otherwise identical.
    """
    found = state.get("version", 1)
    if found != expected:
        raise CheckpointError(
            f"{owner} snapshot has schema version {found}; this build "
            f"reads version {expected}")
