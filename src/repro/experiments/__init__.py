"""Experiment harnesses regenerating every table and figure of the paper.

:mod:`repro.experiments.harness` provides the reusable measurement
machinery (:class:`~repro.experiments.harness.Testbed`); ``table1`` ...
``table6`` and ``figure1`` ... ``figure5`` each expose a ``run()``
returning a structured result and a ``render()`` producing the ASCII
table/series the paper reports. The benchmark suite under
``benchmarks/`` executes one module per table/figure.
"""

from repro.experiments.harness import (
    CharacterizationResult,
    DeltaMeasurement,
    RunResult,
    Testbed,
)

__all__ = [
    "Testbed",
    "RunResult",
    "DeltaMeasurement",
    "CharacterizationResult",
]
