"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments table6
    python -m repro.experiments figure4 --quick --seed 3
    python -m repro.experiments all --quick

``--quick`` shrinks repeat counts and durations for a fast smoke pass;
the defaults match the benchmark suite.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.runtime.executor import CACHE_ENV

from repro.experiments import (
    extension_energy,
    extension_intrusiveness,
    extension_scheduler,
    extension_techniques,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

#: name -> (run(seed, quick, workers, shards) -> result, render).
#: ``workers`` parallelizes experiments built from independent runs;
#: ``shards`` parallelizes *within* a lockstep run by sharding its nodes
#: over worker processes. Experiments that support neither ignore them.
_EXPERIMENTS = {
    "table1": (lambda seed, quick, workers, shards: table1.run(seed=seed),
               table1.render),
    "table2": (lambda seed, quick, workers, shards: table2.run(), table2.render),
    "table3": (lambda seed, quick, workers, shards: table3.run(), table3.render),
    "table4": (lambda seed, quick, workers, shards: table4.run(), table4.render),
    "table5": (lambda seed, quick, workers, shards: table5.run(), table5.render),
    "table6": (lambda seed, quick, workers, shards: table6.run(
        seed=seed, scale=0.5 if quick else 1.0), table6.render),
    "figure1": (lambda seed, quick, workers, shards: figure1.run(
        duration=25.0 if quick else 40.0, seed=seed, workers=workers),
        figure1.render),
    "figure2": (lambda seed, quick, workers, shards: figure2.run(
        duration=6.0 if quick else 10.0, seed=seed), figure2.render),
    "figure3": (lambda seed, quick, workers, shards: figure3.run(
        duration=40.0 if quick else 60.0, seed=seed), figure3.render),
    "figure4": (lambda seed, quick, workers, shards: figure4.run(
        repeats=1 if quick else 5, seed=seed, workers=workers),
        figure4.render),
    "figure5": (lambda seed, quick, workers, shards: figure5.run(
        duration=6.0 if quick else 10.0,
        warmup=2.5 if quick else 4.0, seed=seed), figure5.render),
    "ext-energy": (lambda seed, quick, workers, shards: extension_energy.run(
        seed=seed), extension_energy.render),
    "ext-intrusiveness": (
        lambda seed, quick, workers, shards: extension_intrusiveness.run(
            duration=18.0 if quick else 30.0, seed=seed),
        extension_intrusiveness.render),
    "ext-techniques": (lambda seed, quick, workers, shards: extension_techniques.run(
        duration=6.0 if quick else 10.0,
        warmup=2.5 if quick else 4.0, seed=seed),
        extension_techniques.render),
    "extension_scheduler": (
        lambda seed, quick, workers, shards: extension_scheduler.run(
            seed=seed, quick=quick, shards=shards),
        extension_scheduler.render),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the paper.",
    )
    parser.add_argument("name", nargs="?",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="experiment to run (or 'all')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="reduced repeats/durations")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for experiments made of "
                             "independent runs (default: serial)")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard lockstep nodes over this many worker "
                             "processes (extension_scheduler; results are "
                             "identical to serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="serve identical re-runs from a content-keyed "
                             "on-disk result cache in this directory "
                             f"(default: ${CACHE_ENV} if set)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even if "
                             f"${CACHE_ENV} is set")
    parser.add_argument("--list", action="store_true",
                        help="print the registered experiment names and exit")
    args = parser.parse_args(argv)

    # Experiments build their own RunExecutors, so the cache choice is
    # routed through the environment variable the executor consults.
    if args.no_cache:
        # CLI plumbing, not simulation state: the variable only routes
        # the cache directory to executors built deeper in the run.
        os.environ.pop(CACHE_ENV, None)  # repro-lint: disable=det-environ
    elif args.cache_dir is not None:
        os.environ[CACHE_ENV] = args.cache_dir

    if args.list:
        print("\n".join(sorted(_EXPERIMENTS)))
        return 0
    if args.name is None:
        parser.error("an experiment name is required (or use --list)")

    names = sorted(_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        run, render = _EXPERIMENTS[name]
        # Host wall time for the operator's progress line only; no
        # simulated quantity derives from it.
        start = time.perf_counter()  # repro-lint: disable=det-wallclock
        result = run(args.seed, args.quick, args.workers, args.shards)
        elapsed = time.perf_counter() - start  # repro-lint: disable=det-wallclock
        print(render(result))
        print(f"\n[{name} regenerated in {elapsed:.1f} s wall time]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
