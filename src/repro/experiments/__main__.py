"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments table6
    python -m repro.experiments figure4 --quick --seed 3
    python -m repro.experiments all --quick

``--quick`` shrinks repeat counts and durations for a fast smoke pass;
the defaults match the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    extension_energy,
    extension_intrusiveness,
    extension_scheduler,
    extension_techniques,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

#: name -> (run(seed, quick, workers) -> result, render).  ``workers``
#: parallelizes experiments built from independent runs; the others
#: ignore it (their runs share live state and stay serial).
_EXPERIMENTS = {
    "table1": (lambda seed, quick, workers: table1.run(seed=seed),
               table1.render),
    "table2": (lambda seed, quick, workers: table2.run(), table2.render),
    "table3": (lambda seed, quick, workers: table3.run(), table3.render),
    "table4": (lambda seed, quick, workers: table4.run(), table4.render),
    "table5": (lambda seed, quick, workers: table5.run(), table5.render),
    "table6": (lambda seed, quick, workers: table6.run(
        seed=seed, scale=0.5 if quick else 1.0), table6.render),
    "figure1": (lambda seed, quick, workers: figure1.run(
        duration=25.0 if quick else 40.0, seed=seed, workers=workers),
        figure1.render),
    "figure2": (lambda seed, quick, workers: figure2.run(
        duration=6.0 if quick else 10.0, seed=seed), figure2.render),
    "figure3": (lambda seed, quick, workers: figure3.run(
        duration=40.0 if quick else 60.0, seed=seed), figure3.render),
    "figure4": (lambda seed, quick, workers: figure4.run(
        repeats=1 if quick else 5, seed=seed, workers=workers),
        figure4.render),
    "figure5": (lambda seed, quick, workers: figure5.run(
        duration=6.0 if quick else 10.0,
        warmup=2.5 if quick else 4.0, seed=seed), figure5.render),
    "ext-energy": (lambda seed, quick, workers: extension_energy.run(
        seed=seed), extension_energy.render),
    "ext-intrusiveness": (
        lambda seed, quick, workers: extension_intrusiveness.run(
            duration=18.0 if quick else 30.0, seed=seed),
        extension_intrusiveness.render),
    "ext-techniques": (lambda seed, quick, workers: extension_techniques.run(
        duration=6.0 if quick else 10.0,
        warmup=2.5 if quick else 4.0, seed=seed),
        extension_techniques.render),
    "extension_scheduler": (
        lambda seed, quick, workers: extension_scheduler.run(
            seed=seed, quick=quick), extension_scheduler.render),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the paper.",
    )
    parser.add_argument("name", nargs="?",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="experiment to run (or 'all')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="reduced repeats/durations")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for experiments made of "
                             "independent runs (default: serial)")
    parser.add_argument("--list", action="store_true",
                        help="print the registered experiment names and exit")
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(sorted(_EXPERIMENTS)))
        return 0
    if args.name is None:
        parser.error("an experiment name is required (or use --list)")

    names = sorted(_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        run, render = _EXPERIMENTS[name]
        start = time.perf_counter()
        result = run(args.seed, args.quick, args.workers)
        elapsed = time.perf_counter() - start
        print(render(result))
        print(f"\n[{name} regenerated in {elapsed:.1f} s wall time]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
