"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments table6
    python -m repro.experiments figure4 --quick --seed 3
    python -m repro.experiments all --quick

``--quick`` shrinks repeat counts and durations for a fast smoke pass;
the defaults match the benchmark suite.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.obs import hostclock
from repro.runtime.executor import CACHE_ENV, cache_stats, reset_cache_stats

from repro.experiments import (
    extension_energy,
    extension_intrusiveness,
    extension_scheduler,
    extension_techniques,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

#: name -> (run(seed, quick, workers, shards) -> result, render).
#: ``workers`` parallelizes experiments built from independent runs;
#: ``shards`` parallelizes *within* a lockstep run by sharding its nodes
#: over worker processes. Experiments that support neither ignore them.
_EXPERIMENTS = {
    "table1": (lambda seed, quick, workers, shards: table1.run(seed=seed),
               table1.render),
    "table2": (lambda seed, quick, workers, shards: table2.run(), table2.render),
    "table3": (lambda seed, quick, workers, shards: table3.run(), table3.render),
    "table4": (lambda seed, quick, workers, shards: table4.run(), table4.render),
    "table5": (lambda seed, quick, workers, shards: table5.run(), table5.render),
    "table6": (lambda seed, quick, workers, shards: table6.run(
        seed=seed, scale=0.5 if quick else 1.0), table6.render),
    "figure1": (lambda seed, quick, workers, shards: figure1.run(
        duration=25.0 if quick else 40.0, seed=seed, workers=workers),
        figure1.render),
    "figure2": (lambda seed, quick, workers, shards: figure2.run(
        duration=6.0 if quick else 10.0, seed=seed), figure2.render),
    "figure3": (lambda seed, quick, workers, shards: figure3.run(
        duration=40.0 if quick else 60.0, seed=seed), figure3.render),
    "figure4": (lambda seed, quick, workers, shards: figure4.run(
        repeats=1 if quick else 5, seed=seed, workers=workers),
        figure4.render),
    "figure5": (lambda seed, quick, workers, shards: figure5.run(
        duration=6.0 if quick else 10.0,
        warmup=2.5 if quick else 4.0, seed=seed), figure5.render),
    "ext-energy": (lambda seed, quick, workers, shards: extension_energy.run(
        seed=seed), extension_energy.render),
    "ext-intrusiveness": (
        lambda seed, quick, workers, shards: extension_intrusiveness.run(
            duration=18.0 if quick else 30.0, seed=seed),
        extension_intrusiveness.render),
    "ext-techniques": (lambda seed, quick, workers, shards: extension_techniques.run(
        duration=6.0 if quick else 10.0,
        warmup=2.5 if quick else 4.0, seed=seed),
        extension_techniques.render),
    "extension_scheduler": (
        lambda seed, quick, workers, shards: extension_scheduler.run(
            seed=seed, quick=quick, shards=shards),
        extension_scheduler.render),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure from the paper.",
    )
    parser.add_argument("name", nargs="?",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="experiment to run (or 'all')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="reduced repeats/durations")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for experiments made of "
                             "independent runs (default: serial)")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard lockstep nodes over this many worker "
                             "processes (extension_scheduler; results are "
                             "identical to serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="serve identical re-runs from a content-keyed "
                             "on-disk result cache in this directory "
                             f"(default: ${CACHE_ENV} if set)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even if "
                             f"${CACHE_ENV} is set")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable tracing and write the trace here on "
                             "exit: Chrome trace-event JSON (open in "
                             "Perfetto), or JSONL if PATH ends in .jsonl")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="enable metrics and write the registry here "
                             "on exit (JSON if PATH ends in .json, else "
                             "prometheus-style text)")
    parser.add_argument("--manifest-out", default=None, metavar="PATH",
                        help="write a run-provenance manifest (config, "
                             "seeds, package versions, timings, cache "
                             "stats) here on exit")
    parser.add_argument("--list", action="store_true",
                        help="print the registered experiment names and exit")
    args = parser.parse_args(argv)

    # Experiments build their own RunExecutors, so the cache choice is
    # routed through the environment variable the executor consults.
    if args.no_cache:
        # CLI plumbing, not simulation state: the variable only routes
        # the cache directory to executors built deeper in the run.
        os.environ.pop(CACHE_ENV, None)  # repro-lint: disable=det-environ
    elif args.cache_dir is not None:
        os.environ[CACHE_ENV] = args.cache_dir
    # Resolved once here for the provenance manifest; same plumbing.
    cache_dir = os.environ.get(CACHE_ENV)  # repro-lint: disable=det-environ

    if args.list:
        print("\n".join(sorted(_EXPERIMENTS)))
        return 0
    if args.name is None:
        parser.error("an experiment name is required (or use --list)")

    names = sorted(_EXPERIMENTS) if args.name == "all" else [args.name]
    if args.trace or args.metrics_out:
        obs.enable()
    total_wall = 0.0
    totals = {"hits": 0, "misses": 0}
    try:
        for name in names:
            run, render = _EXPERIMENTS[name]
            reset_cache_stats()
            # Host wall time for the operator's progress line only; no
            # simulated quantity derives from it.
            start = hostclock.perf_ns()
            with obs.tracer().span(f"experiment.{name}", seed=args.seed,
                                   quick=args.quick):
                result = run(args.seed, args.quick, args.workers,
                             args.shards)
            elapsed = (hostclock.perf_ns() - start) / 1e9
            total_wall += elapsed
            print(render(result))
            stats = cache_stats()
            totals["hits"] += stats["hits"]
            totals["misses"] += stats["misses"]
            if stats["hits"] or stats["misses"]:
                print(f"\n[executor cache: {stats['hits']} hits / "
                      f"{stats['misses']} misses "
                      f"({stats['hit_rate'] * 100.0:.0f}% hit rate)]")
            print(f"\n[{name} regenerated in {elapsed:.1f} s wall time]\n")
        _write_outputs(args, names, total_wall, totals, cache_dir)
    finally:
        obs.disable()
    return 0


def _write_outputs(args: argparse.Namespace, names: list[str],
                   total_wall: float, cache: dict,
                   cache_dir: str | None) -> None:
    """Persist the trace / metrics / manifest the flags asked for."""
    session = obs.session()
    trace_info = None
    if session is not None and args.trace:
        trace_info = session.write_trace(args.trace)
        print(f"[trace: {trace_info['events']} events -> "
              f"{trace_info['path']} ({trace_info['format']})]")
    if session is not None and args.metrics_out:
        session.write_metrics(args.metrics_out)
        print(f"[metrics -> {args.metrics_out}]")
    if args.manifest_out:
        manifest = obs.build_manifest(
            experiment=",".join(names),
            config={
                "seed": args.seed,
                "quick": args.quick,
                "workers": args.workers,
                "shards": args.shards,
                "cache_dir": cache_dir,
            },
            wall_time_s=round(total_wall, 3),
            cache=cache,
            trace=trace_info,
            metrics=args.metrics_out,
        )
        obs.write_manifest(args.manifest_out, manifest)
        print(f"[manifest -> {args.manifest_out}]")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
