"""Machine-readable export of experiment results.

The ``render()`` functions produce human-readable tables; downstream
plotting wants data. This module flattens the figure results into
column-oriented rows and writes CSV (stdlib ``csv``, no extra deps).
"""

from __future__ import annotations

import csv
import os
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.figure4 import Figure4Result
    from repro.experiments.figure5 import Figure5Result

__all__ = ["series_to_csv", "figure4_to_csv", "figure5_to_csv"]


def _write(path: str | os.PathLike, header: list[str],
           rows: list[list]) -> str:
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def series_to_csv(series: TimeSeries, path: str | os.PathLike,
                  value_name: str = "value") -> str:
    """One time series as ``time,<value_name>`` rows."""
    if series.is_empty():
        raise ConfigurationError("cannot export an empty series")
    return _write(path, ["time_s", value_name],
                  [[t, v] for t, v in series])


def figure4_to_csv(result: "Figure4Result", path: str | os.PathLike) -> str:
    """All Fig.-4 panels as long-format rows."""
    rows = []
    for panel in result.panels:
        for m, pred in zip(panel.measurements, panel.predictions):
            rows.append([
                panel.app, panel.beta, panel.alpha, panel.r_max,
                panel.p_coremax, m.p_cap, m.p_corecap, m.delta_mean,
                m.delta_std, m.repeats, pred,
            ])
    return _write(path, [
        "app", "beta", "alpha", "r_max", "p_coremax_w", "p_cap_w",
        "p_corecap_w", "delta_measured", "delta_std", "repeats",
        "delta_predicted",
    ], rows)


def figure5_to_csv(result: "Figure5Result", path: str | os.PathLike) -> str:
    """Both Fig.-5 technique curves as long-format rows."""
    rows = [
        [p.technique, p.setting, p.power, p.progress]
        for p in (*result.dvfs, *result.rapl)
    ]
    return _write(path, ["technique", "setting", "power_w", "progress"],
                  rows)
