"""Extension: energy-to-solution under power caps.

Not a paper figure — the paper studies the *rate* side of capping; its
cited related work (Etinski, Freeh, Haidar) studies the energy side.
This experiment closes the loop with the machinery already built: run a
fixed amount of work to completion under each cap and record execution
time, energy-to-solution, and energy-delay product.

Expected shape: for a compute-bound code (LAMMPS) capping stretches
execution roughly inversely with frequency, so energy falls slowly (or
rises once static energy dominates); for a memory-bound code (STREAM)
mild caps barely slow the run while cutting power, so energy-to-solution
drops markedly before DDCM-territory caps blow the time up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import Testbed
from repro.experiments.report import ascii_table
from repro.nrm.schemes import FixedCapSchedule

__all__ = ["EnergyPoint", "EnergyResult", "run", "render"]

#: Fixed-work sizings (run to completion).
APP_SIZING = {
    "lammps": {"n_steps": 300},
    "stream": {"n_iterations": 240},
}

DEFAULT_CAPS: dict[str, tuple[float | None, ...]] = {
    "lammps": (None, 140.0, 120.0, 100.0, 80.0, 65.0),
    "stream": (None, 140.0, 120.0, 100.0, 80.0, 60.0),
}


@dataclass(frozen=True)
class EnergyPoint:
    cap: float | None          #: package cap (None = uncapped)
    seconds: float             #: time to solution
    joules: float              #: package energy to solution
    edp: float                 #: energy-delay product (J*s)


@dataclass(frozen=True)
class EnergyResult:
    points: dict[str, tuple[EnergyPoint, ...]]

    def min_energy_cap(self, app: str) -> float | None:
        """The cap minimizing energy-to-solution."""
        return min(self.points[app], key=lambda p: p.joules).cap

    def energy_saving_at_min(self, app: str) -> float:
        """Fractional energy saving of the best cap vs uncapped."""
        pts = self.points[app]
        uncapped = next(p for p in pts if p.cap is None)
        best = min(p.joules for p in pts)
        return 1.0 - best / uncapped.joules

    def slowdown_at_min_energy(self, app: str) -> float:
        """Time penalty at the min-energy cap vs uncapped."""
        pts = self.points[app]
        uncapped = next(p for p in pts if p.cap is None)
        best = min(pts, key=lambda p: p.joules)
        return best.seconds / uncapped.seconds - 1.0


def run(apps: tuple[str, ...] = ("lammps", "stream"), seed: int = 0,
        testbed: Testbed | None = None) -> EnergyResult:
    """Measure the (time, energy) frontier per app and cap."""
    tb = testbed or Testbed(seed=seed)
    out: dict[str, tuple[EnergyPoint, ...]] = {}
    for app in apps:
        points = []
        for cap in DEFAULT_CAPS[app]:
            schedule = FixedCapSchedule(cap) if cap is not None else None
            result = tb.run(app, schedule=schedule,
                            app_kwargs=APP_SIZING[app])
            points.append(EnergyPoint(
                cap=cap,
                seconds=result.duration,
                joules=result.pkg_energy,
                edp=result.pkg_energy * result.duration,
            ))
        out[app] = tuple(points)
    return EnergyResult(points=out)


def render(result: EnergyResult) -> str:
    parts = ["Extension: energy-to-solution under power caps\n"]
    for app, points in result.points.items():
        rows = [
            ["uncapped" if p.cap is None else f"{p.cap:.0f}",
             round(p.seconds, 2), round(p.joules, 0), round(p.edp, 0)]
            for p in points
        ]
        parts.append(ascii_table(
            ["Cap (W)", "Time (s)", "Energy (J)", "EDP (J*s)"], rows,
            title=f"[{app}]",
        ))
        best = result.min_energy_cap(app)
        parts.append(
            f"  min-energy cap: "
            f"{'uncapped' if best is None else f'{best:.0f} W'}; saves "
            f"{result.energy_saving_at_min(app) * 100:.1f}% energy for "
            f"{result.slowdown_at_min_energy(app) * 100:.1f}% more time\n"
        )
    return "\n".join(parts)
