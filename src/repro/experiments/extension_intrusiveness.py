"""Extension: instrumentation intrusiveness vs monitoring resolution.

The paper's conclusion flags the open tension: "the resolution of these
progress reports or the intrusiveness of the instrumentation might need
to be changed". This experiment quantifies both sides on the simulated
testbed:

* **intrusiveness** — each report costs the publishing rank compute time
  (serialization + socket I/O); frequent, expensive reports slow the
  application itself;
* **resolution** — batching reports amortizes the overhead but degrades
  the 1 Hz monitor's view: once the report interval crosses the
  collection interval, buckets go empty and the rate series quantizes.

Sweeps report cost x batching on LAMMPS and reports, per cell, the
achieved progress rate (application truth) and the monitor-series
quality (fraction of empty buckets, coefficient of variation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import build
from repro.experiments.harness import Testbed
from repro.experiments.report import ascii_table

__all__ = ["IntrusivenessCell", "IntrusivenessResult", "run", "render"]

DEFAULT_OVERHEADS = (0.0, 3.3e7)          #: cycles per report (0, 10 ms)
DEFAULT_BATCHING = (1, 20, 60)            #: iterations per report


@dataclass(frozen=True)
class IntrusivenessCell:
    overhead_cycles: float
    report_every: int
    true_rate: float          #: iterations completed / elapsed (app truth)
    monitor_mean: float       #: monitor's mean rate (zeros included)
    empty_fraction: float     #: fraction of empty 1 Hz buckets
    cv: float                 #: CV of the monitor series (zeros included)


@dataclass(frozen=True)
class IntrusivenessResult:
    cells: tuple[IntrusivenessCell, ...]

    def cell(self, overhead: float, every: int) -> IntrusivenessCell:
        for c in self.cells:
            if c.overhead_cycles == overhead and c.report_every == every:
                return c
        raise KeyError((overhead, every))

    def slowdown(self, overhead: float, every: int) -> float:
        """Fractional rate loss vs the free-instrumentation baseline."""
        base = self.cell(0.0, 1).true_rate
        return 1.0 - self.cell(overhead, every).true_rate / base


def run(overheads: tuple[float, ...] = DEFAULT_OVERHEADS,
        batching: tuple[int, ...] = DEFAULT_BATCHING,
        duration: float = 30.0, warmup: float = 3.0,
        seed: int = 0, testbed: Testbed | None = None
        ) -> IntrusivenessResult:
    """Sweep the (overhead, batching) grid on LAMMPS."""
    tb = testbed or Testbed(seed=seed)
    cells = []
    for overhead in overheads:
        for every in batching:
            app = build("lammps", n_steps=1_000_000, seed=seed, cfg=tb.cfg)
            app.publish_overhead_cycles = overhead
            app.report_every = every
            result = tb.run(app, duration=duration)
            window = result.progress.window(warmup, duration + 1e-9)
            values = window.values
            total_units = float(values.sum())  # units/s summed over 1s bins
            elapsed = duration - warmup
            cells.append(IntrusivenessCell(
                overhead_cycles=overhead,
                report_every=every,
                true_rate=total_units / elapsed,
                monitor_mean=float(values.mean()),
                empty_fraction=float((values == 0.0).mean()),
                cv=float(values.std() / max(values.mean(), 1e-12)),
            ))
    return IntrusivenessResult(cells=tuple(cells))


def render(result: IntrusivenessResult) -> str:
    rows = []
    for c in result.cells:
        rows.append([
            f"{c.overhead_cycles / 3.3e6:.1f} ms" if c.overhead_cycles
            else "free",
            c.report_every,
            f"{c.true_rate:,.0f}",
            f"{c.empty_fraction * 100:.0f}%",
            f"{c.cv:.2f}",
        ])
    table = ascii_table(
        ["report cost", "iters/report", "true rate (atom-steps/s)",
         "empty 1 Hz buckets", "series CV"],
        rows,
        title="Extension: instrumentation intrusiveness vs resolution "
              "(LAMMPS)",
    )
    worst = result.slowdown(max(c.overhead_cycles for c in result.cells), 1)
    return table + (
        f"\n\nWorst-case intrusiveness (costly reports every iteration): "
        f"{worst * 100:.1f}% progress loss; batching recovers it at the "
        f"price of empty buckets and a quantized series."
    )
