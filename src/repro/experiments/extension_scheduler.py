"""Extension: power-aware multi-job scheduling with model-driven caps.

Not a paper figure — the paper stops at predicting one job's slowdown
under a cap (Section VI); this experiment exercises that prediction in
the allocation decision it was built for, the way Eco-Mode (Angelelli
et al., 2024) and WattsApp (Mehta et al., 2020) do at the cluster
level. The same workload is pushed through the same power-budgeted
cluster twice:

* **fcfs-uncapped** — the conventional baseline: strict queue order,
  every job charged its full uncapped draw, so the power budget
  serializes the queue;
* **eco-backfill** — each job declares a slowdown tolerance; the
  scheduler picks the cheapest RAPL cap whose *model-predicted*
  slowdown stays inside the tolerance (fitted alpha, Eqs. 1-7) and
  backfills with the watts the caps free.

Expected shape: eco-backfill trades a bounded, *predicted* per-job
slowdown for concurrency — lower makespan and lower energy at zero
budget-violation epochs, with every job's measured slowdown inside its
declared tolerance and the per-job model error reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.scheduler.job import Job
from repro.scheduler.powerbook import PowerBook, steady_sizing
from repro.scheduler.report import SchedulerReport
from repro.scheduler.scheduler import PowerAwareScheduler, SchedulerConfig

__all__ = ["SchedulerComparison", "WORKLOADS", "run", "render"]

#: (app, n_nodes, tolerance, uncapped-seconds of work) per job, in
#: submission order; all jobs arrive at t=0 so queueing is visible.
WORKLOADS: dict[str, tuple[tuple[str, int, float, float], ...]] = {
    "quick": (
        ("lammps", 2, 0.20, 18.0),
        ("stream", 2, 0.15, 18.0),
        ("lammps", 1, 0.25, 14.0),
        ("stream", 1, 0.20, 14.0),
        ("lammps", 2, 0.20, 18.0),
        ("stream", 2, 0.15, 18.0),
    ),
    "full": (
        ("lammps", 2, 0.20, 24.0),
        ("stream", 2, 0.15, 24.0),
        ("amg", 2, 0.30, 20.0),
        ("lammps", 1, 0.25, 16.0),
        ("stream", 1, 0.20, 16.0),
        ("amg", 1, 0.30, 16.0),
        ("lammps", 2, 0.20, 24.0),
        ("stream", 2, 0.15, 24.0),
        ("lammps", 1, 0.25, 16.0),
        ("stream", 1, 0.20, 16.0),
    ),
}


@dataclass(frozen=True)
class SchedulerComparison:
    """Outcome of the two scheduler runs over the same workload."""

    baseline: SchedulerReport    #: fcfs, all jobs uncapped
    eco: SchedulerReport         #: backfill, eco-mode caps

    def makespan_speedup(self) -> float:
        """How much sooner the eco run finishes the whole queue."""
        return self.baseline.makespan / self.eco.makespan

    def energy_saving(self) -> float:
        """Fractional package-energy saving of the eco run."""
        return 1.0 - self.eco.total_energy / self.baseline.total_energy

    def wait_reduction(self) -> float:
        """Fractional mean-queue-wait reduction of the eco run."""
        return 1.0 - self.eco.mean_wait() / self.baseline.mean_wait()


def _build_jobs(book: PowerBook, workload, *, eco: bool) -> list[Job]:
    """Size each job's work target in its app's own progress units from
    the book's measured uncapped rate (so 'seconds of work' is
    app-independent), optionally stripping the eco tolerances."""
    jobs = []
    for i, (app, n_nodes, tolerance, seconds) in enumerate(workload):
        profile = book.profile(app)
        jobs.append(Job(
            job_id=f"j{i}",
            app_name=app,
            n_nodes=n_nodes,
            work_units=seconds * profile.r_max,
            max_slowdown=tolerance if eco else None,
            app_kwargs=steady_sizing(app),
        ))
    return jobs


def run(seed: int = 0, quick: bool = False,
        book: PowerBook | None = None,
        shards: int = 1) -> SchedulerComparison:
    """Characterize the apps, then run fcfs-uncapped vs eco-backfill
    over the same workload, cluster, and power budget.

    ``shards`` spreads each scheduler's node execution over that many
    worker processes (see :mod:`repro.cluster.sharding`); reports are
    bit-for-bit identical to the serial default."""
    if book is None:
        book = PowerBook(n_workers=8, seed=seed,
                         duration=10.0 if quick else 14.0,
                         warmup=3.0 if quick else 4.0,
                         probe_caps=(90.0, 75.0, 60.0))
    workload = WORKLOADS["quick" if quick else "full"]
    n_slots = 6 if quick else 8
    budget = 300.0 if quick else 400.0

    reports = {}
    for policy, eco in (("fcfs", False), ("backfill", True)):
        with obs.tracer().span("extension.policy", policy=policy, eco=eco):
            config = SchedulerConfig(
                n_slots=n_slots,
                power_budget=budget,
                policy=policy,
                min_cap=55.0,
                cap_step=5.0,
                eco_margin=0.8,
                n_workers=book.n_workers,
                seed=seed,
                shards=shards,
            )
            scheduler = PowerAwareScheduler(config, book)
            for job in _build_jobs(book, workload, eco=eco):
                scheduler.submit(job)
            try:
                reports[policy] = scheduler.run()
            finally:
                scheduler.close()
    return SchedulerComparison(baseline=reports["fcfs"],
                               eco=reports["backfill"])


def render(result: SchedulerComparison) -> str:
    parts = [
        "Extension: power-aware scheduling with model-driven cap "
        "selection\n",
        result.baseline.render(),
        "",
        result.eco.render(),
        "",
        f"eco-backfill vs fcfs-uncapped: makespan "
        f"{result.makespan_speedup():.2f}x faster, energy "
        f"{result.energy_saving() * 100:.1f}% lower, mean wait "
        f"{result.wait_reduction() * 100:.1f}% lower; "
        f"eco budget violations: {result.eco.violations}; "
        f"worst model error "
        f"{result.eco.max_prediction_error() * 100:.1f}pp; all jobs "
        f"within tolerance: "
        f"{'yes' if result.eco.all_within_tolerance() else 'NO'}",
    ]
    return "\n".join(parts)
