"""Extension: DVFS vs DDCM vs RAPL as power-limiting techniques.

Figure 5 compares DVFS and RAPL on STREAM; the paper also discusses DDCM
(its §VII cites Bhalachandra's DDCM work, and §VI-B3 lists DDCM among
RAPL's unmodeled means). This extension completes the triangle: for a
compute-bound (LAMMPS) and a memory-bound (STREAM) code, sweep all three
knobs and record (power, progress) curves.

Expected shapes:

* **DVFS dominates DDCM everywhere** — both gate compute throughput, but
  DVFS also lowers voltage, so it reaches the same progress at lower
  power (equivalently: more progress at equal power).
* **DDCM hurts memory-bound code the most** — duty gates the memory
  issue rate, so STREAM loses bandwidth that a frequency reduction would
  have preserved.
* **RAPL tracks DVFS for compute-bound code** (it *is* DVFS there) and
  sits between DVFS and DDCM for memory-bound code at stringent settings
  (uncore-DVFS + DDCM fallback).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.figure5 import TechniquePoint
from repro.experiments.harness import Testbed
from repro.experiments.report import ascii_table
from repro.nrm.schemes import FixedCapSchedule

__all__ = ["TechniquesResult", "run", "render"]

_APPS = {
    "lammps": {"n_steps": 1_000_000},
    "stream": {"n_iterations": 1_000_000},
}

DVFS_FREQS = (3.3e9, 2.8e9, 2.3e9, 1.8e9, 1.4e9, 1.2e9)
DDCM_DUTIES = (1.0, 0.875, 0.75, 0.625, 0.5, 0.375)
RAPL_CAPS = (150.0, 125.0, 100.0, 80.0, 65.0, 50.0)


@dataclass(frozen=True)
class TechniquesResult:
    curves: dict[str, dict[str, tuple[TechniquePoint, ...]]]
    #: app -> technique -> points

    def progress_at(self, app: str, technique: str, power: float) -> float:
        """Interpolated progress of a technique's curve at ``power``."""
        pts = sorted(self.curves[app][technique], key=lambda p: p.power)
        xs = np.array([p.power for p in pts])
        ys = np.array([p.progress for p in pts])
        if not xs[0] <= power <= xs[-1]:
            raise ValueError(
                f"{app}/{technique}: {power} W outside [{xs[0]:.1f}, "
                f"{xs[-1]:.1f}]"
            )
        return float(np.interp(power, xs, ys))

    def common_power_range(self, app: str) -> tuple[float, float]:
        """Power range covered by all three curves for ``app``."""
        lo = max(min(p.power for p in pts)
                 for pts in self.curves[app].values())
        hi = min(max(p.power for p in pts)
                 for pts in self.curves[app].values())
        return lo, hi


def run(duration: float = 10.0, warmup: float = 4.0, seed: int = 0,
        testbed: Testbed | None = None) -> TechniquesResult:
    """Measure all three technique curves for both apps."""
    tb = testbed or Testbed(seed=seed)
    curves: dict[str, dict[str, tuple[TechniquePoint, ...]]] = {}
    for app, sizing in _APPS.items():
        per_app: dict[str, list[TechniquePoint]] = {
            "dvfs": [], "ddcm": [], "rapl": [],
        }
        for freq in DVFS_FREQS:
            r = tb.run(app, duration=duration, dvfs_freq=freq,
                       app_kwargs=sizing)
            per_app["dvfs"].append(TechniquePoint(
                "dvfs", freq,
                r.power.window(warmup, duration + 1e-9).mean(),
                r.steady_progress(warmup, duration + 1e-9,
                                  ignore_zeros=False)))
        for duty in DDCM_DUTIES:
            app_obj = tb.run(app, duration=duration, app_kwargs=sizing,
                             duty=duty)
            per_app["ddcm"].append(TechniquePoint(
                "ddcm", duty,
                app_obj.power.window(warmup, duration + 1e-9).mean(),
                app_obj.steady_progress(warmup, duration + 1e-9,
                                        ignore_zeros=False)))
        for cap in RAPL_CAPS:
            r = tb.run(app, duration=duration,
                       schedule=FixedCapSchedule(cap), app_kwargs=sizing)
            per_app["rapl"].append(TechniquePoint(
                "rapl", cap,
                r.power.window(warmup, duration + 1e-9).mean(),
                r.steady_progress(warmup, duration + 1e-9,
                                  ignore_zeros=False)))
        curves[app] = {k: tuple(v) for k, v in per_app.items()}
    return TechniquesResult(curves=curves)


def render(result: TechniquesResult) -> str:
    parts = ["Extension: DVFS vs DDCM vs RAPL\n"]
    for app, per_app in result.curves.items():
        rows = []
        for technique, pts in per_app.items():
            for p in pts:
                setting = (f"{p.setting / 1e9:.1f} GHz" if technique == "dvfs"
                           else f"{p.setting:.3g}"
                           + (" duty" if technique == "ddcm" else " W"))
                rows.append([technique, setting, round(p.power, 1),
                             round(p.progress, 2)])
        parts.append(ascii_table(
            ["technique", "setting", "power (W)", "progress"], rows,
            title=f"[{app}]",
        ))
        parts.append("")
    return "\n".join(parts)
