"""Figure 1 — characterizing online performance.

Three uncapped traces: LAMMPS (consistent, left), AMG (fluctuating,
center), QMCPACK (three phases at distinct block rates, right). The
result carries both the 1 Hz series and the mechanical classification
from :func:`repro.core.progress.classify_trace`; reproduction criterion:
LAMMPS classifies consistent, AMG fluctuating, QMCPACK phased with
VMC1 > VMC2 > DMC rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.progress import TraceCharacterization, classify_trace
from repro.experiments.harness import Testbed
from repro.experiments.report import series_block
from repro.runtime.executor import RunExecutor
from repro.telemetry.timeseries import TimeSeries

__all__ = ["Figure1Result", "run", "render"]


@dataclass(frozen=True)
class Figure1Result:
    lammps: TimeSeries
    amg: TimeSeries
    qmcpack: TimeSeries
    lammps_class: TraceCharacterization
    amg_class: TraceCharacterization
    qmcpack_class: TraceCharacterization


def _trace(args: tuple) -> TimeSeries:
    """Worker: one uncapped trace (module-level so pools can import it)."""
    app, duration, cfg, seed, app_kwargs = args
    return Testbed(cfg=cfg, seed=seed).run(app, duration=duration,
                                           app_kwargs=app_kwargs).progress


def run(duration: float = 40.0, seed: int = 0,
        testbed: Testbed | None = None,
        workers: int | None = None) -> Figure1Result:
    """Collect the three uncapped traces (~``duration`` seconds each).

    The traces are independent runs; ``workers > 1`` collects them on a
    process pool with identical numbers.
    """
    tb = testbed or Testbed(seed=seed)
    # QMCPACK sized so all three phases fit inside the window:
    # ~a third of the window each at their respective block rates.
    third = duration / 3.0
    tasks = [
        ("lammps", duration, tb.cfg, tb.seed, {"n_steps": 100_000}),
        ("amg", duration, tb.cfg, tb.seed,
         {"n_iterations": 100_000, "setup_iterations": 0}),
        ("qmcpack", duration, tb.cfg, tb.seed,
         {"vmc1_blocks": int(25.0 * third),
          "vmc2_blocks": int(20.0 * third),
          "dmc_blocks": 100_000}),
    ]
    lammps, amg, qmcpack = RunExecutor(workers or 1).map(_trace, tasks)
    return Figure1Result(
        lammps=lammps, amg=amg, qmcpack=qmcpack,
        lammps_class=classify_trace(lammps),
        amg_class=classify_trace(amg),
        qmcpack_class=classify_trace(qmcpack),
    )


def render(result: Figure1Result) -> str:
    parts = ["Figure 1: Characterizing online performance\n"]
    for name, series, cls, unit in (
        ("LAMMPS", result.lammps, result.lammps_class, "atom-steps/s"),
        ("AMG", result.amg, result.amg_class, "iterations/s"),
        ("QMCPACK", result.qmcpack, result.qmcpack_class, "blocks/s"),
    ):
        parts.append(series_block(name, series, unit))
        parts.append(
            f"  class={cls.trace_class} cv={cls.cv:.3f} "
            f"segments={cls.n_segments} "
            f"rates={tuple(round(r, 2) for r in cls.segment_rates)}\n"
        )
    return "\n".join(parts)
