"""Figure 2 — RAPL performs application-aware power management.

Sweeps identical package caps over LAMMPS (compute-bound) and STREAM
(memory-bound) and records the steady-state CPU frequency RAPL settles
at. Reproduction criterion: at every common cap the compute-bound
application runs at a frequency >= the memory-bound one — RAPL
effectively grants the cores a larger share of the budget when the
workload is compute-bound (the uncore's traffic-driven draw takes the
rest for STREAM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import Testbed
from repro.experiments.report import ascii_table
from repro.nrm.schemes import FixedCapSchedule

__all__ = ["Figure2Result", "run", "render", "DEFAULT_CAPS"]

DEFAULT_CAPS = (150.0, 135.0, 120.0, 105.0, 90.0, 75.0)

_APPS = {
    "lammps": {"n_steps": 100_000},
    "stream": {"n_iterations": 100_000},
}


@dataclass(frozen=True)
class Figure2Result:
    caps: tuple[float, ...]
    frequency_ghz: dict[str, tuple[float, ...]]   #: app -> freq at each cap

    def compute_bound_always_faster(self) -> bool:
        """Fig. 2's claim, checked pointwise."""
        return all(
            fl >= fs
            for fl, fs in zip(self.frequency_ghz["lammps"],
                              self.frequency_ghz["stream"])
        )


def run(caps: tuple[float, ...] = DEFAULT_CAPS, duration: float = 10.0,
        seed: int = 0, testbed: Testbed | None = None) -> Figure2Result:
    """Measure the settled frequency of both apps under each cap (mean
    over the second half of a ``duration``-second capped run)."""
    tb = testbed or Testbed(seed=seed)
    freq: dict[str, list[float]] = {name: [] for name in _APPS}
    for cap in caps:
        for name, sizing in _APPS.items():
            result = tb.run(name, duration=duration,
                            schedule=FixedCapSchedule(cap),
                            app_kwargs=sizing)
            settled = result.frequency.window(duration / 2, duration + 1e-9)
            freq[name].append(float(np.mean(settled.values)) / 1e9)
    return Figure2Result(
        caps=tuple(caps),
        frequency_ghz={k: tuple(v) for k, v in freq.items()},
    )


def render(result: Figure2Result) -> str:
    rows = [
        [cap,
         round(result.frequency_ghz["lammps"][i], 2),
         round(result.frequency_ghz["stream"][i], 2)]
        for i, cap in enumerate(result.caps)
    ]
    table = ascii_table(
        ["Package cap (W)", "LAMMPS freq (GHz)", "STREAM freq (GHz)"],
        rows,
        title="Figure 2: RAPL application-aware power management",
    )
    ok = result.compute_bound_always_faster()
    return table + (
        "\n\nCompute-bound frequency >= memory-bound frequency at every "
        f"cap: {'yes' if ok else 'NO'}"
    )
