"""Figure 3 — impact of dynamic power capping on progress.

Applies the three capping schemes (linear decrease, step function,
jagged edge) to LAMMPS, QMCPACK (DMC) and OpenMC (active) and collects
the cap and progress traces. Reproduction criteria:

* the progress series *follows* the cap schedule for every app/scheme
  (strong positive correlation between the cap trace and the progress
  trace over the capped region), which is the paper's key observation;
* OpenMC's trace contains spurious zero samples (the ZeroMQ-framework
  flaw the paper calls out).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import Testbed
from repro.experiments.report import series_block
from repro.nrm.schemes import (
    CapSchedule,
    JaggedEdgeSchedule,
    LinearDecreaseSchedule,
    StepSchedule,
)
from repro.telemetry.timeseries import TimeSeries

__all__ = ["Figure3Cell", "Figure3Result", "run", "render",
           "default_schemes"]

_APPS = {
    "lammps": {"n_steps": 1_000_000},
    "qmcpack": {"vmc1_blocks": 0, "vmc2_blocks": 0,
                "dmc_blocks": 1_000_000},
    "openmc": {"inactive_batches": 0, "active_batches": 1_000_000},
}


def default_schemes(high: float = 150.0, low: float = 70.0
                    ) -> dict[str, CapSchedule]:
    """The paper's three dynamic schemes, at testbed-appropriate levels."""
    return {
        "linear-decrease": LinearDecreaseSchedule(high=high, low=low,
                                                  rate=2.0, start=5.0),
        "step-function": StepSchedule(low=low, high=None,
                                      high_duration=15.0,
                                      low_duration=15.0),
        "jagged-edge": JaggedEdgeSchedule(high=high, low=low, descent=20.0),
    }


@dataclass(frozen=True)
class Figure3Cell:
    app: str
    scheme: str
    cap: TimeSeries
    progress: TimeSeries

    def cap_progress_correlation(self, smooth: float = 5.0) -> float:
        """Pearson correlation between the cap schedule and the progress
        rate, both averaged into ``smooth``-second bins.

        Smoothing matters for coarse-grained reporters: OpenMC completes
        ~1 batch/s, so its 1 Hz buckets quantize to 0-or-one-batch and
        only the windowed average tracks the cap.
        """
        if len(self.cap) < 3 or len(self.progress) < 3:
            return float("nan")
        t0 = self.cap.times[0]
        t1 = min(self.cap.times[-1], self.progress.times[-1])
        caps = self.cap.resample(smooth, t_start=t0, t_end=t1).values
        rates = self.progress.resample(smooth, t_start=t0, t_end=t1).values
        n = min(len(caps), len(rates))
        if n < 3 or np.std(caps[:n]) == 0 or np.std(rates[:n]) == 0:
            return float("nan")
        return float(np.corrcoef(caps[:n], rates[:n])[0, 1])

    def has_zero_glitches(self) -> bool:
        return bool((self.progress.values == 0.0).any())


@dataclass(frozen=True)
class Figure3Result:
    cells: tuple[Figure3Cell, ...]

    def cell(self, app: str, scheme: str) -> Figure3Cell:
        for c in self.cells:
            if c.app == app and c.scheme == scheme:
                return c
        raise KeyError((app, scheme))

    def min_correlation(self) -> float:
        return min(c.cap_progress_correlation() for c in self.cells)


def run(duration: float = 60.0, seed: int = 0,
        schemes: dict[str, CapSchedule] | None = None,
        testbed: Testbed | None = None) -> Figure3Result:
    """Run every (app, scheme) pair for ``duration`` seconds."""
    tb = testbed or Testbed(seed=seed)
    schemes = schemes or default_schemes()
    cells = []
    for app, sizing in _APPS.items():
        for scheme_name, schedule in schemes.items():
            result = tb.run(app, duration=duration, schedule=schedule,
                            app_kwargs=sizing)
            cells.append(Figure3Cell(
                app=app, scheme=scheme_name,
                cap=result.cap, progress=result.progress,
            ))
    return Figure3Result(cells=tuple(cells))


def render(result: Figure3Result) -> str:
    parts = ["Figure 3: Impact of dynamic power-capping on progress\n"]
    for cell in result.cells:
        parts.append(f"[{cell.app} / {cell.scheme}] "
                     f"corr(cap, progress)={cell.cap_progress_correlation():.3f}")
        parts.append(series_block("  cap", cell.cap, "W"))
        parts.append(series_block("  progress", cell.progress))
        if cell.app == "openmc" and cell.has_zero_glitches():
            parts.append("  (spurious zero progress reports present — "
                         "ZeroMQ-framework flaw, as in the paper)")
        parts.append("")
    return "\n".join(parts)
