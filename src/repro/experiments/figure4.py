"""Figure 4 — measured vs. model-predicted change in progress.

For each application, the step-function protocol of Section VI-B:

1. measure the uncapped baseline (``r_max`` and the uncapped package
   power, from which the model estimates ``P_coremax = beta * P_pkg``),
2. for each package cap, apply the cap from the uncapped state and
   measure the change in progress, averaged over ``repeats`` runs,
3. predict the change with the Eq.-7 model (alpha fixed at 2, as in the
   paper; ``P_corecap = beta * P_cap``),
4. summarize signed percentage errors.

Reproduction criteria (shape, not absolute numbers): the model lands
within tens of percent midrange for CPU-bound codes and degrades at the
extremes; it *underestimates* the impact for the memory-bound STREAM —
badly at the cap range where RAPL resorts to DDCM (paper: -70%) —
because the model assumes RAPL uses DVFS only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.errors import ErrorSummary, percentage_error, summarize_errors
from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError
from repro.experiments.harness import DeltaMeasurement, Testbed
from repro.experiments.report import ascii_table
from repro.experiments.table6 import PAPER as TABLE6
from repro.runtime.executor import RunExecutor

__all__ = ["Figure4Panel", "Figure4Result", "run", "render",
           "DEFAULT_CAPS", "APP_SIZING"]

#: Package-domain cap sweeps per application (W).
DEFAULT_CAPS: dict[str, tuple[float, ...]] = {
    "lammps": (140.0, 120.0, 100.0, 80.0, 65.0, 50.0),
    "amg": (120.0, 105.0, 90.0, 80.0, 70.0, 60.0),
    "qmcpack": (140.0, 120.0, 100.0, 80.0, 65.0, 55.0),
    "stream": (150.0, 130.0, 110.0, 90.0, 70.0, 55.0),
    "openmc": (140.0, 120.0, 105.0, 90.0, 75.0, 60.0),
}

#: Per-app (uncapped, capped) measurement windows in seconds. Apps that
#: report coarsely (AMG ~3 iterations/s, OpenMC ~1 batch/s) need longer
#: windows for the rate quantization to average out.
DEFAULT_WINDOWS: dict[str, tuple[float, float]] = {
    "lammps": (10.0, 12.0),
    "amg": (16.0, 20.0),
    "qmcpack": (10.0, 12.0),
    "stream": (10.0, 12.0),
    "openmc": (16.0, 20.0),
}

#: Endless-iteration sizings (runs are bounded by wall-clock windows).
APP_SIZING = {
    "lammps": {"n_steps": 1_000_000},
    "amg": {"n_iterations": 1_000_000, "setup_iterations": 0},
    "qmcpack": {"vmc1_blocks": 0, "vmc2_blocks": 0,
                "dmc_blocks": 1_000_000},
    "stream": {"n_iterations": 1_000_000},
    "openmc": {"inactive_batches": 0, "active_batches": 1_000_000,
               "transport_drop_prob": 0.0},
}


@dataclass(frozen=True)
class Figure4Panel:
    """One subfigure: an application's sweep."""

    app: str
    beta: float
    alpha: float
    r_max: float
    p_coremax: float
    measurements: tuple[DeltaMeasurement, ...]
    predictions: tuple[float, ...]
    errors: ErrorSummary

    @property
    def p_corecaps(self) -> tuple[float, ...]:
        return tuple(m.p_corecap for m in self.measurements)


@dataclass(frozen=True)
class Figure4Result:
    panels: tuple[Figure4Panel, ...]

    def panel(self, app: str) -> Figure4Panel:
        for p in self.panels:
            if p.app == app:
                return p
        raise KeyError(app)


def run_panel(app: str, *, caps: tuple[float, ...] | None = None,
              repeats: int = 5, seed: int = 0, alpha: float = 2.0,
              baseline_window: float = 14.0,
              uncapped_window: float | None = None,
              capped_window: float | None = None,
              warmup: float = 3.0,
              firmware_kwargs: dict | None = None,
              testbed: Testbed | None = None,
              executor: RunExecutor | None = None) -> Figure4Panel:
    """Measure + predict one application's sweep.

    ``firmware_kwargs`` supports ablations (e.g. disabling the firmware's
    uncore DVFS with ``{"min_uncore_scale": 1.0}``) to attribute model
    error to specific unmodeled RAPL mechanisms.

    ``executor`` fans the per-cap repeats out over a process pool; the
    numbers are identical to the serial sweep.
    """
    with obs.tracer().span("figure4.panel", app=app, repeats=repeats):
        return _run_panel(
            app, caps=caps, repeats=repeats, seed=seed, alpha=alpha,
            baseline_window=baseline_window,
            uncapped_window=uncapped_window, capped_window=capped_window,
            warmup=warmup, firmware_kwargs=firmware_kwargs,
            testbed=testbed, executor=executor)


def _run_panel(app, *, caps, repeats, seed, alpha, baseline_window,
               uncapped_window, capped_window, warmup, firmware_kwargs,
               testbed, executor) -> Figure4Panel:
    tb = testbed or Testbed(seed=seed)
    beta = TABLE6[app][0]
    sizing = APP_SIZING[app]
    caps = caps if caps is not None else DEFAULT_CAPS[app]
    default_un, default_cap = DEFAULT_WINDOWS[app]
    if uncapped_window is None:
        uncapped_window = default_un
    if capped_window is None:
        capped_window = default_cap
    baseline_window = max(baseline_window, uncapped_window)

    baseline = tb.run(app, duration=baseline_window, app_kwargs=sizing,
                      firmware_kwargs=firmware_kwargs)
    r_max = baseline.steady_progress(warmup, baseline_window + 1e-9)
    p_uncapped = baseline.power.window(warmup, baseline_window + 1e-9).mean()
    model = PowerCapModel(beta=beta, r_max=r_max,
                          p_coremax=beta * p_uncapped, alpha=alpha)

    measurements = []
    predictions = []
    for cap in caps:
        m = tb.measure_delta_progress(
            app, cap, beta=beta, repeats=repeats,
            uncapped_window=uncapped_window, capped_window=capped_window,
            warmup=warmup, app_kwargs=sizing,
            firmware_kwargs=firmware_kwargs,
            executor=executor,
        )
        measurements.append(m)
        predictions.append(model.delta_progress(m.p_corecap))
    # Percentage error is undefined where the cap did not bind (measured
    # change ~ 0); such points are excluded from the summary, as in the
    # paper, which only reports errors for binding caps.
    eps = 1e-3 * r_max
    binding = [(p, m.delta_mean) for p, m in zip(predictions, measurements)
               if abs(m.delta_mean) > eps]
    if not binding:
        raise ConfigurationError(
            f"no cap in the sweep bound for {app}; lower the caps"
        )
    errors = summarize_errors([b[0] for b in binding],
                              [b[1] for b in binding])
    return Figure4Panel(
        app=app, beta=beta, alpha=alpha, r_max=r_max,
        p_coremax=beta * p_uncapped,
        measurements=tuple(measurements),
        predictions=tuple(predictions),
        errors=errors,
    )


def run(apps: tuple[str, ...] = ("lammps", "amg", "qmcpack", "stream",
                                 "openmc"),
        repeats: int = 5, seed: int = 0,
        testbed: Testbed | None = None,
        workers: int | None = None, **panel_kwargs) -> Figure4Result:
    """All five panels (4a-4e).

    ``workers > 1`` distributes each panel's repeat runs over a process
    pool (identical numbers, shorter wall-clock).
    """
    tb = testbed or Testbed(seed=seed)
    if workers is not None and "executor" not in panel_kwargs:
        panel_kwargs["executor"] = RunExecutor(workers)
    return Figure4Result(panels=tuple(
        run_panel(app, repeats=repeats, seed=seed, testbed=tb,
                  **panel_kwargs)
        for app in apps
    ))


def render(result: Figure4Result) -> str:
    from repro.experiments.plotting import Series, ascii_plot

    parts = ["Figure 4: Measured vs predicted change in progress\n"]
    for panel in result.panels:
        # normalize the y axis so the plot shape is scale-free
        scale = max(max(m.delta_mean for m in panel.measurements),
                    max(panel.predictions), 1e-12)
        parts.append(ascii_plot(
            [
                Series("measured", panel.p_corecaps,
                       tuple(m.delta_mean / scale
                             for m in panel.measurements), marker="o"),
                Series("model (alpha=2)", panel.p_corecaps,
                       tuple(p / scale for p in panel.predictions),
                       marker="x"),
            ],
            xlabel="P_corecap (W)",
            ylabel="dP/max",
            title=f"Fig. 4 [{panel.app}]",
            width=56, height=12,
        ))
        parts.append("")
    for panel in result.panels:
        rows = []
        eps = 1e-3 * panel.r_max
        for m, pred in zip(panel.measurements, panel.predictions):
            if abs(m.delta_mean) > eps:
                err = f"{percentage_error(pred, m.delta_mean):+.1f}%"
            else:
                err = "(cap did not bind)"
            rows.append([
                round(m.p_cap, 1), round(m.p_corecap, 1),
                f"{m.delta_mean:.4g}", f"{m.delta_std:.2g}",
                f"{pred:.4g}", err,
            ])
        parts.append(ascii_table(
            ["P_cap (W)", "P_corecap (W)", "measured dP", "std",
             "predicted dP", "error"],
            rows,
            title=(f"[{panel.app}] beta={panel.beta:.2f} "
                   f"alpha={panel.alpha} r_max={panel.r_max:.4g} "
                   f"P_coremax={panel.p_coremax:.1f} W"),
        ))
        parts.append(
            f"  MAPE={panel.errors.mape:.1f}%  "
            f"max over={panel.errors.max_overestimate:+.1f}%  "
            f"max under={panel.errors.max_underestimate:+.1f}%\n"
        )
    return "\n".join(parts)
