"""Figure 5 — STREAM: DVFS vs RAPL as power-limiting techniques.

Sweeps equivalent power budgets through both knobs:

* **DVFS** — pin each ladder frequency through the userspace governor
  and measure the resulting progress and package power;
* **RAPL** — apply package caps and measure progress and power.

Each technique yields a (power, progress) curve. Reproduction criterion:
within DVFS's applicable power range, DVFS sustains at least as much
STREAM progress as RAPL at comparable power — i.e. "RAPL is not the best
technique to implement power capping for STREAM" — because RAPL falls
back to duty-cycle modulation, which also throttles the memory issue
rate, while DVFS leaves achievable bandwidth mostly intact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import Testbed
from repro.experiments.report import ascii_table
from repro.nrm.schemes import FixedCapSchedule

__all__ = ["Figure5Result", "TechniquePoint", "run", "render"]

_SIZING = {"n_iterations": 1_000_000}

DEFAULT_FREQS = (3.3e9, 2.9e9, 2.5e9, 2.1e9, 1.7e9, 1.4e9, 1.2e9)
DEFAULT_CAPS = (150.0, 130.0, 110.0, 90.0, 70.0, 55.0, 45.0)


@dataclass(frozen=True)
class TechniquePoint:
    """One (setting, power, progress) sample of a technique's curve."""

    technique: str      #: "dvfs" or "rapl"
    setting: float      #: pinned frequency (Hz) or package cap (W)
    power: float        #: measured average package power (W)
    progress: float     #: measured steady progress rate


@dataclass(frozen=True)
class Figure5Result:
    dvfs: tuple[TechniquePoint, ...]
    rapl: tuple[TechniquePoint, ...]

    def dvfs_advantage_at(self, power: float) -> float:
        """DVFS progress minus RAPL progress at a given power level,
        linearly interpolating each curve (power must lie inside both
        curves' measured ranges)."""
        def interp(points):
            pts = sorted(points, key=lambda p: p.power)
            xs = np.array([p.power for p in pts])
            ys = np.array([p.progress for p in pts])
            if not xs[0] <= power <= xs[-1]:
                raise ValueError(
                    f"power {power} outside measured range [{xs[0]:.1f}, "
                    f"{xs[-1]:.1f}]"
                )
            return float(np.interp(power, xs, ys))

        return interp(self.dvfs) - interp(self.rapl)

    def overlap_range(self) -> tuple[float, float]:
        """Power range where both techniques have measurements."""
        lo = max(min(p.power for p in self.dvfs),
                 min(p.power for p in self.rapl))
        hi = min(max(p.power for p in self.dvfs),
                 max(p.power for p in self.rapl))
        return lo, hi


def run(freqs: tuple[float, ...] = DEFAULT_FREQS,
        caps: tuple[float, ...] = DEFAULT_CAPS,
        duration: float = 10.0, warmup: float = 4.0, seed: int = 0,
        testbed: Testbed | None = None) -> Figure5Result:
    """Measure both technique curves on STREAM."""
    tb = testbed or Testbed(seed=seed)
    dvfs_points = []
    for freq in freqs:
        r = tb.run("stream", duration=duration, dvfs_freq=freq,
                   app_kwargs=_SIZING)
        dvfs_points.append(TechniquePoint(
            technique="dvfs", setting=freq,
            power=r.power.window(warmup, duration + 1e-9).mean(),
            progress=r.steady_progress(warmup, duration + 1e-9),
        ))
    rapl_points = []
    for cap in caps:
        r = tb.run("stream", duration=duration,
                   schedule=FixedCapSchedule(cap), app_kwargs=_SIZING)
        rapl_points.append(TechniquePoint(
            technique="rapl", setting=cap,
            power=r.power.window(warmup, duration + 1e-9).mean(),
            progress=r.steady_progress(warmup, duration + 1e-9),
        ))
    return Figure5Result(dvfs=tuple(dvfs_points), rapl=tuple(rapl_points))


def render(result: Figure5Result) -> str:
    from repro.experiments.plotting import Series, ascii_plot

    plot = ascii_plot(
        [
            Series("DVFS", tuple(p.power for p in result.dvfs),
                   tuple(p.progress for p in result.dvfs), marker="d"),
            Series("RAPL", tuple(p.power for p in result.rapl),
                   tuple(p.progress for p in result.rapl), marker="r"),
        ],
        xlabel="package power (W)", ylabel="iter/s",
        title="Fig. 5: STREAM progress vs power",
        width=56, height=14,
    )
    rows = []
    for p in result.dvfs:
        rows.append(["DVFS", f"{p.setting / 1e9:.1f} GHz",
                     round(p.power, 1), round(p.progress, 2)])
    for p in result.rapl:
        rows.append(["RAPL", f"{p.setting:.0f} W cap",
                     round(p.power, 1), round(p.progress, 2)])
    table = ascii_table(
        ["Technique", "Setting", "Power (W)", "Progress (iter/s)"],
        rows,
        title="Figure 5: STREAM under DVFS vs RAPL power limiting",
    )
    lo, hi = result.overlap_range()
    probe = (lo + hi) / 2.0
    adv = result.dvfs_advantage_at(probe)
    return plot + "\n\n" + table + (
        f"\n\nAt {probe:.0f} W (mid-overlap), DVFS sustains "
        f"{adv:+.2f} iterations/s versus RAPL "
        f"({'DVFS better' if adv > 0 else 'RAPL better'})."
    )
