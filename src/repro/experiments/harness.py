"""Measurement machinery shared by all experiments.

:class:`Testbed` assembles a full software/hardware stack per run — the
simulated node, RAPL firmware, MSR device behind msr-safe, the
libmsr-style API, the ZeroMQ-style bus, 1 Hz progress monitors, and the
power-policy daemon — then executes one application under a capping
schedule and returns every series the paper's figures need.

The module also implements the paper's measurement protocols:

* :meth:`Testbed.characterize` — Section IV-A: execution time at
  3300 MHz and 1600 MHz for beta, PAPI counters for MPO;
* :meth:`Testbed.measure_delta_progress` — Section VI-B: the
  step-function protocol ("the change in progress is measured when a
  power cap is applied from an uncapped state"), averaged over five
  repeats per cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import mean_confidence_interval
from repro.apps import build as build_app
from repro.apps.base import SyntheticApp
from repro.core.beta import beta_from_times, mpo_from_delta
from repro.core.progress import steady_rate
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.hardware.counters import CounterSnapshot
from repro.hardware.ddcm import DDCMController
from repro.hardware.dvfs import DVFSController
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.node import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm.daemon import PowerPolicyDaemon
from repro.nrm.schemes import CapSchedule, FixedCapSchedule, UncappedSchedule
from repro.runtime.engine import Engine
from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.pubsub import MessageBus
from repro.telemetry.timeseries import TimeSeries

__all__ = ["Testbed", "RunResult", "DeltaMeasurement",
           "CharacterizationResult"]


@dataclass
class RunResult:
    """Everything measured in one application run."""

    app_name: str
    seed: int
    duration: float
    progress: TimeSeries                 #: main-topic rate series (1 Hz)
    topics: dict[str, TimeSeries]        #: all monitored topic series
    power: TimeSeries                    #: package power (1 Hz averages)
    frequency: TimeSeries                #: package frequency samples
    duty: TimeSeries                     #: duty-cycle samples
    uncore_power: TimeSeries             #: instantaneous uncore power samples
    cap: TimeSeries                      #: applied cap (TDP when uncapped)
    counters: CounterSnapshot            #: counter deltas over the run
    pkg_energy: float                    #: total package energy (J)
    app: SyntheticApp = field(repr=False)

    def steady_progress(self, t_start: float, t_end: float, *,
                        ignore_zeros: bool = True) -> float:
        """Mean progress rate over an absolute-time window."""
        window = self.progress.window(t_start, t_end)
        values = window.values
        if ignore_zeros:
            values = values[values > 0.0]
        if values.size == 0:
            raise ConfigurationError(
                f"no progress samples in [{t_start}, {t_end})"
            )
        return float(values.mean())

    def mips(self) -> float:
        """Node-wide MIPS over the whole run (Table I's metric)."""
        return self.counters.mips()

    def mpo(self) -> float:
        """Misses per operation over the whole run."""
        return mpo_from_delta(self.counters)


@dataclass(frozen=True)
class DeltaMeasurement:
    """Averaged change-in-progress measurement at one power cap."""

    p_cap: float                 #: package cap applied (W)
    p_corecap: float             #: model-estimated core cap (beta * p_cap)
    delta_mean: float            #: mean measured change in progress
    delta_std: float
    r_uncapped: float            #: mean uncapped rate across repeats
    repeats: int
    ci_low: float = float("nan")   #: 95% t-interval on the mean delta
    ci_high: float = float("nan")

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95 % confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


@dataclass(frozen=True)
class CharacterizationResult:
    """Section IV-A characterization of one application."""

    app_name: str
    beta: float
    mpo: float
    t_high: float                #: execution time at f_nominal
    t_low: float                 #: execution time at f_beta_low


class Testbed:
    """Factory for fully wired single-run experiments."""

    __test__ = False  # the name starts with "Test"; keep pytest away

    def __init__(self, cfg: NodeConfig | None = None, seed: int = 0) -> None:
        self.cfg = cfg if cfg is not None else skylake_config()
        self.seed = seed

    # ------------------------------------------------------------------
    # Single run
    # ------------------------------------------------------------------

    def run(self, app: str | SyntheticApp = "lammps", *,
            duration: float | None = None,
            schedule: CapSchedule | None = None,
            dvfs_freq: float | None = None,
            duty: float | None = None,
            topics: tuple[str, ...] | None = None,
            monitor_interval: float = 1.0,
            seed: int | None = None,
            app_kwargs: dict | None = None,
            firmware_kwargs: dict | None = None) -> RunResult:
        """Execute one application run and collect all telemetry.

        Parameters
        ----------
        app:
            Application name (built via the registry with ``app_kwargs``)
            or a pre-built :class:`~repro.apps.base.SyntheticApp`.
        duration:
            Stop after this many simulated seconds; None runs the
            application to completion.
        schedule:
            Capping schedule applied by the power-policy daemon
            (default: uncapped).
        dvfs_freq:
            Pin the package frequency through the userspace DVFS knob.
        duty:
            Pin the duty cycle through the userspace DDCM knob (the
            firmware never undoes a software duty pin).
        firmware_kwargs:
            Overrides for the RAPL firmware (ablations: e.g.
            ``{"min_uncore_scale": 1.0}`` disables uncore DVFS).
        topics:
            Topics to monitor; defaults to the application's main topic
            (component topics for URBAN, both definitions for the
            imbalance example).
        """
        seed = self.seed if seed is None else seed
        if isinstance(app, str):
            kwargs = dict(app_kwargs or {})
            kwargs.setdefault("seed", seed)
            kwargs.setdefault("cfg", self.cfg)
            app = build_app(app, **kwargs)

        node = SimulatedNode(self.cfg)
        engine = Engine(node)
        firmware = RaplFirmware(node, engine, **(firmware_kwargs or {}))
        libmsr = LibMSR(MSRSafe(MSRDevice(node, firmware)), node.clock)

        if dvfs_freq is not None:
            DVFSController(node).set_frequency(dvfs_freq)
        if duty is not None:
            DDCMController(node).set_duty(duty)

        bus = MessageBus(node.clock,
                         drop_prob=app.spec.transport_drop_prob,
                         seed=seed + 1)
        pub = bus.pub_socket()
        engine.on_publish(lambda t, topic, v: pub.send(topic, v))

        if topics is None:
            topics = self._default_topics(app)
        monitors = {
            topic: ProgressMonitor(engine, bus.sub_socket(topic),
                                   interval=monitor_interval, name=topic)
            for topic in topics
        }

        daemon = PowerPolicyDaemon(engine, libmsr,
                                   schedule or UncappedSchedule())

        freq_series = TimeSeries("frequency")
        duty_series = TimeSeries("duty")
        uncore_series = TimeSeries("uncore-power")

        def sample_state(now: float) -> None:
            freq_series.append(now, node.frequency)
            duty_series.append(now, node.duty)
            uncore_series.append(now, node.last_power.uncore)

        engine.add_timer(monitor_interval, sample_state,
                         period=monitor_interval)

        counters_before = node.counters.snapshot(node.clock.now)
        app.launch(engine)
        end = engine.run(until=duration)
        counters_after = node.counters.snapshot(node.clock.now)

        main_topic = topics[0]
        return RunResult(
            app_name=app.name,
            seed=seed,
            duration=end,
            progress=monitors[main_topic].series,
            topics={t: m.series for t, m in monitors.items()},
            power=daemon.power_series,
            frequency=freq_series,
            duty=duty_series,
            uncore_power=uncore_series,
            cap=daemon.cap_series,
            counters=counters_after.delta(counters_before),
            pkg_energy=node.pkg_energy,
            app=app,
        )

    @staticmethod
    def _default_topics(app: SyntheticApp) -> tuple[str, ...]:
        if app.name == "imbalance":
            return ("progress/imbalance/iterations",
                    "progress/imbalance/work_units")
        if app.name == "urban":
            return tuple(f"progress/{c.name}" for c in app.components)  # type: ignore[attr-defined]
        return (app.topic,)

    # ------------------------------------------------------------------
    # Section IV-A: beta / MPO characterization
    # ------------------------------------------------------------------

    def characterize(self, app_name: str,
                     app_kwargs: dict | None = None) -> CharacterizationResult:
        """Measure beta (times at 3300 vs 1600 MHz) and MPO (counters)."""
        high = self.run(app_name, dvfs_freq=self.cfg.f_nominal,
                        app_kwargs=app_kwargs)
        low = self.run(app_name, dvfs_freq=self.cfg.f_beta_low,
                       app_kwargs=app_kwargs)
        beta = beta_from_times(low.duration, high.duration,
                               self.cfg.f_beta_low, self.cfg.f_nominal)
        return CharacterizationResult(
            app_name=app_name,
            beta=beta,
            mpo=high.mpo(),
            t_high=high.duration,
            t_low=low.duration,
        )

    # ------------------------------------------------------------------
    # Section VI-B: change-in-progress under a step cap
    # ------------------------------------------------------------------

    def measure_delta_progress(self, app_name: str, p_cap: float, *,
                               beta: float,
                               repeats: int = 5,
                               uncapped_window: float = 12.0,
                               capped_window: float = 16.0,
                               warmup: float = 3.0,
                               app_kwargs: dict | None = None,
                               firmware_kwargs: dict | None = None
                               ) -> DeltaMeasurement:
        """The paper's protocol: run uncapped, step down to ``p_cap``,
        measure the change in the progress rate; repeat and average."""
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        deltas = []
        uncapped_rates = []
        total = uncapped_window + capped_window
        for rep in range(repeats):
            result = self.run(
                app_name,
                duration=total,
                schedule=FixedCapSchedule(p_cap, start=uncapped_window),
                seed=self.seed + 101 * rep,
                app_kwargs=app_kwargs,
                firmware_kwargs=firmware_kwargs,
            )
            # Zeros are averaged in: for coarse reporters (OpenMC's ~1
            # batch/s) empty 1 Hz buckets are how a sub-1/s rate shows
            # up, and dropping them would bias the mean to exactly one
            # batch per bucket. The protocol therefore runs the app with
            # a lossless transport.
            r_un = result.steady_progress(warmup, uncapped_window,
                                          ignore_zeros=False)
            r_cap = result.steady_progress(uncapped_window + warmup,
                                           total + 1e-9, ignore_zeros=False)
            deltas.append(r_un - r_cap)
            uncapped_rates.append(r_un)
        ci_low, ci_high = mean_confidence_interval(deltas)
        return DeltaMeasurement(
            p_cap=p_cap,
            p_corecap=beta * p_cap,
            delta_mean=float(np.mean(deltas)),
            delta_std=float(np.std(deltas)),
            r_uncapped=float(np.mean(uncapped_rates)),
            repeats=repeats,
            ci_low=ci_low,
            ci_high=ci_high,
        )
