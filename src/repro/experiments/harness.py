"""Measurement machinery shared by all experiments.

:class:`Testbed` runs measurement protocols over the unified node stack
(:mod:`repro.stack`): each run assembles the full testbed assembly — the
simulated node, RAPL firmware, MSR device behind msr-safe, the
libmsr-style API, the ZeroMQ-style bus, 1 Hz progress monitors, and the
power-policy daemon — through :class:`~repro.stack.builder.NodeStack`,
executes one application under a capping schedule, and returns every
series the paper's figures need.

The module also implements the paper's measurement protocols:

* :meth:`Testbed.characterize` — Section IV-A: execution time at
  3300 MHz and 1600 MHz for beta, PAPI counters for MPO;
* :meth:`Testbed.measure_delta_progress` — Section VI-B: the
  step-function protocol ("the change in progress is measured when a
  power cap is applied from an uncapped state"), averaged over five
  repeats per cap. The repeats are independent runs described by plain
  data, so they fan out over a
  :class:`~repro.runtime.executor.RunExecutor` process pool when one is
  supplied — with results identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.analysis import mean_confidence_interval
from repro.apps.base import SyntheticApp
from repro.core.beta import beta_from_times, mpo_from_delta
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.hardware.counters import CounterSnapshot
from repro.nrm.schemes import CapSchedule, FixedCapSchedule
from repro.runtime.executor import RunExecutor
from repro.stack import NodeStack, StackSpec
from repro.telemetry.timeseries import TimeSeries

__all__ = ["Testbed", "RunResult", "DeltaMeasurement",
           "CharacterizationResult"]


@dataclass
class RunResult:
    """Everything measured in one application run."""

    app_name: str
    seed: int
    duration: float
    progress: TimeSeries                 #: main-topic rate series (1 Hz)
    topics: dict[str, TimeSeries]        #: all monitored topic series
    power: TimeSeries                    #: package power (1 Hz averages)
    frequency: TimeSeries                #: package frequency samples
    duty: TimeSeries                     #: duty-cycle samples
    uncore_power: TimeSeries             #: instantaneous uncore power samples
    cap: TimeSeries                      #: applied cap (TDP when uncapped)
    counters: CounterSnapshot            #: counter deltas over the run
    pkg_energy: float                    #: total package energy (J)
    app: SyntheticApp = field(repr=False)

    def steady_progress(self, t_start: float, t_end: float, *,
                        ignore_zeros: bool = True) -> float:
        """Mean progress rate over an absolute-time window."""
        window = self.progress.window(t_start, t_end)
        values = window.values
        if ignore_zeros:
            values = values[values > 0.0]
        if values.size == 0:
            raise ConfigurationError(
                f"no progress samples in [{t_start}, {t_end})"
            )
        return float(values.mean())

    def mips(self) -> float:
        """Node-wide MIPS over the whole run (Table I's metric)."""
        return self.counters.mips()

    def mpo(self) -> float:
        """Misses per operation over the whole run."""
        return mpo_from_delta(self.counters)


@dataclass(frozen=True)
class DeltaMeasurement:
    """Averaged change-in-progress measurement at one power cap."""

    p_cap: float                 #: package cap applied (W)
    p_corecap: float             #: model-estimated core cap (beta * p_cap)
    delta_mean: float            #: mean measured change in progress
    delta_std: float
    r_uncapped: float            #: mean uncapped rate across repeats
    repeats: int
    ci_low: float = float("nan")   #: 95% t-interval on the mean delta
    ci_high: float = float("nan")

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the 95 % confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


@dataclass(frozen=True)
class CharacterizationResult:
    """Section IV-A characterization of one application."""

    app_name: str
    beta: float
    mpo: float
    t_high: float                #: execution time at f_nominal
    t_low: float                 #: execution time at f_beta_low


class Testbed:
    """Factory for fully wired single-run experiments."""

    __test__ = False  # the name starts with "Test"; keep pytest away

    def __init__(self, cfg: NodeConfig | None = None, seed: int = 0) -> None:
        self.cfg = cfg if cfg is not None else skylake_config()
        self.seed = seed

    # ------------------------------------------------------------------
    # Single run
    # ------------------------------------------------------------------

    def run(self, app: str | SyntheticApp = "lammps", *,
            duration: float | None = None,
            schedule: CapSchedule | None = None,
            dvfs_freq: float | None = None,
            duty: float | None = None,
            topics: tuple[str, ...] | None = None,
            monitor_interval: float = 1.0,
            seed: int | None = None,
            app_kwargs: dict | None = None,
            firmware_kwargs: dict | None = None) -> RunResult:
        """Execute one application run and collect all telemetry.

        Parameters
        ----------
        app:
            Application name (built via the registry with ``app_kwargs``)
            or a pre-built :class:`~repro.apps.base.SyntheticApp`.
        duration:
            Stop after this many simulated seconds; None runs the
            application to completion.
        schedule:
            Capping schedule applied by the power-policy daemon
            (default: uncapped).
        dvfs_freq:
            Pin the package frequency through the userspace DVFS knob.
        duty:
            Pin the duty cycle through the userspace DDCM knob (the
            firmware never undoes a software duty pin).
        firmware_kwargs:
            Overrides for the RAPL firmware (ablations: e.g.
            ``{"min_uncore_scale": 1.0}`` disables uncore DVFS).
        topics:
            Topics to monitor; defaults to the application's main topic
            (component topics for URBAN, both definitions for the
            imbalance example).
        """
        seed = self.seed if seed is None else seed
        prebuilt = None if isinstance(app, str) else app
        app_name = app if prebuilt is None else prebuilt.name
        with obs.tracer().span("harness.run", app=app_name,
                               duration=duration, seed=seed):
            return self._run(app_name, prebuilt, duration, schedule,
                             dvfs_freq, duty, topics, monitor_interval,
                             seed, app_kwargs, firmware_kwargs)

    def _run(self, app_name, prebuilt, duration, schedule, dvfs_freq,
             duty, topics, monitor_interval, seed, app_kwargs,
             firmware_kwargs) -> RunResult:
        spec = StackSpec(
            app_name=app_name,
            cfg=self.cfg,
            app_kwargs=app_kwargs,
            seed=seed,
            schedule=schedule,
            monitor_interval=monitor_interval,
            topics=topics,
            dvfs_freq=dvfs_freq,
            duty=duty,
            firmware_kwargs=firmware_kwargs,
            sample_node_state=True,
        )
        stack = NodeStack(spec, app=prebuilt)
        counters_before = stack.node.counters.snapshot(stack.now)
        end = stack.run(until=duration)
        counters_after = stack.node.counters.snapshot(stack.now)

        daemon = stack.daemon
        assert daemon is not None  # Testbed stacks use the daemon controller
        return RunResult(
            app_name=stack.app.name,
            seed=seed,
            duration=end,
            progress=stack.progress_series,
            topics=stack.topic_series(),
            power=daemon.power_series,
            frequency=stack.freq_series,
            duty=stack.duty_series,
            uncore_power=stack.uncore_series,
            cap=daemon.cap_series,
            counters=counters_after.delta(counters_before),
            pkg_energy=stack.node.pkg_energy,
            app=stack.app,
        )

    # ------------------------------------------------------------------
    # Section IV-A: beta / MPO characterization
    # ------------------------------------------------------------------

    def characterize(self, app_name: str,
                     app_kwargs: dict | None = None) -> CharacterizationResult:
        """Measure beta (times at 3300 vs 1600 MHz) and MPO (counters)."""
        high = self.run(app_name, dvfs_freq=self.cfg.f_nominal,
                        app_kwargs=app_kwargs)
        low = self.run(app_name, dvfs_freq=self.cfg.f_beta_low,
                       app_kwargs=app_kwargs)
        beta = beta_from_times(low.duration, high.duration,
                               self.cfg.f_beta_low, self.cfg.f_nominal)
        return CharacterizationResult(
            app_name=app_name,
            beta=beta,
            mpo=high.mpo(),
            t_high=high.duration,
            t_low=low.duration,
        )

    # ------------------------------------------------------------------
    # Section VI-B: change-in-progress under a step cap
    # ------------------------------------------------------------------

    def measure_delta_progress(self, app_name: str, p_cap: float, *,
                               beta: float,
                               repeats: int = 5,
                               uncapped_window: float = 12.0,
                               capped_window: float = 16.0,
                               warmup: float = 3.0,
                               app_kwargs: dict | None = None,
                               firmware_kwargs: dict | None = None,
                               executor: RunExecutor | None = None
                               ) -> DeltaMeasurement:
        """The paper's protocol: run uncapped, step down to ``p_cap``,
        measure the change in the progress rate; repeat and average.

        The repeats are independent runs (per-repeat seeds are fixed up
        front), so an ``executor`` with ``workers > 1`` runs them on a
        process pool with numerically identical results — the serial
        path executes the very same worker function in-process.
        """
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        total = uncapped_window + capped_window
        span = obs.tracer().span("harness.delta", app=app_name,
                                 p_cap=p_cap, repeats=repeats)
        tasks = [
            _DeltaRepeatTask(
                cfg=self.cfg,
                seed=self.seed + 101 * rep,
                app_name=app_name,
                p_cap=p_cap,
                uncapped_window=uncapped_window,
                capped_window=capped_window,
                warmup=warmup,
                app_kwargs=app_kwargs,
                firmware_kwargs=firmware_kwargs,
            )
            for rep in range(repeats)
        ]
        with span:
            pairs = (executor or RunExecutor(1)).map(_delta_repeat, tasks)
        uncapped_rates = [r_un for r_un, _ in pairs]
        deltas = [r_un - r_cap for r_un, r_cap in pairs]
        ci_low, ci_high = mean_confidence_interval(deltas)
        return DeltaMeasurement(
            p_cap=p_cap,
            p_corecap=beta * p_cap,
            delta_mean=float(np.mean(deltas)),
            delta_std=float(np.std(deltas)),
            r_uncapped=float(np.mean(uncapped_rates)),
            repeats=repeats,
            ci_low=ci_low,
            ci_high=ci_high,
        )


@dataclass(frozen=True)
class _DeltaRepeatTask:
    """Picklable description of one Section VI-B repeat."""

    cfg: NodeConfig
    seed: int
    app_name: str
    p_cap: float
    uncapped_window: float
    capped_window: float
    warmup: float
    app_kwargs: dict | None
    firmware_kwargs: dict | None


def _delta_repeat(task: _DeltaRepeatTask) -> tuple[float, float]:
    """Execute one repeat; module-level so a process pool can import it.

    Returns ``(uncapped rate, capped rate)``. Workers rebuild the whole
    stack from the task's plain data, so this function is the unit of
    work for both the serial path and the process pool.
    """
    total = task.uncapped_window + task.capped_window
    tb = Testbed(cfg=task.cfg, seed=task.seed)
    result = tb.run(
        task.app_name,
        duration=total,
        schedule=FixedCapSchedule(task.p_cap, start=task.uncapped_window),
        app_kwargs=task.app_kwargs,
        firmware_kwargs=task.firmware_kwargs,
    )
    # Zeros are averaged in: for coarse reporters (OpenMC's ~1 batch/s)
    # empty 1 Hz buckets are how a sub-1/s rate shows up, and dropping
    # them would bias the mean to exactly one batch per bucket. The
    # protocol therefore runs the app with a lossless transport.
    r_un = result.steady_progress(task.warmup, task.uncapped_window,
                                  ignore_zeros=False)
    r_cap = result.steady_progress(task.uncapped_window + task.warmup,
                                   total + 1e-9, ignore_zeros=False)
    return r_un, r_cap
