"""JSON persistence for run telemetry.

A :class:`~repro.experiments.harness.RunResult` holds everything a run
measured; saving it lets analysis happen offline (or be diffed across
library versions). The format is deliberately plain JSON — one object
with named series as ``{"times": [...], "values": [...]}`` pairs — so
any toolchain can consume it.

Counters and the live application object are summarized rather than
serialized (MIPS/MPO and app metadata), keeping files small and the
format stable.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import RunResult

__all__ = ["save_run", "load_run", "LoadedRun"]

_FORMAT_VERSION = 1


def _series_to_obj(series: TimeSeries) -> dict:
    return {"times": list(series.times), "values": list(series.values)}


def _series_from_obj(name: str, obj: dict) -> TimeSeries:
    return TimeSeries(name, zip(obj["times"], obj["values"]))


def save_run(result: "RunResult", path: str | os.PathLike) -> str:
    """Write a run's telemetry to ``path`` as JSON; returns the path."""
    try:
        mips = result.mips()
    except Exception:
        mips = None
    try:
        mpo = result.mpo()
    except Exception:
        mpo = None
    payload = {
        "format_version": _FORMAT_VERSION,
        "app_name": result.app_name,
        "seed": result.seed,
        "duration": result.duration,
        "pkg_energy_j": result.pkg_energy,
        "mips": mips,
        "mpo": mpo,
        "app": {
            "category": result.app.spec.category_label,
            "metric": (result.app.spec.metric.name
                       if result.app.spec.metric else None),
            "n_workers": result.app.n_workers,
        },
        "series": {
            "progress": _series_to_obj(result.progress),
            "power": _series_to_obj(result.power),
            "frequency": _series_to_obj(result.frequency),
            "duty": _series_to_obj(result.duty),
            "uncore_power": _series_to_obj(result.uncore_power),
            "cap": _series_to_obj(result.cap),
        },
        "topics": {t: _series_to_obj(s) for t, s in result.topics.items()},
    }
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return path


class LoadedRun:
    """Telemetry loaded back from :func:`save_run` output.

    Mirrors the series-level surface of ``RunResult`` (the live app and
    counter bank are not reconstructed).
    """

    def __init__(self, payload: dict) -> None:
        if payload.get("format_version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported run-file version: {payload.get('format_version')!r}"
            )
        self.app_name: str = payload["app_name"]
        self.seed: int = payload["seed"]
        self.duration: float = payload["duration"]
        self.pkg_energy: float = payload["pkg_energy_j"]
        self.mips = payload["mips"]
        self.mpo = payload["mpo"]
        self.app_meta: dict = payload["app"]
        series = payload["series"]
        self.progress = _series_from_obj("progress", series["progress"])
        self.power = _series_from_obj("power", series["power"])
        self.frequency = _series_from_obj("frequency", series["frequency"])
        self.duty = _series_from_obj("duty", series["duty"])
        self.uncore_power = _series_from_obj("uncore-power",
                                             series["uncore_power"])
        self.cap = _series_from_obj("cap", series["cap"])
        self.topics = {t: _series_from_obj(t, obj)
                       for t, obj in payload["topics"].items()}


def load_run(path: str | os.PathLike) -> LoadedRun:
    """Load telemetry previously written by :func:`save_run`."""
    with open(os.fspath(path), encoding="utf-8") as fh:
        payload = json.load(fh)
    return LoadedRun(payload)
