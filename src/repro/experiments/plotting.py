"""Dependency-free ASCII plotting for figure artifacts.

The benchmark artifacts are plain text; these helpers render the
paper-figure *shapes* (measured-vs-predicted curves, technique
comparisons) as character plots so a reproduction run can be eyeballed
without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Series", "ascii_plot"]


@dataclass(frozen=True)
class Series:
    """One plotted line: points plus the marker character."""

    label: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]
    marker: str = "o"

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or not self.xs:
            raise ConfigurationError(
                f"series {self.label!r} needs equal-length, non-empty x/y"
            )
        if len(self.marker) != 1:
            raise ConfigurationError("marker must be a single character")


def ascii_plot(series: list[Series], *, width: int = 64, height: int = 18,
               xlabel: str = "", ylabel: str = "",
               title: str = "") -> str:
    """Scatter/line plot of one or more series on shared axes.

    Characters are placed on a ``width x height`` grid scaled to the
    combined data range; later series overwrite earlier ones where they
    collide. Returns the plot with a legend, axis ranges and labels.
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    if width < 8 or height < 4:
        raise ConfigurationError("plot must be at least 8x4")

    all_x = np.concatenate([np.asarray(s.xs, dtype=float) for s in series])
    all_y = np.concatenate([np.asarray(s.ys, dtype=float) for s in series])
    if not (np.all(np.isfinite(all_x)) and np.all(np.isfinite(all_y))):
        raise ConfigurationError("plot data must be finite")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s in series:
        for x, y in zip(s.xs, s.ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = s.marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    margin = max(len(y_hi_label), len(y_lo_label), len(ylabel)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_label.rjust(margin)
        elif i == height - 1:
            prefix = y_lo_label.rjust(margin)
        elif i == height // 2 and ylabel:
            prefix = ylabel.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * (margin + 2) + x_axis)
    if xlabel:
        lines.append(" " * (margin + 2) + xlabel.center(width))
    legend = "   ".join(f"{s.marker} = {s.label}" for s in series)
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)
