"""Plain-text rendering for experiment results.

Every experiment's ``render()`` uses these helpers so the regenerated
tables/series read like the paper's, and EXPERIMENTS.md can be assembled
from the same strings the benchmarks print.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.telemetry.timeseries import TimeSeries

__all__ = ["ascii_table", "sparkline", "series_block", "fmt"]

_SPARK = "▁▂▃▄▅▆▇█"


def fmt(value, precision: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, bool):
        return "Y" if value else "N"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:,.{precision}g}"
    return str(value)


def ascii_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a left-aligned ASCII table with a rule under the header."""
    if not headers:
        raise ConfigurationError("table needs headers")
    cells = [[fmt(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def sparkline(series: TimeSeries, width: int = 60) -> str:
    """Unicode sparkline of a series (resampled to ``width`` buckets)."""
    if series.is_empty():
        return "(empty)"
    values = series.values
    if len(values) > width:
        # simple decimation by averaging consecutive chunks
        import numpy as np

        chunks = np.array_split(values, width)
        values = np.array([c.mean() for c in chunks])
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        return _SPARK[0] * len(values)
    idx = ((values - lo) / (hi - lo) * (len(_SPARK) - 1)).round().astype(int)
    return "".join(_SPARK[i] for i in idx)


def series_block(name: str, series: TimeSeries, unit: str = "",
                 width: int = 60) -> str:
    """A labelled sparkline with min/mean/max, for figure renders."""
    if series.is_empty():
        return f"{name}: (no samples)"
    unit_sfx = f" {unit}" if unit else ""
    return (
        f"{name}: min={fmt(series.min())} mean={fmt(series.mean())} "
        f"max={fmt(series.max())}{unit_sfx}\n  {sparkline(series, width)}"
    )
