"""Table I — MIPS is not correlated with online performance.

Runs the Listing-1 example with both ``do_work`` variants on 24 ranks
and reports both online-performance definitions next to the MIPS
reading. The reproduction criterion: Definition 1 stays at ~1
iteration/s for both variants, Definition 2 halves for the unbalanced
variant (half the work units are performed), while MIPS *explodes* by
roughly 20x because waiting ranks busy-poll the barrier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.progress import steady_rate
from repro.experiments.harness import Testbed
from repro.experiments.report import ascii_table

__all__ = ["Table1Row", "Table1Result", "run", "render"]

#: Paper values for reference (24 processes).
PAPER = {
    "do_equal_work": dict(def1=0.998, def2=4_800_000, mips=4_115.5),
    "do_unequal_work": dict(def1=0.998, def2=2_400_000, mips=79_724.1),
}


@dataclass(frozen=True)
class Table1Row:
    n_procs: int
    routine: str
    def1_iterations_per_s: float
    def2_work_units_per_s: float
    mips: float


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]

    @property
    def mips_inflation(self) -> float:
        """Unequal-work MIPS over equal-work MIPS (paper: ~19x)."""
        by_routine = {r.routine: r for r in self.rows}
        return (by_routine["do_unequal_work"].mips
                / by_routine["do_equal_work"].mips)


def run(n_procs: int = 24, n_iterations: int = 5, seed: int = 0,
        testbed: Testbed | None = None) -> Table1Result:
    """Execute both Listing-1 variants and collect the table rows."""
    tb = testbed or Testbed(seed=seed)
    rows = []
    for equal in (True, False):
        result = tb.run(
            "imbalance",
            app_kwargs={"equal": equal, "n_iterations": n_iterations,
                        "n_workers": n_procs},
        )
        routine = "do_equal_work" if equal else "do_unequal_work"
        rows.append(Table1Row(
            n_procs=n_procs,
            routine=routine,
            def1_iterations_per_s=steady_rate(
                result.topics["progress/imbalance/iterations"],
                warmup=0.0, ignore_zeros=True),
            def2_work_units_per_s=steady_rate(
                result.topics["progress/imbalance/work_units"],
                warmup=0.0, ignore_zeros=True),
            mips=result.mips(),
        ))
    return Table1Result(rows=tuple(rows))


def render(result: Table1Result) -> str:
    """ASCII rendering in the paper's column order."""
    table = ascii_table(
        ["No. of MPI Processes", "do_work Routine",
         "Def 1 (iterations/s)", "Def 2 (work units/s)", "MIPS"],
        [[r.n_procs, r.routine, round(r.def1_iterations_per_s, 3),
          round(r.def2_work_units_per_s), round(r.mips, 1)]
         for r in result.rows],
        title="Table I: Correlation between MIPS and online performance",
    )
    return table + (
        f"\n\nMIPS inflation from load imbalance: "
        f"{result.mips_inflation:.1f}x (paper: ~19.4x)"
    )
