"""Table II — description of applications.

Regenerated from the application registry so the table provably matches
what the library actually implements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import available, get_spec
from repro.experiments.report import ascii_table

__all__ = ["Table2Result", "run", "render"]

#: The applications Table II lists, in the paper's order.
PAPER_APPS = ("qmcpack", "openmc", "amg", "lammps", "candle", "stream",
              "urban", "nek5000", "hacc")


@dataclass(frozen=True)
class Table2Result:
    descriptions: tuple[tuple[str, str], ...]   # (app, description)


def run() -> Table2Result:
    """Collect (application, description) pairs from the registry."""
    missing = [a for a in PAPER_APPS if a not in available()]
    assert not missing, f"registry is missing paper apps: {missing}"
    return Table2Result(
        descriptions=tuple(
            (name, get_spec(name).description) for name in PAPER_APPS
        )
    )


def render(result: Table2Result) -> str:
    return ascii_table(
        ["Application", "Description"],
        [[name.upper(), desc] for name, desc in result.descriptions],
        title="Table II: Description of applications",
    )
