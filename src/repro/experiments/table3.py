"""Table III — questions posed to application specialists."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.survey import QUESTIONS
from repro.experiments.report import ascii_table

__all__ = ["Table3Result", "run", "render"]


@dataclass(frozen=True)
class Table3Result:
    questions: tuple[str, ...]


def run() -> Table3Result:
    return Table3Result(questions=QUESTIONS)


def render(result: Table3Result) -> str:
    return ascii_table(
        ["Question Number", "Question"],
        [[i + 1, q] for i, q in enumerate(result.questions)],
        title="Table III: Questions posed to application specialists",
    )
