"""Table IV — summary of specialist responses.

Also cross-checks the responses against the implemented application
specs (the resource-bound answer must match what the synthetic kernels
actually stress), so drift between the survey data and the apps fails
loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import get_spec
from repro.core.survey import RESPONSES, SurveyResponse
from repro.exceptions import ConfigurationError
from repro.experiments.report import ascii_table
from repro.experiments.table2 import PAPER_APPS

__all__ = ["Table4Result", "run", "render"]


@dataclass(frozen=True)
class Table4Result:
    responses: tuple[SurveyResponse, ...]


def run(check_consistency: bool = True) -> Table4Result:
    """Collect the Table IV rows (paper app order), optionally verifying
    them against the implemented app specs."""
    rows = tuple(RESPONSES[name] for name in PAPER_APPS)
    if check_consistency:
        for row in rows:
            spec = get_spec(row.app)
            if spec.resource_bound != row.q8_resource:
                raise ConfigurationError(
                    f"{row.app}: survey says {row.q8_resource!r} but the "
                    f"implementation stresses {spec.resource_bound!r}"
                )
            if row.q1_has_fom != spec.has_fom:
                raise ConfigurationError(
                    f"{row.app}: survey FOM answer {row.q1_has_fom} does "
                    f"not match the spec ({spec.has_fom})"
                )
    return Table4Result(responses=rows)


def render(result: Table4Result) -> str:
    return ascii_table(
        ["Application", "1", "2", "3", "4", "5", "6", "7", "8"],
        [[r.app.upper(), *r.answers()] for r in result.responses],
        title="Table IV: Summary of responses",
    )
