"""Table V — categorizing applications and defining online performance.

The category column is *derived* by running the rule-based categorizer
over the Table IV survey answers; the metric column comes from the
implemented application specs. Nothing here is hard-coded to the paper's
table — the test suite asserts the derivation reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import get_spec
from repro.core.survey import category_label
from repro.experiments.report import ascii_table
from repro.experiments.table2 import PAPER_APPS

__all__ = ["Table5Result", "run", "render", "PAPER"]

#: The paper's Table V, for comparison in tests and EXPERIMENTS.md.
PAPER = {
    "qmcpack": ("1", "Blocks per second"),
    "openmc": ("1", "Particles per second"),
    "amg": ("2", "Conjugate gradient iterations per second"),
    "lammps": ("1", "Atom timesteps per second"),
    "candle": ("1/2", "Epochs per second (training phase)"),
    "stream": ("1", "Iterations per second"),
    "urban": ("3", "N/A"),
    "nek5000": ("3", "N/A"),
    "hacc": ("3", "N/A"),
}


@dataclass(frozen=True)
class Table5Row:
    app: str
    category: str
    metric: str


@dataclass(frozen=True)
class Table5Result:
    rows: tuple[Table5Row, ...]

    def matches_paper(self) -> bool:
        """True when every derived row equals the paper's Table V."""
        return all(
            PAPER[r.app] == (r.category, r.metric) for r in self.rows
        )


def run() -> Table5Result:
    rows = []
    for name in PAPER_APPS:
        spec = get_spec(name)
        metric = spec.metric.name if spec.metric is not None else "N/A"
        rows.append(Table5Row(app=name, category=category_label(name),
                              metric=metric))
    return Table5Result(rows=tuple(rows))


def render(result: Table5Result) -> str:
    table = ascii_table(
        ["Application", "Category", "Online performance Metric"],
        [[r.app.upper(), r.category, r.metric] for r in result.rows],
        title="Table V: Categorizing applications and defining online "
              "performance",
    )
    status = "matches" if result.matches_paper() else "DIFFERS FROM"
    return table + f"\n\nDerived categorization {status} the paper's Table V."
