"""Table VI — measured beta and MPO metrics.

Runs each characterized application at 3300 MHz and 1600 MHz (userspace
DVFS pin, Section IV-A protocol) on the phase the paper characterizes —
QMCPACK's DMC, OpenMC's active batches, AMG's solve — and reports beta
from the execution-time ratio and MPO from the PAPI-style counters.

Reproduction criterion (shape): the beta ordering LAMMPS > OpenMC >
QMCPACK > AMG > STREAM with MPO anti-correlated, and each value within a
few hundredths / a few percent of the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import CharacterizationResult, Testbed
from repro.experiments.report import ascii_table

__all__ = ["Table6Result", "run", "render", "PAPER", "APP_SIZING"]

#: Paper values: app -> (beta, MPO).
PAPER = {
    "qmcpack": (0.84, 3.91e-3),
    "openmc": (0.93, 0.20e-3),
    "amg": (0.52, 30.1e-3),
    "lammps": (1.00, 0.32e-3),
    "stream": (0.37, 50.9e-3),
}

#: Phase-isolating sizings (the paper characterizes QMCPACK's DMC,
#: OpenMC's active phase, and AMG's solve).
APP_SIZING = {
    "qmcpack": {"vmc1_blocks": 0, "vmc2_blocks": 0, "dmc_blocks": 160},
    "openmc": {"inactive_batches": 0, "active_batches": 12},
    "amg": {"n_iterations": 30, "setup_iterations": 0},
    "lammps": {"n_steps": 200},
    "stream": {"n_iterations": 160},
}

#: Display label per app, matching the paper's row names.
LABELS = {
    "qmcpack": "QMCPACK (DMC)",
    "openmc": "OpenMC (Active)",
    "amg": "AMG",
    "lammps": "LAMMPS",
    "stream": "STREAM",
}


@dataclass(frozen=True)
class Table6Result:
    characterizations: tuple[CharacterizationResult, ...]

    def beta_ordering_matches_paper(self) -> bool:
        """Beta must order the apps the same way the paper's does."""
        ours = sorted(self.characterizations, key=lambda c: c.beta,
                      reverse=True)
        paper = sorted(PAPER, key=lambda a: PAPER[a][0], reverse=True)
        return [c.app_name for c in ours] == paper


def run(seed: int = 0, scale: float = 1.0,
        testbed: Testbed | None = None) -> Table6Result:
    """Characterize all five apps; ``scale`` multiplies the iteration
    counts (1.0 is already statistically stable — the engine is exact)."""
    tb = testbed or Testbed(seed=seed)
    out = []
    for app, sizing in APP_SIZING.items():
        kwargs = {
            k: (max(1, int(v * scale)) if v else v)
            for k, v in sizing.items()
        }
        out.append(tb.characterize(app, app_kwargs=kwargs))
    return Table6Result(characterizations=tuple(out))


def render(result: Table6Result) -> str:
    rows = []
    for c in result.characterizations:
        beta_p, mpo_p = PAPER[c.app_name]
        rows.append([
            LABELS[c.app_name],
            f"{c.beta:.2f}", f"{beta_p:.2f}",
            f"{c.mpo * 1e3:.2f}", f"{mpo_p * 1e3:.2f}",
        ])
    table = ascii_table(
        ["Application", "beta (measured)", "beta (paper)",
         "MPO x1e-3 (measured)", "MPO x1e-3 (paper)"],
        rows,
        title="Table VI: beta and MPO metrics for selected applications",
    )
    ordering = ("preserved" if result.beta_ordering_matches_paper()
                else "NOT PRESERVED")
    return table + f"\n\nPaper's beta ordering {ordering}."
