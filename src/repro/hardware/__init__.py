"""Simulated power-manageable compute node.

This subpackage emulates the hardware substrate of the paper's testbed — a
Chameleon ``compute_skylake`` node (2x Intel Xeon Gold 6126, 24 physical
cores, hyperthreading off) — at the level of detail power-management
software can observe and control:

* :mod:`repro.hardware.config` — physical description of the node,
* :mod:`repro.hardware.cpu` / :mod:`repro.hardware.memory` — per-core DVFS /
  duty-cycle state and a shared, contended memory subsystem,
* :mod:`repro.hardware.power` — a physically-motivated package power model
  (static + dynamic core power with a voltage/frequency curve, traffic-
  driven uncore power),
* :mod:`repro.hardware.counters` — PAPI-like hardware event counters,
* :mod:`repro.hardware.msr` / :mod:`repro.hardware.msr_safe` — model-specific
  registers with Intel RAPL bit-field semantics and the msr-safe whitelist,
* :mod:`repro.hardware.rapl` — the RAPL firmware feedback controller,
* :mod:`repro.hardware.dvfs` / :mod:`repro.hardware.ddcm` — direct software
  control knobs used for the paper's Figure 5 comparison.
"""

from repro.hardware.config import NodeConfig, skylake_config
from repro.hardware.node import SimulatedNode

__all__ = ["NodeConfig", "skylake_config", "SimulatedNode"]
