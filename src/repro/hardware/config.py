"""Physical description of the simulated node.

All units are SI: frequencies in Hz, power in watts, bandwidth in bytes per
second, time in seconds. The default values (:func:`skylake_config`) are
calibrated so that a 24-core compute-bound workload draws roughly 155 W of
package power uncapped and a bandwidth-saturating workload roughly 115 W —
in the same regime as the paper's dual-socket Xeon Gold 6126 testbed (the
two sockets are folded into a single symmetric 24-core package; the paper
applies identical caps to both sockets, so the fold preserves behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.kernels import voltage_curve

__all__ = ["NodeConfig", "skylake_config"]


def _default_ladder() -> tuple[float, ...]:
    # 1.2 GHz .. 3.3 GHz in 100 MHz steps (P-states), then turbo bins up
    # to 3.7 GHz. The paper's "nominal maximum" is 3.3 GHz.
    base = [round(f, 1) * 1e9 for f in np.arange(1.2, 3.3001, 0.1)]
    turbo = [3.4e9, 3.5e9, 3.6e9, 3.7e9]
    return tuple(base + turbo)


def _default_duty_levels() -> tuple[float, ...]:
    # Intel clock-modulation steps: 12.5 % .. 100 % in 1/8 increments,
    # ordered from most throttled to unthrottled.
    return tuple(i / 8.0 for i in range(1, 9))


@dataclass(frozen=True)
class NodeConfig:
    """Immutable physical parameters of a simulated node.

    Attributes
    ----------
    n_cores:
        Number of physical cores (hyperthreading is not modelled, matching
        the paper's setup where it was disabled).
    freq_ladder:
        Available core frequencies in Hz, ascending. Frequencies above
        ``f_nominal`` are turbo bins (opportunistic, power permitting).
    f_nominal:
        Nominal maximum (non-turbo) frequency — the paper's ``f_max``.
    f_beta_low:
        The low frequency used by the paper to measure the beta metric
        (1600 MHz).
    v_min, v_knee_freq, v_nominal, v_slope_linear:
        Voltage/frequency curve: V = ``v_min`` below ``v_knee_freq``,
        then ``v_min + a1*x + a2*x**2`` with ``x = f - v_knee_freq``,
        ``a1 = v_slope_linear`` and ``a2`` chosen so V(f_nominal) =
        ``v_nominal``; the curve extrapolates smoothly into the turbo
        range. The floor and the convexity make the effective alpha
        (P proportional to f**alpha) drift from ~1 at the bottom of the
        ladder through ~2.3 midrange to ~3.5 near turbo — the paper fixes
        alpha = 2 and reports the real value varying between 1 and 4;
        this drift is a root cause of its model error.
    c_dyn:
        Per-core dynamic power coefficient: P_dyn = c_dyn * V^2 * f *
        activity (watts).
    leak_per_volt:
        Per-core static/leakage power per volt: P_static = leak_per_volt * V.
    stall_activity:
        Fraction of full dynamic activity a core burns while stalled on
        memory. Deliberately high (0.9): memory-bound codes keep the
        pipeline, prefetchers and load/store machinery busy, so their
        per-core power is only slightly below a compute-bound code's —
        while their traffic additionally loads the uncore. Under an
        identical package cap the uncore share leaves less for the cores,
        so RAPL settles memory-bound workloads at a *lower* frequency:
        the paper's Fig. 2 "application-aware" behaviour, emergent.
    spin_activity, spin_ipc:
        Activity factor and instructions-per-cycle of a busy-wait spin loop
        (MPI barrier polling).
    sleep_activity:
        Activity factor of a core sleeping in an OS idle state (usleep).
    mem_bandwidth:
        Node-level sustainable memory bandwidth (bytes/s).
    core_link_bandwidth:
        Maximum bandwidth a single core can draw (bytes/s).
    uncore_base:
        Traffic-independent uncore power (watts).
    uncore_per_bw:
        Uncore power per unit memory traffic (watts per byte/s).
    dram_base, dram_per_bw:
        DRAM-domain power model (reported via RAPL's DRAM domain; not
        included in the package domain, as on real Skylake).
    cache_line:
        Bytes per last-level-cache line (used to derive L3 miss counts).
    duty_levels:
        Available clock-modulation duty cycles, ascending (most throttled
        first). Duty gates the core clock, which throttles *both* compute
        and the core's ability to issue memory requests — the mechanism by
        which RAPL hurts memory-bound codes more than a pure-DVFS model
        predicts (paper Fig. 4d / Fig. 5).
    tdp:
        Package thermal design power — the default (uncapped) RAPL limit.
    energy_unit:
        RAPL energy counter granularity in joules (2^-14 J on real
        hardware, exposed via MSR_RAPL_POWER_UNIT).
    power_unit:
        RAPL power-limit granularity in watts (2^-3 W = 0.125 W).
    time_unit:
        RAPL time-window granularity in seconds (2^-10 s).
    """

    n_cores: int = 24
    freq_ladder: tuple[float, ...] = field(default_factory=_default_ladder)
    f_nominal: float = 3.3e9
    f_beta_low: float = 1.6e9
    v_min: float = 0.70
    v_knee_freq: float = 1.7e9
    v_nominal: float = 1.15
    v_slope_linear: float = 1.2e-10
    c_dyn: float = 1.1e-9
    leak_per_volt: float = 0.78
    stall_activity: float = 0.90
    spin_activity: float = 0.70
    spin_ipc: float = 2.0
    sleep_activity: float = 0.02
    mem_bandwidth: float = 200e9
    core_link_bandwidth: float = 12e9
    uncore_base: float = 8.0
    uncore_per_bw: float = 1.0e-10
    dram_base: float = 3.0
    dram_per_bw: float = 2.0e-10
    cache_line: int = 64
    duty_levels: tuple[float, ...] = field(default_factory=_default_duty_levels)
    tdp: float = 165.0
    energy_unit: float = 2.0**-14
    power_unit: float = 2.0**-3
    time_unit: float = 2.0**-10

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"n_cores must be >= 1, got {self.n_cores}")
        if len(self.freq_ladder) < 2:
            raise ConfigurationError("freq_ladder needs at least two steps")
        if list(self.freq_ladder) != sorted(self.freq_ladder):
            raise ConfigurationError("freq_ladder must be ascending")
        if any(f <= 0 for f in self.freq_ladder):
            raise ConfigurationError("frequencies must be positive")
        if self.f_nominal not in self.freq_ladder:
            raise ConfigurationError(
                f"f_nominal {self.f_nominal} must be a ladder step"
            )
        if not self.freq_ladder[0] <= self.f_beta_low <= self.f_nominal:
            raise ConfigurationError("f_beta_low must lie within the ladder")
        for name in ("v_min", "v_nominal", "c_dyn", "leak_per_volt",
                     "mem_bandwidth", "core_link_bandwidth", "tdp",
                     "energy_unit", "power_unit", "time_unit"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.v_nominal < self.v_min:
            raise ConfigurationError("v_nominal must be >= v_min")
        for name in ("stall_activity", "spin_activity", "sleep_activity"):
            val = getattr(self, name)
            if not 0.0 <= val <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {val}")
        if not self.duty_levels or list(self.duty_levels) != sorted(self.duty_levels):
            raise ConfigurationError("duty_levels must be non-empty ascending")
        if not 0.0 < self.duty_levels[0] <= 1.0 or self.duty_levels[-1] != 1.0:
            raise ConfigurationError("duty_levels must lie in (0, 1] and end at 1.0")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def f_min(self) -> float:
        """Lowest available core frequency (Hz)."""
        return self.freq_ladder[0]

    @property
    def f_turbo(self) -> float:
        """Highest available core frequency (Hz), including turbo."""
        return self.freq_ladder[-1]

    @property
    def nominal_index(self) -> int:
        """Index of ``f_nominal`` within the ladder."""
        return self.freq_ladder.index(self.f_nominal)

    def voltage(self, freq: float) -> float:
        """Core supply voltage at frequency ``freq``.

        Flat at ``v_min`` below the knee, then quadratic in
        ``f - v_knee_freq`` with linear coefficient ``v_slope_linear`` and
        the quadratic coefficient pinned so that V(``f_nominal``) equals
        ``v_nominal``; turbo frequencies extrapolate the same curve.
        """
        if freq <= 0:
            raise ConfigurationError(f"frequency must be positive, got {freq}")
        if freq <= self.v_knee_freq:
            return self.v_min
        return voltage_curve(freq, self.v_min, self.v_knee_freq,
                             self.f_nominal, self.v_nominal,
                             self.v_slope_linear)

    def ladder_index(self, freq: float) -> int:
        """Index of the highest ladder step <= ``freq``.

        Raises :class:`ConfigurationError` when ``freq`` is below the
        bottom of the ladder.
        """
        if freq < self.freq_ladder[0]:
            raise ConfigurationError(
                f"{freq} Hz is below the minimum ladder frequency "
                f"{self.freq_ladder[0]} Hz"
            )
        idx = int(np.searchsorted(self.freq_ladder, freq, side="right")) - 1
        return idx


def skylake_config(**overrides) -> NodeConfig:
    """Default node configuration mirroring the paper's testbed.

    Keyword overrides are forwarded to :class:`NodeConfig`, e.g.
    ``skylake_config(n_cores=12)`` for a single-socket variant.
    """
    return NodeConfig(**overrides)
