"""PAPI-like hardware event counters.

The execution engine accrues three events per core while integrating work:

* ``PAPI_TOT_INS`` — instructions retired,
* ``PAPI_TOT_CYC`` — core clock cycles elapsed while the core was active,
* ``PAPI_L3_TCM`` — last-level cache misses (one per ``cfg.cache_line``
  bytes of memory traffic).

These are exactly the events the paper uses: MPO = L3_TCM / TOT_INS
(Section IV-A) and MIPS (Table I) derive from them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["EVENTS", "CounterSnapshot", "CounterBank"]

EVENTS: tuple[str, ...] = ("PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_L3_TCM")


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable per-core counter values at a point in simulated time."""

    time: float
    tot_ins: np.ndarray
    tot_cyc: np.ndarray
    l3_tcm: np.ndarray

    def total(self, event: str) -> float:
        """Node-wide sum for a PAPI event name."""
        return float(self._array(event).sum())

    def _array(self, event: str) -> np.ndarray:
        try:
            return {
                "PAPI_TOT_INS": self.tot_ins,
                "PAPI_TOT_CYC": self.tot_cyc,
                "PAPI_L3_TCM": self.l3_tcm,
            }[event]
        except KeyError:
            raise ConfigurationError(
                f"unknown event {event!r}; available: {EVENTS}"
            ) from None

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counter increments between ``earlier`` and this snapshot."""
        return CounterSnapshot(
            time=self.time - earlier.time,
            tot_ins=self.tot_ins - earlier.tot_ins,
            tot_cyc=self.tot_cyc - earlier.tot_cyc,
            l3_tcm=self.l3_tcm - earlier.l3_tcm,
        )

    def mips(self) -> float:
        """Million instructions per second over the snapshot's time span
        (meaningful on a delta snapshot, where ``time`` is the interval)."""
        if self.time <= 0:
            raise ConfigurationError("MIPS requires a delta with positive time")
        return self.total("PAPI_TOT_INS") / self.time / 1e6

    def mpo(self) -> float:
        """Misses per operation: L3_TCM / TOT_INS (the paper's MPO)."""
        ins = self.total("PAPI_TOT_INS")
        if ins <= 0:
            return 0.0
        return self.total("PAPI_L3_TCM") / ins


class CounterBank:
    """Mutable per-core counters, accrued by the engine."""

    def __init__(self, n_cores: int) -> None:
        if n_cores < 1:
            raise ConfigurationError(f"n_cores must be >= 1, got {n_cores}")
        self.n_cores = n_cores
        self._ins = np.zeros(n_cores)
        self._cyc = np.zeros(n_cores)
        self._l3 = np.zeros(n_cores)

    def accrue(self, core_id: int, *, instructions: float = 0.0,
               cycles: float = 0.0, l3_misses: float = 0.0) -> None:
        """Add event counts to one core (engine-internal)."""
        if instructions < 0 or cycles < 0 or l3_misses < 0:
            raise ConfigurationError("counter increments must be non-negative")
        self._ins[core_id] += instructions
        self._cyc[core_id] += cycles
        self._l3[core_id] += l3_misses

    def snapshot(self, time: float) -> CounterSnapshot:
        """Immutable copy of the current values, stamped with ``time``."""
        return CounterSnapshot(
            time=time,
            tot_ins=self._ins.copy(),
            tot_cyc=self._cyc.copy(),
            l3_tcm=self._l3.copy(),
        )

    def reset(self) -> None:
        """Zero all counters (e.g. between measurement windows)."""
        self._ins[:] = 0.0
        self._cyc[:] = 0.0
        self._l3[:] = 0.0

    # ``snapshot(time)`` above predates the checkpoint layer and returns
    # a CounterSnapshot, so the checkpoint protocol uses dump/load names.

    def dump_state(self) -> dict:
        """Picklable counter values (plain lists)."""
        return {"ins": self._ins.tolist(), "cyc": self._cyc.tolist(),
                "l3": self._l3.tolist()}

    def load_state(self, state: dict) -> None:
        """Reinstall :meth:`dump_state` output."""
        self._ins[:] = state["ins"]
        self._cyc[:] = state["cyc"]
        self._l3[:] = state["l3"]
