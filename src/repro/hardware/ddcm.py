"""Dynamic duty-cycle modulation (DDCM) knob.

Software interface to ``IA32_CLOCK_MODULATION``-style throttling
(Bhalachandra et al., IPDPSW 2015, cited by the paper). Duty gates the
core clock in 1/8 steps; because a gated core cannot issue memory
requests either, DDCM throttles memory-bound code harder than DVFS at
comparable power — one of the "additional means" the paper concludes
RAPL must be using (Section VI-B2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode

__all__ = ["DDCMController"]


class DDCMController:
    """Set the package duty cycle in hardware-supported steps."""

    def __init__(self, node: "SimulatedNode") -> None:
        self.node = node

    def set_level(self, level: int) -> float:
        """Select duty level by index (0 = most throttled); returns the
        applied duty fraction."""
        levels = self.node.cfg.duty_levels
        if not 0 <= level < len(levels):
            raise ConfigurationError(
                f"duty level {level} out of range 0..{len(levels) - 1}"
            )
        return self.node.set_duty(levels[level])

    def set_duty(self, duty: float) -> float:
        """Select the closest duty level at or below ``duty``."""
        return self.node.set_duty(duty)

    def set_core_duty(self, core_id: int, duty: float) -> float:
        """Per-core modulation (one logical processor's
        IA32_CLOCK_MODULATION), used to slow non-critical ranks without
        touching the critical path (Bhalachandra et al., cited by the
        paper)."""
        return self.node.set_core_duty(core_id, duty)

    def release(self) -> float:
        """Disable modulation (100 % duty)."""
        return self.node.set_duty(1.0)

    @property
    def duty(self) -> float:
        """Currently applied duty fraction."""
        return self.node.duty
