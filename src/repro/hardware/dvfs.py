"""Userspace DVFS knob.

Models the ``cpufreq`` userspace governor the paper uses to (a) measure
the beta metric at fixed 3300 / 1600 MHz and (b) compare DVFS against
RAPL as a power-limiting technique for STREAM (Fig. 5). Setting a
frequency here installs a *ceiling*: the RAPL firmware may still lower
the clock below it under a power cap, exactly as on real hardware where
RAPL overrides the governor's request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode

__all__ = ["DVFSController"]


class DVFSController:
    """Pin or bound the package frequency from software."""

    def __init__(self, node: "SimulatedNode") -> None:
        self.node = node

    def set_frequency(self, freq: float) -> float:
        """Userspace-governor style: request a fixed frequency. Installs
        it both as the ceiling and the current clock; returns the applied
        (ladder-snapped) frequency."""
        applied = self.node.set_freq_limit(freq)
        self.node.set_frequency(applied)
        return applied

    def release(self) -> None:
        """Remove the ceiling (back to ondemand/turbo behaviour)."""
        self.node.set_freq_limit(self.node.cfg.f_turbo)

    @property
    def frequency(self) -> float:
        """Currently applied package frequency (Hz)."""
        return self.node.frequency
