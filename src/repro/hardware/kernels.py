"""Pure, array-ready transfer functions shared by both node engines.

Every per-epoch formula of the node model — the V(f) curve, per-core
activity and power, uncore/DRAM traffic power, the RAPL EWMA and
throttle-step laws, bandwidth demand and max-min fair allocation — lives
here exactly once. The object engine (:mod:`repro.hardware.power`,
:mod:`repro.hardware.rapl`, :mod:`repro.runtime.engine`) calls these with
Python floats; the vectorized engine (:mod:`repro.vector`) calls the same
functions with numpy arrays. Because both paths execute the *same*
expressions in the *same* order, the formulas cannot drift apart — which
is what makes the vector engine's bit-parity guarantee possible at all
(see ``docs/VECTOR.md``).

Parity rules observed throughout:

* Expressions are plain ``+ - * /`` chains whose evaluation order is
  fixed by Python's left-associativity; IEEE-754 makes them bit-identical
  whether the operands are floats or float64 arrays.
* ``math.exp`` and ``numpy.exp`` are *different* libm entry points and
  differ in the last ulp. The RAPL EWMA historically used ``math.exp``;
  :func:`ewma_alpha` keeps that, and the array variant
  (:func:`ewma_alpha_array`) applies ``math.exp`` per element (memoised)
  rather than ``numpy.exp`` so the vector engine reproduces the firmware
  trajectory bit-for-bit.
* Reductions over cores are sequential in core order (see
  :func:`accumulate_core_power`); ``numpy.sum`` pairwise summation would
  reassociate and drift.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "voltage_curve",
    "busy_activity",
    "core_power",
    "uncore_power",
    "dram_power",
    "accumulate_core_power",
    "effective_clock",
    "standalone_time",
    "bandwidth_demand",
    "progress_rate",
    "compute_fraction",
    "fair_share_fill",
    "ewma_alpha",
    "ewma_alpha_array",
    "ewma_update",
    "THROTTLE_GAIN",
    "throttle_steps",
    "throttle_steps_array",
    "uncore_dvfs_scale",
    "uncore_dvfs_scale_array",
    "average_power",
]


# ----------------------------------------------------------------------
# Voltage / frequency
# ----------------------------------------------------------------------

def voltage_curve(freq, v_min, v_knee_freq, f_nominal, v_nominal,
                  v_slope_linear):
    """V(f) above the knee: quadratic in ``f - v_knee_freq`` with the
    curvature pinned so V(f_nominal) == v_nominal.

    The caller applies the ``v_min`` floor below the knee (a branch for
    scalars, ``numpy.where`` for arrays); this function is the shared
    polynomial both paths evaluate.
    """
    span = f_nominal - v_knee_freq
    a2 = (v_nominal - v_min - v_slope_linear * span) / span**2
    x = freq - v_knee_freq
    return v_min + v_slope_linear * x + a2 * x * x


def effective_clock(freq, duty):
    """Clock rate visible to software: ``freq * duty`` (Hz)."""
    return freq * duty


# ----------------------------------------------------------------------
# Per-core power
# ----------------------------------------------------------------------

def busy_activity(compute_frac, stall_activity):
    """Dynamic-activity factor of a BUSY core: full while retiring,
    ``stall_activity`` while stalled on memory."""
    return compute_frac + (1.0 - compute_frac) * stall_activity


def core_power(volt, freq, duty, activity, c_dyn, leak_per_volt):
    """Static + dynamic power of one core (watts)."""
    return leak_per_volt * volt + c_dyn * volt * volt * freq * duty * activity


def uncore_power(traffic, uncore_base, uncore_per_bw):
    """Traffic-dependent uncore power (watts)."""
    return uncore_base + uncore_per_bw * traffic


def dram_power(traffic, dram_base, dram_per_bw):
    """Traffic-dependent DRAM-domain power (watts)."""
    return dram_base + dram_per_bw * traffic


def accumulate_core_power(per_core_power, per_core_traffic):
    """Sequentially sum per-core power and traffic in core order.

    ``per_core_power``/``per_core_traffic`` are sequences whose elements
    are scalars (object engine) or per-node arrays (vector engine). The
    loop order matches ``PowerModel.sample``'s accumulation exactly, so
    the reduction is bit-identical between engines.
    """
    core_total = 0.0
    traffic = 0.0
    for p, b in zip(per_core_power, per_core_traffic):
        core_total = core_total + p
        traffic = traffic + b
    return core_total, traffic


# ----------------------------------------------------------------------
# Progress rates and memory contention
# ----------------------------------------------------------------------

def standalone_time(cycles, nbytes, clock, link):
    """Uncontended wall time of a work item: compute plus transfer."""
    return cycles / clock + nbytes / link


def bandwidth_demand(nbytes, standalone):
    """Bandwidth an item would consume if memory were uncontended."""
    return nbytes / standalone


def progress_rate(granted, nbytes):
    """Fraction of the work item completed per second at ``granted``."""
    return granted / nbytes


def compute_fraction(cycles, rate, clock):
    """Fraction of wall time spent retiring instructions (<= 1)."""
    return cycles * rate / clock


def fair_share_fill(remaining, n_left):
    """Per-round fair share of progressive filling."""
    return remaining / n_left


# ----------------------------------------------------------------------
# RAPL firmware laws
# ----------------------------------------------------------------------

def average_power(energy, last_energy, dt):
    """Average package power over an interval from the energy counter."""
    return (energy - last_energy) / dt


def ewma_alpha(dt, window):
    """EWMA gain of the PL1 window filter (scalar; uses ``math.exp``)."""
    return 1.0 - math.exp(-dt / max(window, dt))


def ewma_alpha_array(dt, window, _cache={}):
    """Element-wise :func:`ewma_alpha` for arrays.

    Applies ``math.exp`` per element (with memoisation — the firmware
    tick spacing takes only a handful of distinct float values per run)
    instead of ``numpy.exp``, which differs from ``math.exp`` in the last
    ulp and would make the vector firmware drift from the object one.
    """
    dt = np.asarray(dt, dtype=float)
    window = np.asarray(window, dtype=float)
    arg = -dt / np.maximum(window, dt)
    out = np.empty_like(arg)
    flat_arg = arg.ravel()
    flat_out = out.ravel()
    for i, a in enumerate(flat_arg.tolist()):
        got = _cache.get(a)
        if got is None:
            got = _cache[a] = math.exp(a)
            if len(_cache) > 4096:  # pragma: no cover - pathological inputs
                _cache.clear()
        flat_out[i] = got
    return 1.0 - out


def ewma_update(prev, avg, alpha):
    """One EWMA step: ``prev + alpha * (avg - prev)``."""
    return prev + alpha * (avg - prev)


#: Proportional gain of the RAPL step-down law (ladder steps per unit
#: fractional over-budget error).
THROTTLE_GAIN = 20


def throttle_steps(avg, cap, max_steps):
    """Ladder steps to drop when ``avg`` exceeds ``cap`` (scalar)."""
    error = (avg - cap) / cap
    return max(1, min(max_steps, int(error * THROTTLE_GAIN)))


def throttle_steps_array(avg, cap, max_steps):
    """Element-wise :func:`throttle_steps` (int array)."""
    error = (avg - cap) / cap
    steps = np.trunc(error * THROTTLE_GAIN)
    return np.maximum(1, np.minimum(max_steps, steps)).astype(np.int64)


def uncore_dvfs_scale(freq, f_nominal, min_scale):
    """Uncore clock scale while a cap is enforced (scalar)."""
    return min(1.0, max(min_scale, freq / f_nominal))


def uncore_dvfs_scale_array(freq, f_nominal, min_scale):
    """Element-wise :func:`uncore_dvfs_scale`."""
    return np.minimum(1.0, np.maximum(min_scale, freq / f_nominal))
