"""Shared-bandwidth memory subsystem with fair contention.

The node has a finite sustainable bandwidth (``cfg.mem_bandwidth``); each
core can draw at most ``cfg.core_link_bandwidth`` — further reduced by the
core's duty cycle, because clock modulation gates the core's ability to
*issue* memory requests (this is the mechanism by which RAPL's DDCM
fallback hurts memory-bound codes more than a DVFS-only model predicts;
see paper Fig. 4d and Fig. 5).

Allocation uses max-min fairness (progressive filling): demands below the
fair share are fully granted, the remaining capacity is split evenly among
the still-unsatisfied cores. For this fluid model the allocation is exact,
not iterative.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.kernels import fair_share_fill

__all__ = ["allocate_bandwidth"]


def allocate_bandwidth(demands, capacity: float):
    """Max-min fair allocation of ``capacity`` among ``demands``.

    Parameters
    ----------
    demands:
        1-D array-like of non-negative per-core bandwidth demands (bytes/s).
        A demand is what the core *would* consume if memory were
        uncontended (already clipped to its link bandwidth by the caller).
    capacity:
        Total node bandwidth (bytes/s), > 0.

    Returns
    -------
    numpy.ndarray
        Per-core grants, same order as ``demands``; ``grant <= demand``
        element-wise and ``sum(grant) <= capacity`` (within floating-point
        tolerance), with equality when demand exceeds capacity.
    """
    d = np.asarray(demands, dtype=float)
    if d.ndim != 1:
        raise ConfigurationError("demands must be one-dimensional")
    if np.any(d < 0) or not np.all(np.isfinite(d)):
        raise ConfigurationError("demands must be finite and non-negative")
    if not capacity > 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")

    total = d.sum()
    if total <= capacity:
        return d.copy()

    # Progressive filling: process demands in ascending order; every demand
    # below the running fair share is granted in full, the rest share what
    # remains equally.
    order = np.argsort(d, kind="stable")
    grants = np.empty_like(d)
    remaining = capacity
    n_left = len(d)
    for idx in order:
        fair = fair_share_fill(remaining, n_left)
        g = min(d[idx], fair)
        grants[idx] = g
        remaining -= g
        n_left -= 1
    return grants
