"""Model-specific registers with Intel RAPL bit-field semantics.

The registers, addresses, field layouts and units follow the Intel SDM
(vol. 4) closely enough that real libmsr-style code paths are exercised:

* ``MSR_RAPL_POWER_UNIT`` (0x606) — power / energy / time units as
  negative powers of two,
* ``MSR_PKG_POWER_LIMIT`` (0x610) — PL1/PL2 limit, enable, clamp and the
  ``2^Y * (1 + Z/4)`` time-window encoding, plus the lock bit,
* ``MSR_PKG_ENERGY_STATUS`` (0x611) / ``MSR_DRAM_ENERGY_STATUS`` (0x619)
  — 32-bit wrapping energy counters,
* ``MSR_PKG_POWER_INFO`` (0x614) — TDP,
* ``IA32_PERF_CTL`` (0x199) / ``IA32_PERF_STATUS`` (0x198) — requested /
  current P-state ratio (multiples of 100 MHz),
* ``IA32_CLOCK_MODULATION`` (0x19A) — on-demand duty-cycle throttling.

:class:`MSRDevice` binds the registers to a :class:`~repro.hardware.node.
SimulatedNode` and (optionally) a RAPL firmware controller, so that writes
to the power-limit register actually change capping behaviour and energy
reads reflect integrated simulation energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import (
    MSRAccessError,
    MSRError,
    check_snapshot_version,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode
    from repro.hardware.rapl import RaplFirmware

__all__ = [
    "MSR_RAPL_POWER_UNIT",
    "MSR_PKG_POWER_LIMIT",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_PKG_POWER_INFO",
    "MSR_DRAM_POWER_LIMIT",
    "MSR_DRAM_ENERGY_STATUS",
    "IA32_PERF_STATUS",
    "IA32_PERF_CTL",
    "IA32_CLOCK_MODULATION",
    "RaplUnits",
    "PowerLimit",
    "encode_units",
    "decode_units",
    "encode_time_window",
    "decode_time_window",
    "encode_power_limit",
    "decode_power_limit",
    "MSRDevice",
]

MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611
MSR_PKG_POWER_INFO = 0x614
MSR_DRAM_POWER_LIMIT = 0x618
MSR_DRAM_ENERGY_STATUS = 0x619
IA32_PERF_STATUS = 0x198
IA32_PERF_CTL = 0x199
IA32_CLOCK_MODULATION = 0x19A

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


@dataclass(frozen=True)
class RaplUnits:
    """RAPL units decoded from ``MSR_RAPL_POWER_UNIT``.

    Attributes hold the *granularity* in SI units: e.g. ``power = 0.125``
    means limits are expressed in 1/8-watt steps.
    """

    power: float = 2.0**-3
    energy: float = 2.0**-14
    time: float = 2.0**-10


def encode_units(units: RaplUnits) -> int:
    """Pack :class:`RaplUnits` into the 0x606 register layout."""
    pu = round(-math.log2(units.power))
    eu = round(-math.log2(units.energy))
    tu = round(-math.log2(units.time))
    for name, val, width in (("power", pu, 4), ("energy", eu, 5), ("time", tu, 4)):
        if not 0 <= val < (1 << width):
            raise MSRError(f"{name} unit exponent {val} does not fit {width} bits")
    return pu | (eu << 8) | (tu << 16)


def decode_units(value: int) -> RaplUnits:
    """Unpack the 0x606 register layout into :class:`RaplUnits`."""
    return RaplUnits(
        power=2.0 ** -(value & 0xF),
        energy=2.0 ** -((value >> 8) & 0x1F),
        time=2.0 ** -((value >> 16) & 0xF),
    )


def encode_time_window(seconds: float, time_unit: float) -> int:
    """Encode a time window as the 7-bit ``2^Y * (1 + Z/4)`` RAPL format.

    Returns ``Y | (Z << 5)``; picks the representable value closest to
    ``seconds`` (clipping to the representable range).
    """
    if seconds <= 0 or not math.isfinite(seconds):
        raise MSRError(f"time window must be positive and finite, got {seconds}")
    best = (0, 0)
    best_err = math.inf
    for y in range(32):
        for z in range(4):
            w = (2.0**y) * (1.0 + z / 4.0) * time_unit
            err = abs(w - seconds)
            if err < best_err:
                best_err = err
                best = (y, z)
    y, z = best
    return y | (z << 5)


def decode_time_window(bits: int, time_unit: float) -> float:
    """Decode the 7-bit RAPL time-window field into seconds."""
    y = bits & 0x1F
    z = (bits >> 5) & 0x3
    return (2.0**y) * (1.0 + z / 4.0) * time_unit


@dataclass(frozen=True)
class PowerLimit:
    """One decoded RAPL power-limit half (PL1 or PL2)."""

    watts: float
    enabled: bool
    clamped: bool
    window: float


def _encode_half(limit: PowerLimit, units: RaplUnits) -> int:
    raw = round(limit.watts / units.power)
    if not 0 <= raw < (1 << 15):
        raise MSRError(
            f"power limit {limit.watts} W does not fit 15 bits at "
            f"{units.power} W granularity"
        )
    bits = raw
    if limit.enabled:
        bits |= 1 << 15
    if limit.clamped:
        bits |= 1 << 16
    bits |= encode_time_window(limit.window, units.time) << 17
    return bits


def _decode_half(bits: int, units: RaplUnits) -> PowerLimit:
    return PowerLimit(
        watts=(bits & 0x7FFF) * units.power,
        enabled=bool(bits & (1 << 15)),
        clamped=bool(bits & (1 << 16)),
        window=decode_time_window((bits >> 17) & 0x7F, units.time),
    )


def encode_power_limit(pl1: PowerLimit, pl2: PowerLimit | None = None,
                       units: RaplUnits | None = None,
                       locked: bool = False) -> int:
    """Pack PL1 (and optionally PL2) into the 0x610 register layout."""
    units = units or RaplUnits()
    value = _encode_half(pl1, units)
    if pl2 is not None:
        value |= _encode_half(pl2, units) << 32
    if locked:
        value |= 1 << 63
    return value


def decode_power_limit(value: int, units: RaplUnits | None = None
                       ) -> tuple[PowerLimit, PowerLimit, bool]:
    """Unpack the 0x610 register into ``(PL1, PL2, locked)``."""
    units = units or RaplUnits()
    pl1 = _decode_half(value & _U32, units)
    pl2 = _decode_half((value >> 32) & 0x7FFFFFFF, units)
    return pl1, pl2, bool(value >> 63)


class MSRDevice:
    """The ``/dev/cpu/*/msr`` surface of the simulated node.

    Reads and writes are 64-bit, by register address. Registers with
    hardware behaviour (energy counters, power limits, P-state control,
    clock modulation) are wired to the node / RAPL firmware; everything
    else raises :class:`~repro.exceptions.MSRAccessError` like a real
    ``rdmsr`` of an unimplemented register would fault.
    """

    def __init__(self, node: "SimulatedNode",
                 firmware: "RaplFirmware | None" = None) -> None:
        self.node = node
        self.firmware = firmware
        cfg = node.cfg
        self.units = RaplUnits(power=cfg.power_unit, energy=cfg.energy_unit,
                               time=cfg.time_unit)
        self._perf_ctl = self._ratio_bits(cfg.f_nominal)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _ratio_bits(freq: float) -> int:
        # P-state ratio in multiples of 100 MHz, placed at bits 15:8.
        return (round(freq / 100e6) & 0xFF) << 8

    def _energy_bits(self, joules: float) -> int:
        return int(joules / self.units.energy) & _U32

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable register state (everything else derives from the
        node/firmware, which checkpoint themselves)."""
        return {"version": 1, "perf_ctl": self._perf_ctl}

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "MSRDevice")
        self._perf_ctl = state["perf_ctl"]

    # -- public API --------------------------------------------------------

    def read(self, addr: int) -> int:
        """``rdmsr``: return the 64-bit register value."""
        node = self.node
        if addr == MSR_RAPL_POWER_UNIT:
            return encode_units(self.units)
        if addr == MSR_PKG_ENERGY_STATUS:
            return self._energy_bits(node.pkg_energy)
        if addr == MSR_DRAM_ENERGY_STATUS:
            return self._energy_bits(node.dram_energy)
        if addr == MSR_PKG_POWER_INFO:
            return round(node.cfg.tdp / self.units.power) & 0x7FFF
        if addr == MSR_PKG_POWER_LIMIT:
            if self.firmware is None:
                return 0
            pl1 = PowerLimit(
                watts=self.firmware.limit,
                enabled=self.firmware.enabled,
                clamped=True,
                window=self.firmware.window,
            )
            pl2 = PowerLimit(
                watts=self.firmware.limit2,
                enabled=True,
                clamped=False,
                window=self.node.cfg.time_unit * 4,
            )
            return encode_power_limit(pl1, pl2, units=self.units)
        if addr == MSR_DRAM_POWER_LIMIT:
            if self.firmware is None or self.firmware.dram_limit is None:
                return 0
            limit = PowerLimit(watts=self.firmware.dram_limit, enabled=True,
                               clamped=False, window=0.001)
            return encode_power_limit(limit, units=self.units)
        if addr == IA32_PERF_CTL:
            return self._perf_ctl
        if addr == IA32_PERF_STATUS:
            return self._ratio_bits(node.frequency)
        if addr == IA32_CLOCK_MODULATION:
            duty = node.duty
            if duty >= 1.0:
                return 0
            # enable bit 4 + 3-bit level in bits 3:1 (level/8 duty)
            level = max(1, round(duty * 8))
            return (1 << 4) | (level << 1)
        raise MSRAccessError(f"rdmsr: unimplemented MSR {addr:#x}")

    def write(self, addr: int, value: int) -> None:
        """``wrmsr``: set a 64-bit register value, applying side effects."""
        if not 0 <= value <= _U64:
            raise MSRError(f"wrmsr value {value!r} is not a u64")
        node = self.node
        if addr == MSR_PKG_POWER_LIMIT:
            if self.firmware is None:
                raise MSRError("no RAPL firmware attached to this device")
            pl1, pl2, _locked = decode_power_limit(value, self.units)
            if pl1.enabled:
                self.firmware.set_limit(pl1.watts, window=pl1.window)
            else:
                self.firmware.disable()
            if pl2.enabled and pl2.watts > 0:
                self.firmware.set_limit2(pl2.watts)
            return
        if addr == MSR_DRAM_POWER_LIMIT:
            if self.firmware is None:
                raise MSRError("no RAPL firmware attached to this device")
            pl1, _pl2, _locked = decode_power_limit(value, self.units)
            self.firmware.set_dram_limit(pl1.watts if pl1.enabled else None)
            return
        if addr == IA32_PERF_CTL:
            self._perf_ctl = value & 0xFFFF
            ratio = (value >> 8) & 0xFF
            if ratio:
                node.set_freq_limit(ratio * 100e6)
            return
        if addr == IA32_CLOCK_MODULATION:
            if value & (1 << 4):
                level = (value >> 1) & 0x7
                node.set_duty(max(level, 1) / 8.0)
            else:
                node.set_duty(1.0)
            return
        if addr in (MSR_RAPL_POWER_UNIT, MSR_PKG_ENERGY_STATUS,
                    MSR_DRAM_ENERGY_STATUS, MSR_PKG_POWER_INFO,
                    IA32_PERF_STATUS):
            raise MSRError(f"wrmsr: MSR {addr:#x} is read-only")
        raise MSRAccessError(f"wrmsr: unimplemented MSR {addr:#x}")
