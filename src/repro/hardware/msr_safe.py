"""msr-safe: whitelist-enforced MSR access.

Mirrors LLNL's `msr-safe <https://github.com/LLNL/msr-safe>`_ kernel
module, which the paper uses (via libmsr) to read and write RAPL
registers without root access: every register has an entry in a whitelist
mapping its address to a *write mask*; reads of listed registers are
allowed, writes are ANDed with the mask and rejected entirely when the
mask is zero.
"""

from __future__ import annotations

from repro.exceptions import MSRPermissionError, check_snapshot_version
from repro.hardware.msr import (
    IA32_CLOCK_MODULATION,
    IA32_PERF_CTL,
    IA32_PERF_STATUS,
    MSR_DRAM_ENERGY_STATUS,
    MSR_DRAM_POWER_LIMIT,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_INFO,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    MSRDevice,
)

__all__ = ["DEFAULT_WHITELIST", "MSRSafe"]

_U64 = (1 << 64) - 1

#: Default whitelist, modelled on the stock msr-safe allowlist for
#: Skylake-SP: RAPL unit/info/energy registers are read-only (mask 0),
#: power limits and the throttling knobs are writable.
DEFAULT_WHITELIST: dict[int, int] = {
    MSR_RAPL_POWER_UNIT: 0x0,
    MSR_PKG_POWER_LIMIT: 0x00FFFFFF00FFFFFF,
    MSR_PKG_ENERGY_STATUS: 0x0,
    MSR_PKG_POWER_INFO: 0x0,
    MSR_DRAM_POWER_LIMIT: 0x00FFFFFF,
    MSR_DRAM_ENERGY_STATUS: 0x0,
    IA32_PERF_STATUS: 0x0,
    IA32_PERF_CTL: 0xFFFF,
    IA32_CLOCK_MODULATION: 0x1F,
}


class MSRSafe:
    """Whitelist-checking wrapper around an :class:`MSRDevice`.

    Parameters
    ----------
    device:
        The raw MSR device.
    whitelist:
        Address -> write-mask mapping; defaults to
        :data:`DEFAULT_WHITELIST`.
    privileged:
        When true (root), the whitelist is bypassed entirely, as with the
        stock ``/dev/cpu/*/msr`` interface.
    """

    def __init__(self, device: MSRDevice,
                 whitelist: dict[int, int] | None = None,
                 privileged: bool = False) -> None:
        self.device = device
        self.whitelist = dict(DEFAULT_WHITELIST if whitelist is None else whitelist)
        self.privileged = privileged

    def read(self, addr: int) -> int:
        """Whitelisted ``rdmsr``."""
        if not self.privileged and addr not in self.whitelist:
            raise MSRPermissionError(
                f"rdmsr {addr:#x}: not in the msr-safe whitelist"
            )
        return self.device.read(addr)

    def write(self, addr: int, value: int) -> None:
        """Whitelisted, masked ``wrmsr``.

        Bits outside the write mask are preserved from the current
        register value, exactly as msr-safe's read-modify-write does.
        """
        if self.privileged:
            self.device.write(addr, value)
            return
        mask = self.whitelist.get(addr)
        if mask is None:
            raise MSRPermissionError(
                f"wrmsr {addr:#x}: not in the msr-safe whitelist"
            )
        if mask == 0:
            raise MSRPermissionError(f"wrmsr {addr:#x}: register is read-only")
        current = self.device.read(addr)
        merged = (current & ~mask & _U64) | (value & mask)
        self.device.write(addr, merged)

    def allow(self, addr: int, write_mask: int = 0) -> None:
        """Add or update a whitelist entry (administrative operation)."""
        self.whitelist[addr] = write_mask & _U64

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable gatekeeper state (whitelist edits + privilege)."""
        return {"version": 1, "whitelist": dict(self.whitelist),
                "privileged": self.privileged,
                "device": self.device.snapshot()}

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "MSRSafe")
        self.whitelist = dict(state["whitelist"])
        self.privileged = state["privileged"]
        self.device.restore(state["device"])
