"""The simulated node: cores + memory + power + counters + energy.

:class:`SimulatedNode` is the single authority for hardware state. Control
software (the RAPL firmware emulation, the DVFS/DDCM knobs) mutates
frequency/duty through it; the execution engine reads per-core state to
compute work rates and calls :meth:`SimulatedNode.accrue` to integrate
energy over each constant-rate segment.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, check_snapshot_version
from repro.hardware.config import NodeConfig
from repro.hardware.counters import CounterBank
from repro.hardware.cpu import CoreMode, CoreState
from repro.hardware.power import PowerModel, PowerSample
from repro.runtime.clock import SimClock

__all__ = ["SimulatedNode"]


class SimulatedNode:
    """A power-manageable 24-core node (see module docstring).

    Parameters
    ----------
    cfg:
        Physical description; defaults to :func:`~repro.hardware.config.skylake_config`.
    clock:
        Shared simulation clock; a fresh one is created if omitted.
    """

    def __init__(self, cfg: NodeConfig | None = None,
                 clock: SimClock | None = None) -> None:
        self.cfg = cfg if cfg is not None else NodeConfig()
        self.clock = clock if clock is not None else SimClock()
        self.cores = [
            CoreState(core_id=i, freq=self.cfg.f_nominal)
            for i in range(self.cfg.n_cores)
        ]
        self.counters = CounterBank(self.cfg.n_cores)
        self.power_model = PowerModel(self.cfg)
        # Monotonic energy accumulators (joules); RAPL energy-status MSRs
        # are derived from these.
        self.pkg_energy = 0.0
        self.dram_energy = 0.0
        # Userspace DVFS ceiling: RAPL never raises the clock above this.
        self._freq_limit = self.cfg.f_turbo
        self._last_sample: PowerSample | None = None
        # Uncore frequency scale in (0, 1]: multiplies the node's
        # achievable memory bandwidth. Software cannot set this directly —
        # only the RAPL firmware's uncore-DVFS does (the hardware feature
        # the paper lists as unmodeled in Section VI-B3).
        self.uncore_scale = 1.0
        # DRAM-domain bandwidth throttle (bytes/s), set by the firmware
        # when a DRAM power limit is programmed; None = unthrottled.
        self.dram_bw_cap: float | None = None

    # ------------------------------------------------------------------
    # Frequency / duty control
    # ------------------------------------------------------------------

    @property
    def frequency(self) -> float:
        """Current package-wide core frequency (Hz)."""
        return self.cores[0].freq

    @property
    def duty(self) -> float:
        """Current package-wide clock-modulation duty cycle."""
        return self.cores[0].duty

    @property
    def freq_limit(self) -> float:
        """Userspace DVFS ceiling (Hz)."""
        return self._freq_limit

    def set_frequency(self, freq: float) -> float:
        """Set the package frequency, snapping down to a ladder step and
        clipping to the userspace ceiling. Returns the applied frequency.
        """
        target = min(freq, self._freq_limit)
        idx = self.cfg.ladder_index(target)
        applied = self.cfg.freq_ladder[idx]
        for core in self.cores:
            core.freq = applied
        return applied

    def set_freq_limit(self, freq: float) -> float:
        """Set the userspace DVFS ceiling (snapped down to a ladder step);
        lowers the current frequency if it now exceeds the ceiling."""
        idx = self.cfg.ladder_index(freq)
        self._freq_limit = self.cfg.freq_ladder[idx]
        if self.frequency > self._freq_limit:
            self.set_frequency(self._freq_limit)
        return self._freq_limit

    def set_uncore_scale(self, scale: float) -> float:
        """Scale the uncore clock (firmware-internal; see
        :class:`~repro.hardware.rapl.RaplFirmware`). The achievable node
        memory bandwidth is ``cfg.mem_bandwidth * uncore_scale``."""
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"uncore scale must lie in (0, 1], got {scale}")
        self.uncore_scale = float(scale)
        return self.uncore_scale

    def set_dram_bw_cap(self, cap: float | None) -> None:
        """Throttle DRAM bandwidth (firmware-internal: DRAM-domain RAPL
        enforces its power limit by limiting achievable traffic)."""
        if cap is not None and cap <= 0:
            raise ConfigurationError(f"bandwidth cap must be positive, got {cap}")
        self.dram_bw_cap = cap

    @property
    def effective_mem_bandwidth(self) -> float:
        """Node memory bandwidth at the current uncore clock and DRAM
        throttle (bytes/s)."""
        bw = self.cfg.mem_bandwidth * self.uncore_scale
        if self.dram_bw_cap is not None:
            bw = min(bw, self.dram_bw_cap)
        return bw

    def _snap_duty(self, duty: float) -> float:
        levels = self.cfg.duty_levels
        if not duty > 0:
            raise ConfigurationError(f"duty must be positive, got {duty}")
        applied = levels[0]
        for level in levels:
            if level <= duty + 1e-12:
                applied = level
            else:
                break
        return applied

    def set_duty(self, duty: float) -> float:
        """Set the package-wide clock-modulation duty cycle, snapping
        down to the nearest available level (but never below the lowest
        level). Overwrites any per-core settings."""
        applied = self._snap_duty(duty)
        for core in self.cores:
            core.duty = applied
        return applied

    def set_core_duty(self, core_id: int, duty: float) -> float:
        """Set one core's duty cycle (IA32_CLOCK_MODULATION is per
        logical processor on real hardware). Note the RAPL firmware's
        DDCM fallback acts package-wide and overwrites per-core settings
        while it is engaged."""
        if not 0 <= core_id < self.cfg.n_cores:
            raise ConfigurationError(
                f"core_id {core_id} out of range 0..{self.cfg.n_cores - 1}"
            )
        applied = self._snap_duty(duty)
        self.cores[core_id].duty = applied
        return applied

    # ------------------------------------------------------------------
    # Power / energy
    # ------------------------------------------------------------------

    def power(self) -> PowerSample:
        """Instantaneous power breakdown at the current state."""
        return self.power_model.sample(self.cores)

    def accrue(self, dt: float) -> PowerSample:
        """Integrate energy over a constant-rate segment of length ``dt``.

        Called by the engine *before* advancing the clock, while per-core
        state still describes the segment.
        """
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        sample = self.power_model.sample(self.cores)
        self.pkg_energy += sample.package * dt
        self.dram_energy += sample.dram * dt
        self._last_sample = sample
        return sample

    @property
    def last_power(self) -> PowerSample:
        """Most recent power sample (computed at the last accrual), or the
        current instantaneous sample if nothing has been accrued yet."""
        return self._last_sample if self._last_sample is not None else self.power()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def idle_all(self) -> None:
        """Mark every core idle (no task, no traffic)."""
        for core in self.cores:
            core.mode = CoreMode.IDLE
            core.compute_frac = 0.0
            core.bytes_rate = 0.0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable hardware state: clock, per-core state, counters,
        energy accumulators, and the frequency/uncore/DRAM limits."""
        return {
            "version": 1,
            "now": self.clock.now,
            "cores": [{
                "freq": c.freq, "duty": c.duty, "mode": c.mode.value,
                "compute_frac": c.compute_frac, "bytes_rate": c.bytes_rate,
            } for c in self.cores],
            "counters": self.counters.dump_state(),
            "pkg_energy": self.pkg_energy,
            "dram_energy": self.dram_energy,
            "freq_limit": self._freq_limit,
            "last_sample": self._last_sample,
            "uncore_scale": self.uncore_scale,
            "dram_bw_cap": self.dram_bw_cap,
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` (the clock advances to the
        checkpointed time — it cannot rewind)."""
        check_snapshot_version(state, 1, "SimulatedNode")
        self.clock.advance_to(state["now"])
        for core, core_state in zip(self.cores, state["cores"]):
            core.freq = core_state["freq"]
            core.duty = core_state["duty"]
            core.mode = CoreMode(core_state["mode"])
            core.compute_frac = core_state["compute_frac"]
            core.bytes_rate = core_state["bytes_rate"]
        self.counters.load_state(state["counters"])
        self.pkg_energy = state["pkg_energy"]
        self.dram_energy = state["dram_energy"]
        self._freq_limit = state["freq_limit"]
        self._last_sample = state["last_sample"]
        self.uncore_scale = state["uncore_scale"]
        self.dram_bw_cap = state["dram_bw_cap"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedNode(cores={self.cfg.n_cores}, "
            f"f={self.frequency / 1e9:.1f}GHz, duty={self.duty:.3f}, "
            f"E_pkg={self.pkg_energy:.1f}J)"
        )
