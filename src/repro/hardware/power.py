"""Physically-motivated package power model.

Per-core power combines leakage (proportional to supply voltage) and
dynamic switching power ``c_dyn * V(f)^2 * f * duty * activity``. Because
the voltage curve has a floor below the knee frequency and rises linearly
above it (see :class:`~repro.hardware.config.NodeConfig`), the *effective*
exponent alpha in ``P_core ~ f^alpha`` drifts from ~1 near the bottom of
the ladder to ~3 near the top. The paper's analytic model fixes alpha = 2;
this drift is one of the physical sources of its prediction error
(Section VI-B3 reports alpha varying "between 1 and 4").

Uncore (and DRAM-domain) power scales with memory traffic, so memory-bound
workloads spend a larger share of any package budget outside the cores —
which is why RAPL runs them at lower core frequencies for the same cap
(paper Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import NodeConfig
from repro.hardware.cpu import CoreState
from repro.hardware.kernels import (
    accumulate_core_power,
    core_power,
    dram_power,
    uncore_power,
)

__all__ = ["PowerSample", "PowerModel"]


@dataclass(frozen=True)
class PowerSample:
    """Instantaneous power breakdown in watts."""

    package: float   #: total package-domain power (cores + uncore)
    cores: float     #: sum of per-core static + dynamic power
    uncore: float    #: traffic-dependent uncore power
    dram: float      #: DRAM-domain power (separate RAPL domain)

    @property
    def total(self) -> float:
        """Package + DRAM power (the whole node as RAPL sees it)."""
        return self.package + self.dram


class PowerModel:
    """Maps node state to instantaneous power draw."""

    def __init__(self, cfg: NodeConfig) -> None:
        self.cfg = cfg

    def core_power(self, core: CoreState) -> float:
        """Static + dynamic power of one core (watts)."""
        cfg = self.cfg
        volt = cfg.voltage(core.freq)
        return core_power(volt, core.freq, core.duty, core.activity(cfg),
                          cfg.c_dyn, cfg.leak_per_volt)

    def sample(self, cores: list[CoreState]) -> PowerSample:
        """Power breakdown for the whole node given per-core states."""
        cfg = self.cfg
        core_total, traffic = accumulate_core_power(
            (self.core_power(core) for core in cores),
            (core.bytes_rate for core in cores),
        )
        uncore = uncore_power(traffic, cfg.uncore_base, cfg.uncore_per_bw)
        dram = dram_power(traffic, cfg.dram_base, cfg.dram_per_bw)
        return PowerSample(
            package=core_total + uncore,
            cores=core_total,
            uncore=uncore,
            dram=dram,
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def core_power_at(self, freq: float, activity: float = 1.0,
                      duty: float = 1.0) -> float:
        """Power of a single hypothetical core at ``freq`` (watts).

        Useful for plotting the P(f) curve and for deriving the effective
        alpha exponent without running a simulation.
        """
        cfg = self.cfg
        volt = cfg.voltage(freq)
        return core_power(volt, freq, duty, activity,
                          cfg.c_dyn, cfg.leak_per_volt)

    def effective_alpha(self, f_low: float, f_high: float,
                        activity: float = 1.0) -> float:
        """Local exponent alpha such that ``P ~ f^alpha`` between two
        frequencies, using only the *dynamic* component (the paper's Eq. 2
        concerns dynamic power).
        """
        import math

        cfg = self.cfg
        p_low = cfg.c_dyn * cfg.voltage(f_low) ** 2 * f_low * activity
        p_high = cfg.c_dyn * cfg.voltage(f_high) ** 2 * f_high * activity
        return math.log(p_high / p_low) / math.log(f_high / f_low)
