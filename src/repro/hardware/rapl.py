"""RAPL firmware emulation: a feedback power-capping controller.

Real RAPL is a proprietary on-package controller; the paper explicitly
notes that "no published work accurately describes or models RAPL's
internal behavior" and instead characterizes it empirically. This
emulation reproduces the empirically observed behaviour the paper relies
on:

* **Feedback enforcement** — every ``control_interval`` the firmware
  compares the average package power over the last interval (from the
  energy counter, exactly like software measures RAPL) against the limit
  and steps the package frequency down/up the DVFS ladder.
* **Application-aware budgeting** (paper Fig. 2) — emergent: memory-bound
  workloads push traffic-proportional uncore power, leaving less of the
  package budget for the cores, so the controller settles at a lower core
  frequency than for compute-bound workloads under the *same* cap.
* **Beyond-DVFS throttling** (paper Figs. 4d, 5) — two mechanisms the
  paper explicitly names as unmodeled (Section VI-B3: "DDCM and
  uncore-DVFS"):

  - *uncore DVFS*: while a cap is actively enforced the firmware scales
    the uncore clock with the core ratio, shrinking achievable node
    memory bandwidth — userspace core DVFS does not do this, which is
    why DVFS beats RAPL for STREAM in the paper's Fig. 5;
  - *DDCM*: when the ladder bottoms out and power still exceeds the
    limit, duty-cycle modulation engages, which also gates the memory
    issue rate.

  A DVFS-only analytic model therefore *underestimates* the impact on
  memory-bound codes, which is precisely the model failure the paper
  reports for STREAM.
* **Turbo** — with headroom under the limit the controller opportunistically
  raises frequency into turbo bins (Turbo-Boost was enabled on the paper's
  testbed), never above the userspace DVFS ceiling
  (:meth:`~repro.hardware.node.SimulatedNode.set_freq_limit`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, check_snapshot_version
from repro.hardware.cpu import CoreMode
from repro.hardware.kernels import (
    accumulate_core_power,
    average_power,
    core_power,
    ewma_alpha,
    ewma_update,
    throttle_steps,
    uncore_dvfs_scale,
    uncore_power,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode
    from repro.runtime.engine import Engine

__all__ = ["RaplFirmware"]


class RaplFirmware:
    """Package-domain power-cap enforcement loop.

    Parameters
    ----------
    node:
        The node whose frequency/duty the firmware controls.
    engine:
        Engine used to schedule the periodic control tick.
    control_interval:
        Firmware loop period in (simulated) seconds. Real RAPL enforces
        over a configurable time window of similar magnitude.
    headroom:
        Fractional band under the limit within which the controller holds
        steady instead of hunting (damps limit-cycle oscillation).
    max_steps:
        Largest number of ladder steps taken in one tick when power is far
        above the limit (proportional control).
    min_uncore_scale:
        Floor of the uncore-DVFS scale (the uncore never clocks below
        this fraction of full speed).
    """

    def __init__(self, node: "SimulatedNode", engine: "Engine", *,
                 control_interval: float = 0.01, headroom: float = 0.03,
                 max_steps: int = 5, min_uncore_scale: float = 0.4) -> None:
        if control_interval <= 0:
            raise ConfigurationError("control_interval must be positive")
        if not 0.0 < headroom < 1.0:
            raise ConfigurationError("headroom must lie in (0, 1)")
        if max_steps < 1:
            raise ConfigurationError("max_steps must be >= 1")
        if not 0.0 < min_uncore_scale <= 1.0:
            raise ConfigurationError("min_uncore_scale must lie in (0, 1]")
        self.min_uncore_scale = min_uncore_scale
        self.node = node
        self.engine = engine
        self.control_interval = control_interval
        self.headroom = headroom
        self.max_steps = max_steps

        self.limit = node.cfg.tdp
        self.enabled = True
        # True while the duty reduction is the firmware's own doing; a
        # userspace DDCM pin (duty lowered by software) is never undone
        # by the step-up path.
        self._ddcm_engaged = False
        #: DRAM-domain limit in watts (None = uncapped).
        self.dram_limit: float | None = None
        self.window = control_interval
        # PL2: the short-term limit. Real packages allow brief excursions
        # above PL1 up to PL2; defaults to 1.2x TDP like stock firmware.
        self.limit2 = 1.2 * node.cfg.tdp
        self._avg_windowed: float | None = None  # EWMA over `window`
        self._last_energy = node.pkg_energy
        self._last_time = engine.clock.now
        self._timer = engine.add_timer(control_interval, self._tick,
                                       period=control_interval)

    # ------------------------------------------------------------------
    # Software-visible interface (wired to MSR_PKG_POWER_LIMIT)
    # ------------------------------------------------------------------

    def set_limit(self, watts: float, window: float | None = None) -> None:
        """Apply a package power cap (PL1)."""
        if watts <= 0:
            raise ConfigurationError(f"power limit must be positive, got {watts}")
        self.limit = float(watts)
        self.enabled = True
        if window is not None:
            if window <= 0:
                raise ConfigurationError("window must be positive")
            self.window = float(window)

    def set_limit2(self, watts: float) -> None:
        """Program the short-term (PL2) package limit."""
        if watts <= 0:
            raise ConfigurationError(f"PL2 must be positive, got {watts}")
        self.limit2 = float(watts)

    def set_dram_limit(self, watts: float | None) -> None:
        """Program (or clear, with None) the DRAM-domain power limit.

        DRAM RAPL enforces by throttling achievable traffic: with
        ``P_dram = dram_base + dram_per_bw * traffic`` the admissible
        bandwidth is ``(limit - dram_base) / dram_per_bw`` — applied
        directly (the relation is algebraic, no feedback needed).
        """
        cfg = self.node.cfg
        if watts is None:
            self.dram_limit = None
            self.node.set_dram_bw_cap(None)
            return
        if watts <= cfg.dram_base:
            raise ConfigurationError(
                f"DRAM limit {watts} W is not above the DRAM base draw "
                f"({cfg.dram_base} W)"
            )
        self.dram_limit = float(watts)
        self.node.set_dram_bw_cap((watts - cfg.dram_base) / cfg.dram_per_bw)

    def disable(self) -> None:
        """Stop enforcing a cap (the TDP remains the implicit ceiling)."""
        self.enabled = False
        self.node.set_uncore_scale(1.0)

    @property
    def effective_limit(self) -> float:
        """The limit actually enforced: the programmed cap, or TDP when
        capping is disabled (thermal ceiling)."""
        return min(self.limit, self.node.cfg.tdp) if self.enabled else self.node.cfg.tdp

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def measure_average_power(self, now: float) -> float | None:
        """Average package power since the previous tick (watts), or None
        when no time has elapsed. Also maintains the EWMA over the
        PL1 enforcement window."""
        dt = now - self._last_time
        if dt <= 0:
            return None
        avg = average_power(self.node.pkg_energy, self._last_energy, dt)
        self._last_energy = self.node.pkg_energy
        self._last_time = now
        if self._avg_windowed is None:
            self._avg_windowed = avg
        else:
            alpha = ewma_alpha(dt, self.window)
            self._avg_windowed = ewma_update(self._avg_windowed, avg, alpha)
        return avg

    @property
    def windowed_power(self) -> float | None:
        """EWMA of package power over the PL1 window (None before the
        first measurement)."""
        return self._avg_windowed

    def _predicted_power(self, freq: float, duty: float) -> float:
        """Package power if the node ran at (freq, duty) with the current
        activity pattern (an approximation: activity shifts slightly as
        rates change; the feedback loop corrects any residual error)."""
        cfg = self.node.cfg
        volt = cfg.voltage(freq)
        core_total, traffic = accumulate_core_power(
            (core_power(volt, freq, duty, core.activity(cfg),
                        cfg.c_dyn, cfg.leak_per_volt)
             for core in self.node.cores),
            (core.bytes_rate for core in self.node.cores),
        )
        return core_total + uncore_power(traffic, cfg.uncore_base,
                                         cfg.uncore_per_bw)

    def _apply_uncore_dvfs(self) -> None:
        """Scale the uncore clock with the core ratio while a real cap is
        being enforced; full speed otherwise (userspace DVFS pins do not
        touch the uncore)."""
        node = self.node
        capping = self.enabled and self.limit < node.cfg.tdp
        if capping:
            node.set_uncore_scale(uncore_dvfs_scale(
                node.frequency, node.cfg.f_nominal, self.min_uncore_scale))
        else:
            node.set_uncore_scale(1.0)

    def _tick(self, now: float) -> None:
        avg = self.measure_average_power(now)
        if avg is None:
            return
        node = self.node
        cfg = node.cfg
        cap = self.effective_limit
        self._apply_uncore_dvfs()

        # PL2: the instantaneous interval average may briefly exceed PL1
        # (the EWMA is what PL1 constrains), but never the short-term
        # limit. Violating PL2 throttles immediately and hard.
        if self.enabled and avg > self.limit2:
            idx = cfg.ladder_index(node.frequency)
            node.set_frequency(cfg.freq_ladder[max(0, idx - self.max_steps)])
            return

        avg = self._avg_windowed if self._avg_windowed is not None else avg
        if avg > cap:
            # Over budget: proportional step down the ladder, then DDCM.
            steps = throttle_steps(avg, cap, self.max_steps)
            idx = cfg.ladder_index(node.frequency)
            if idx > 0:
                node.set_frequency(cfg.freq_ladder[max(0, idx - steps)])
            else:
                duties = cfg.duty_levels
                cur = duties.index(node.duty) if node.duty in duties else len(duties) - 1
                if cur > 0:
                    node.set_duty(duties[cur - 1])
                    self._ddcm_engaged = True
            return

        if avg < cap * (1.0 - self.headroom):
            # Headroom: undo DDCM first, then climb the ladder (turbo
            # included), but only when the predicted power stays under
            # the cap.
            duties = cfg.duty_levels
            if node.duty < 1.0:
                if not self._ddcm_engaged:
                    # software pinned the duty; leave it alone
                    return
                cur = duties.index(node.duty)
                candidate = duties[cur + 1]
                if self._predicted_power(node.frequency, candidate) <= cap:
                    node.set_duty(candidate)
                    if candidate >= 1.0:
                        self._ddcm_engaged = False
                return
            idx = cfg.ladder_index(node.frequency)
            if idx + 1 < len(cfg.freq_ladder):
                candidate = cfg.freq_ladder[idx + 1]
                if candidate <= node.freq_limit and \
                        self._predicted_power(candidate, node.duty) <= cap:
                    node.set_frequency(candidate)

    def stop(self) -> None:
        """Cancel the firmware's periodic tick (used when tearing down a
        testbed between experiment runs)."""
        self._timer.cancel()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable controller state (the node-side effects — frequency,
        duty, uncore scale, DRAM throttle — live in the node snapshot)."""
        return {
            "version": 1,
            "limit": self.limit,
            "limit2": self.limit2,
            "enabled": self.enabled,
            "ddcm_engaged": self._ddcm_engaged,
            "dram_limit": self.dram_limit,
            "window": self.window,
            "avg_windowed": self._avg_windowed,
            "last_energy": self._last_energy,
            "last_time": self._last_time,
        }

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "RaplFirmware")
        self.limit = state["limit"]
        self.limit2 = state["limit2"]
        self.enabled = state["enabled"]
        self._ddcm_engaged = state["ddcm_engaged"]
        self.dram_limit = state["dram_limit"]
        self.window = state["window"]
        self._avg_windowed = state["avg_windowed"]
        self._last_energy = state["last_energy"]
        self._last_time = state["last_time"]
