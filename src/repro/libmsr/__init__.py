"""libmsr-style wrapper API over the emulated msr-safe device.

See :mod:`repro.libmsr.api`.
"""

from repro.libmsr.api import LibMSR, PowerPoll

__all__ = ["LibMSR", "PowerPoll"]
