"""libmsr-style API.

LLNL's libmsr (which the paper uses, together with msr-safe, to implement
its power-policy tool) exposes convenience calls over the raw RAPL MSRs:
reading the unit register, getting/setting package power limits, and
polling energy to derive average power. :class:`LibMSR` reproduces that
surface on top of :class:`~repro.hardware.msr_safe.MSRSafe`, including the
energy-counter wraparound handling any real RAPL consumer must implement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MSRError, check_snapshot_version
from repro.hardware.msr import (
    MSR_DRAM_ENERGY_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_INFO,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    PowerLimit,
    RaplUnits,
    decode_power_limit,
    decode_units,
    encode_power_limit,
)
from repro.hardware.msr_safe import MSRSafe

__all__ = ["LibMSR", "PowerPoll"]

_WRAP = 1 << 32


@dataclass(frozen=True)
class PowerPoll:
    """Result of one energy-poll interval."""

    seconds: float        #: interval length
    pkg_joules: float     #: package energy consumed over the interval
    dram_joules: float    #: DRAM energy consumed over the interval

    @property
    def pkg_watts(self) -> float:
        """Average package power over the interval."""
        if self.seconds <= 0:
            raise MSRError("poll interval must be positive to derive power")
        return self.pkg_joules / self.seconds

    @property
    def dram_watts(self) -> float:
        """Average DRAM power over the interval."""
        if self.seconds <= 0:
            raise MSRError("poll interval must be positive to derive power")
        return self.dram_joules / self.seconds


class LibMSR:
    """High-level RAPL access, one instance per node.

    Parameters
    ----------
    msr:
        Whitelisted MSR access (an :class:`~repro.hardware.msr_safe.MSRSafe`).
    clock:
        Time source used to stamp energy polls.
    """

    def __init__(self, msr: MSRSafe, clock) -> None:
        self.msr = msr
        self.clock = clock
        self._units: RaplUnits | None = None
        self._last: tuple[float, int, int] | None = None  # (t, pkg_raw, dram_raw)

    @property
    def units(self) -> RaplUnits:
        """RAPL units, read once from ``MSR_RAPL_POWER_UNIT`` and cached."""
        if self._units is None:
            # Deterministic derived cache: re-read from the MSR on
            # demand after a restore, never snapshotted.
            self._units = decode_units(self.msr.read(MSR_RAPL_POWER_UNIT))  # repro-lint: disable=ckpt-attr-coverage
        return self._units

    # -- power limits ------------------------------------------------------

    def get_pkg_power_limit(self) -> PowerLimit:
        """Currently programmed PL1 package limit."""
        pl1, _pl2, _locked = decode_power_limit(
            self.msr.read(MSR_PKG_POWER_LIMIT), self.units
        )
        return pl1

    def set_pkg_power_limit(self, watts: float, window: float = 0.01,
                            clamp: bool = True) -> None:
        """Program and enable a PL1 package power cap."""
        if watts <= 0:
            raise MSRError(f"power limit must be positive, got {watts}")
        limit = PowerLimit(watts=watts, enabled=True, clamped=clamp,
                           window=window)
        self.msr.write(MSR_PKG_POWER_LIMIT,
                       encode_power_limit(limit, units=self.units))

    def remove_pkg_power_limit(self) -> None:
        """Disable package capping (uncapped execution)."""
        limit = PowerLimit(watts=self.get_tdp(), enabled=False, clamped=False,
                           window=0.01)
        self.msr.write(MSR_PKG_POWER_LIMIT,
                       encode_power_limit(limit, units=self.units))

    def get_tdp(self) -> float:
        """Thermal design power from ``MSR_PKG_POWER_INFO`` (watts)."""
        return (self.msr.read(MSR_PKG_POWER_INFO) & 0x7FFF) * self.units.power

    # -- energy / power monitoring -----------------------------------------

    def read_pkg_energy_raw(self) -> int:
        """Raw 32-bit package energy counter."""
        return self.msr.read(MSR_PKG_ENERGY_STATUS)

    def poll_power(self) -> PowerPoll | None:
        """Sample the energy counters; return consumption since the last
        poll, handling 32-bit wraparound. The first call primes the
        baseline and returns None."""
        now = self.clock.now
        pkg_raw = self.msr.read(MSR_PKG_ENERGY_STATUS)
        dram_raw = self.msr.read(MSR_DRAM_ENERGY_STATUS)
        if self._last is None:
            self._last = (now, pkg_raw, dram_raw)
            return None
        t0, pkg0, dram0 = self._last
        self._last = (now, pkg_raw, dram_raw)
        d_pkg = (pkg_raw - pkg0) % _WRAP
        d_dram = (dram_raw - dram0) % _WRAP
        return PowerPoll(
            seconds=now - t0,
            pkg_joules=d_pkg * self.units.energy,
            dram_joules=d_dram * self.units.energy,
        )

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable API state: the poll baseline (the units cache is
        deterministic and re-read on demand)."""
        return {"version": 1, "last": self._last,
                "msr": self.msr.snapshot()}

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "LibMSR")
        self._last = state["last"]
        self.msr.restore(state["msr"])
