"""repro.lint — AST-based invariant checkers for the simulator.

The repo's correctness story (bit-identical golden parity across shard
counts, content-keyed result caching, checkpoint round-trips through
every stateful component) rests on invariants that ordinary linters
cannot see. This package enforces them statically, in five rule
families:

``determinism``
    No host clocks, stdlib/global RNGs, OS entropy, or environment
    reads inside simulation code.
``checkpoint``
    ``snapshot()``/``restore()`` pairs cover the same keys, cover every
    post-construction mutation, and carry a schema ``version`` field.
``picklable``
    Dataclasses that cross process boundaries declare only picklable
    fields.
``units``
    Watt-, joule-, hertz- and second-named quantities are never mixed
    additively.
``concurrency``
    Lock-protected attributes are written under their lock, thread
    roots share state only through a common lock, lock acquisition
    order is cycle-free, and no blocking call runs inside a critical
    section (cross-module analysis over the whole source tree; see
    :mod:`repro.lint.project`).

Run it with ``python -m repro.lint src/`` (see ``docs/LINTING.md``);
silence an individual line with ``# repro-lint: disable=<rule>``.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import (
    Finding,
    Module,
    Rule,
    lint_file,
    lint_paths,
    parse_module,
)
from repro.lint.rules import ALL_RULES, select_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "Module",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_module",
    "select_rules",
]


def lint_source(source: str, path: str = "<string>",
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint a source string (the unit-test entry point)."""
    return lint_file(parse_module(path, source),
                     ALL_RULES if rules is None else rules)
