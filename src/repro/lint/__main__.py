"""CLI: ``python -m repro.lint [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.core import lint_paths
from repro.lint.rules import ALL_RULES, select_rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checks: determinism, checkpoint "
                    "coverage, shard-boundary picklability, physical units, "
                    "concurrency lock discipline. See docs/LINTING.md.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text); sarif emits "
                             "a SARIF 2.1.0 log for code-scanning uploads")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids or family names to "
                             "run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:22s} [{rule.family}] {rule.description}")
        return 0

    try:
        rules = select_rules(
            [t.strip() for t in args.rules.split(",") if t.strip()]
            if args.rules else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings, errors = lint_paths(args.paths, rules)

    if args.format == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in findings],
            "errors": errors,
        }, indent=2))
    elif args.format == "sarif":
        from repro.lint.sarif import to_sarif
        print(json.dumps(to_sarif(findings, rules, errors), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        if findings:
            print(f"\n{len(findings)} finding(s) in "
                  f"{len({f.path for f in findings})} file(s)")

    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
