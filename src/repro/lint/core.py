"""Core machinery for :mod:`repro.lint`.

A *rule* is an object with an ``id``, a ``family`` and a
``check(module, project)`` method yielding :class:`Finding`\\ s. Rules
operate on a parsed :class:`Module` (AST + source + import map) so each
source file is read and parsed exactly once per run, plus the
:class:`~repro.lint.project.Project` built from *every* module of the
run — per-module rules may follow imports, base classes and
annotations across files through it.

Rules whose unit of analysis is the whole project (the concurrency
family's lock graph, for instance) subclass :class:`ProjectRule` and
implement ``check_project(project)`` instead; the driver calls it once
per run and routes each finding back through its module's suppressions.

Suppressions are per line: a trailing ``# repro-lint: disable=<rule>``
comment (comma-separated rule ids or family names) silences findings
reported *on that line*. The comment must carry a reason for a human
reader; the linter itself only parses the rule list.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # circular at runtime: project.py imports Module
    from repro.lint.project import Project

__all__ = [
    "Finding",
    "Module",
    "ProjectRule",
    "Rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "parse_module",
    "qualified_name",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:col: rule message``."""

    rule: str
    family: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Module:
    """A parsed source file plus the per-rule lookups built from it.

    Attributes
    ----------
    path:
        File path as given on the command line.
    tree:
        The parsed :class:`ast.Module`.
    lines:
        Source split into lines (1-indexed access via ``lines[n - 1]``).
    imports:
        Alias -> fully-qualified module/object name, e.g. ``np`` ->
        ``numpy``, ``environ`` -> ``os.environ``.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.imports = _collect_imports(tree)
        self._suppressed = _collect_suppressions(self.lines)

    def suppressed(self, line: int) -> frozenset[str]:
        """Rule ids/families disabled on ``line`` (1-indexed)."""
        return self._suppressed.get(line, frozenset())


class Rule:
    """Base class: subclasses set ``id``/``family``/``description`` and
    implement :meth:`check`."""

    id: str = ""
    family: str = ""
    description: str = ""

    def check(self, module: Module, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            family=self.family,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule whose unit of analysis is the whole project.

    Subclasses implement :meth:`check_project`, called once per run;
    each yielded :class:`Finding` must carry the path of the module it
    belongs to (use :meth:`Rule.finding` with that module) so the
    driver can apply the module's suppressions.
    """

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: Module, project: "Project") -> Iterator[Finding]:
        # Per-module dispatch never applies; the driver special-cases
        # ProjectRule. Kept callable so duck-typed callers stay safe.
        return iter(())


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def _collect_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
            if rules:
                out[i] = frozenset(rules)
    return out


def qualified_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Dotted name of an attribute/name chain, resolved through the
    module's import aliases (``np.random.default_rng`` ->
    ``numpy.random.default_rng``); None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def parse_module(path: str, source: str | None = None) -> Module:
    if source is None:
        with open(path, "r", encoding="utf-8") as f:
            source = f.read()
    tree = ast.parse(source, filename=path)
    return Module(path, source, tree)


def lint_project(project: "Project",
                 rules: Iterable[Rule]) -> list[Finding]:
    """Run ``rules`` over every module of ``project``, honouring each
    module's suppressions. Findings are ordered by module (in project
    order), then ``(line, col, rule)``."""
    order = {m.path: i for i, m in enumerate(project.modules)}
    findings: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw: Iterable[Finding] = rule.check_project(project)
        else:
            raw = (f for m in project.modules for f in rule.check(m, project))
        for finding in raw:
            mod = project.by_path.get(finding.path)
            if mod is not None:
                disabled = mod.suppressed(finding.line)
                if finding.rule in disabled or finding.family in disabled:
                    continue
            findings.append(finding)
    findings.sort(key=lambda f: (order.get(f.path, 0), f.line, f.col, f.rule))
    return findings


def lint_file(module: Module, rules: Iterable[Rule],
              project: "Project | None" = None) -> list[Finding]:
    """Run ``rules`` over one parsed module, honouring suppressions.

    Without an explicit ``project`` the module is wrapped in a
    single-module project, so project-wide rules still run (blind to
    anything outside the file — exactly the unit-test entry point's
    contract).
    """
    from repro.lint.project import Project

    if project is None:
        project = Project([module])
    return [f for f in lint_project(project, rules) if f.path == module.path]


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: set[str] = set()
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if full not in seen:
                            seen.add(full)
                            out.append(full)
        elif path not in seen:
            seen.add(path)
            out.append(path)
    return iter(out)


def lint_paths(paths: Iterable[str],
               rules: Iterable[Rule]) -> tuple[list[Finding], list[str]]:
    """Lint every python file under ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are human-readable
    messages for files that could not be read or parsed (a parse error
    is not a finding — it means the file never reached the rules).
    """
    from repro.lint.project import Project

    rules = list(rules)
    modules: list[Module] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            modules.append(parse_module(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: {exc}")
    return lint_project(Project(modules), rules), errors
