"""Cross-module project model for :mod:`repro.lint`.

The per-file :class:`~repro.lint.core.Module` sees one AST at a time,
which is enough for purely local invariants (a ``time.time()`` call, a
lock-typed dataclass field) but blind to anything that spans files: a
``snapshot()`` that extends a base class defined elsewhere, a lock
attribute acquired through a parameter annotated with a class from
another module, a thread spawned here whose target mutates state owned
there. :class:`Project` closes that gap.

A :class:`Project` is built once per lint run from every parsed module
and indexes:

* **modules by dotted name** — ``src/repro/daemon/service.py`` is
  addressable as ``repro.daemon.service`` regardless of checkout root;
* **classes by qualified name** — ``repro.daemon.service.Daemon`` maps
  to a :class:`ClassInfo` carrying the AST node and its methods;
* **import aliases per module** — extending the core import map with
  *relative* imports resolved against the module's package, so
  ``from .service import Daemon`` participates in resolution.

On top of the indices it resolves the references rules actually
follow: a name as written in a module to a class
(:meth:`Project.resolve_class`), a parameter/field annotation to a
class (:meth:`Project.resolve_annotation`, unwrapping ``Optional[X]``,
``X | None`` and string forward references), and a class to its base
classes and inherited methods (:meth:`Project.bases_of`,
:meth:`Project.find_method`, :meth:`Project.iter_methods`).

Resolution is deliberately conservative: an unresolvable reference is
``None``, never a guess — except for the *unique bare name* fallback
(an unqualified name defined by exactly one class in the project),
which keeps single-string fixtures in tests resolvable without import
plumbing.

Rules that need the whole project at once subclass
:class:`~repro.lint.core.ProjectRule` and implement
``check_project(project)``; per-module rules receive the project as a
second argument to ``check(module, project)``.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator

from repro.lint.core import Module

__all__ = ["ClassInfo", "Project", "module_name"]


def module_name(path: str) -> str:
    """Dotted module name of a source path.

    The name is taken relative to the innermost ``src`` directory
    (``src/repro/daemon/service.py`` -> ``repro.daemon.service``);
    failing that, from the first ``repro`` segment; failing that, the
    bare stem (so ad-hoc temp files in tests still get a usable name).
    Package ``__init__.py`` files name the package itself.
    """
    norm = path.replace(os.sep, "/")
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split("/") if p and p != "."]
    if len(parts) > 1 and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        cut = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[cut + 1:]
        if tail:
            return ".".join(tail)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return parts[-1] if parts else norm


class ClassInfo:
    """One class definition and the lookups rules need from it.

    Attributes
    ----------
    name:
        Bare class name (``Daemon``).
    qualname:
        ``<module dotted name>.<class name>``, nested classes included
        (``repro.daemon.service.Daemon``).
    module:
        The :class:`Module` defining the class.
    node:
        The :class:`ast.ClassDef`.
    methods:
        Name -> :class:`ast.FunctionDef` for methods defined *in this
        class body* (inherited methods come from
        :meth:`Project.find_method`).
    """

    __slots__ = ("name", "qualname", "module", "node", "methods")

    def __init__(self, name: str, qualname: str, module: Module,
                 node: ast.ClassDef) -> None:
        self.name = name
        self.qualname = qualname
        self.module = module
        self.node = node
        self.methods: dict[str, ast.FunctionDef] = {
            item.name: item for item in node.body
            if isinstance(item, ast.FunctionDef)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qualname})"


def _dotted(node: ast.AST) -> str | None:
    """The textual ``a.b.c`` chain of a Name/Attribute expression."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class Project:
    """Every parsed module of one lint run, cross-indexed."""

    def __init__(self, modules: Iterable[Module]) -> None:
        self.modules: list[Module] = list(modules)
        self.by_path: dict[str, Module] = {m.path: m for m in self.modules}
        #: dotted module name -> Module (first wins on collisions).
        self.module_names: dict[str, Module] = {}
        #: qualified class name -> ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        #: rule-scoped memo space (e.g. the concurrency model), keyed
        #: by whatever the rule chooses; cleared with the project.
        self.cache: dict[str, object] = {}
        self._names: dict[str, str] = {}          # path -> dotted name
        self._bare: dict[str, list[ClassInfo]] = {}
        self._imports: dict[str, dict[str, str]] = {}
        for mod in self.modules:
            name = module_name(mod.path)
            self._names[mod.path] = name
            self.module_names.setdefault(name, mod)
            self._index_classes(mod, name)

    def _index_classes(self, mod: Module, mod_name: str) -> None:
        def visit(body: list[ast.stmt], prefix: str) -> None:
            for item in body:
                if isinstance(item, ast.ClassDef):
                    qualname = f"{prefix}.{item.name}"
                    info = ClassInfo(item.name, qualname, mod, item)
                    self.classes.setdefault(qualname, info)
                    self._bare.setdefault(item.name, []).append(info)
                    visit(item.body, qualname)
                elif isinstance(item, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    visit(item.body, prefix)

        visit(mod.tree.body, mod_name)

    # ------------------------------------------------------------------
    # Names and imports
    # ------------------------------------------------------------------

    def name_of(self, module: Module) -> str:
        """Dotted module name of a project module."""
        return self._names.get(module.path, module_name(module.path))

    def imports_of(self, module: Module) -> dict[str, str]:
        """The module's alias map, with relative imports resolved
        against its package (the core map skips them)."""
        cached = self._imports.get(module.path)
        if cached is not None:
            return cached
        out = dict(module.imports)
        name_parts = self.name_of(module).split(".")
        is_pkg = module.path.replace(os.sep, "/").endswith("/__init__.py")
        pkg = name_parts if is_pkg else name_parts[:-1]
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ImportFrom) and node.level):
                continue
            base = pkg[:len(pkg) - (node.level - 1)] if node.level > 1 \
                else list(pkg)
            if node.level - 1 > len(pkg):
                continue  # relative import escaping the known root
            prefix_parts = base + ([node.module] if node.module else [])
            prefix = ".".join(prefix_parts)
            for alias in node.names:
                if prefix:
                    out[alias.asname or alias.name] = \
                        f"{prefix}.{alias.name}"
        self._imports[module.path] = out
        return out

    def resolve_name(self, module: Module, dotted: str) -> str:
        """A dotted name as written in ``module``, pushed through the
        module's import aliases (``proto.RunRequest`` ->
        ``repro.daemon.protocol.RunRequest``). Always returns a string;
        unknown roots pass through unchanged."""
        parts = dotted.split(".")
        target = self.imports_of(module).get(parts[0])
        if target is None:
            return dotted
        return ".".join([target] + parts[1:])

    # ------------------------------------------------------------------
    # Class resolution
    # ------------------------------------------------------------------

    def resolve_class(self, module: Module,
                      ref: ast.AST | str) -> ClassInfo | None:
        """Resolve a class reference as written in ``module``.

        ``ref`` may be an AST expression (Name/Attribute chain) or its
        textual dotted form. Resolution order: same-module class,
        import-alias target, unique bare name anywhere in the project.
        """
        name = ref if isinstance(ref, str) else _dotted(ref)
        if not name:
            return None
        if "." not in name:
            local = self.classes.get(f"{self.name_of(module)}.{name}")
            if local is not None:
                return local
        info = self.classes.get(self.resolve_name(module, name))
        if info is not None:
            return info
        if "." not in name:
            bare = self._bare.get(name, [])
            if len(bare) == 1:
                return bare[0]
        return None

    def resolve_annotation(self, module: Module,
                           node: ast.AST | None) -> ClassInfo | None:
        """Resolve a parameter/field annotation to a project class,
        unwrapping ``Optional[X]``, ``X | None`` unions and string
        forward references. None when the annotation does not name a
        project class."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, str):
                return None
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self.resolve_annotation(module, node.left)
                    or self.resolve_annotation(module, node.right))
        if isinstance(node, ast.Subscript):
            head = _dotted(node.value)
            if head and head.split(".")[-1] == "Optional":
                return self.resolve_annotation(module, node.slice)
            return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self.resolve_class(module, node)
        return None

    # ------------------------------------------------------------------
    # Inheritance
    # ------------------------------------------------------------------

    def bases_of(self, info: ClassInfo) -> list[ClassInfo]:
        """The resolvable base classes of ``info``, in bases order.
        Unresolvable bases (stdlib, third-party) are silently absent."""
        out: list[ClassInfo] = []
        for base in info.node.bases:
            resolved = self.resolve_class(info.module, base)
            if resolved is not None and resolved is not info:
                out.append(resolved)
        return out

    def iter_methods(self, info: ClassInfo) -> Iterator[
            tuple[ClassInfo, str, ast.FunctionDef]]:
        """``(owner, name, def)`` for every method visible on ``info``
        — own methods first, then inherited ones depth-first through
        resolvable bases; an overridden name appears once."""
        seen: set[str] = set()
        stack: list[ClassInfo] = [info]
        visited: set[str] = set()
        while stack:
            cls = stack.pop(0)
            if cls.qualname in visited:
                continue
            visited.add(cls.qualname)
            for name, fn in cls.methods.items():
                if name not in seen:
                    seen.add(name)
                    yield cls, name, fn
            stack.extend(self.bases_of(cls))

    def find_method(self, info: ClassInfo, name: str) -> \
            tuple[ClassInfo, ast.FunctionDef] | None:
        """The defining ``(owner, def)`` of method ``name`` on ``info``,
        searching the class then its resolvable bases."""
        for owner, method_name, fn in self.iter_methods(info):
            if method_name == name:
                return owner, fn
        return None

    def iter_classes(self) -> Iterator[ClassInfo]:
        yield from self.classes.values()
