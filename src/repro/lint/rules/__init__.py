"""Rule registry for :mod:`repro.lint`.

Adding a rule family is three steps (see ``docs/LINTING.md``): write a
:class:`~repro.lint.core.Rule` subclass in a module here, instantiate
it in :data:`ALL_RULES`, and give it fire/stay-quiet tests under
``tests/lint/``.
"""

from __future__ import annotations

from repro.lint.core import Rule
from repro.lint.rules.checkpoint import (
    SnapshotAttrCoverageRule,
    SnapshotKeyDriftRule,
    SnapshotVersionRule,
    SoaFieldCoverageRule,
)
from repro.lint.rules.determinism import (
    DatetimeRule,
    EnvironReadRule,
    NumpyGlobalRngRule,
    StdlibRandomRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.lint.rules.concurrency import (
    BlockingUnderLockRule,
    LockOrderRule,
    UnguardedWriteRule,
)
from repro.lint.rules.picklable import BoundaryFieldRule
from repro.lint.rules.units import UnitMixRule, UnitSuffixRule

__all__ = ["ALL_RULES", "rules_by_id", "select_rules"]

#: Every registered rule, in reporting order.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    DatetimeRule(),
    StdlibRandomRule(),
    UnseededRngRule(),
    NumpyGlobalRngRule(),
    EnvironReadRule(),
    SnapshotKeyDriftRule(),
    SnapshotAttrCoverageRule(),
    SnapshotVersionRule(),
    SoaFieldCoverageRule(),
    BoundaryFieldRule(),
    UnitMixRule(),
    UnitSuffixRule(),
    UnguardedWriteRule(),
    LockOrderRule(),
    BlockingUnderLockRule(),
)


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


def select_rules(tokens: list[str] | None) -> list[Rule]:
    """Resolve ``--rules`` tokens (rule ids or family names) to rules."""
    if not tokens:
        return list(ALL_RULES)
    wanted = set(tokens)
    known = {r.id for r in ALL_RULES} | {r.family for r in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule(s) {sorted(unknown)}; known ids: "
            f"{sorted(r.id for r in ALL_RULES)}, families: "
            f"{sorted({r.family for r in ALL_RULES})}")
    return [r for r in ALL_RULES if r.id in wanted or r.family in wanted]
