"""Checkpoint-coverage rules.

Every stateful component participates in whole-node checkpointing
through a ``snapshot() -> dict`` / ``restore(state: dict)`` pair (see
:mod:`repro.stack.checkpoint`). The guarantee that a restored stack
continues *bit-for-bit* rests on three invariants nothing else
enforces:

* the keys ``restore()`` reads are exactly the keys ``snapshot()``
  writes (drift either way means a restore that crashes or — worse —
  silently skips state);
* every attribute the class mutates after construction is covered by
  the pair (a forgotten attribute silently corrupts restores);
* the snapshot carries a ``version`` field so schema changes fail
  loudly instead of mis-restoring old state.

These rules check the three invariants per class, purely syntactically:
a class is *checkpointable* when it defines both ``snapshot(self)`` and
``restore(self, state)``. Key analysis is local to the class — keys a
``super().snapshot()`` contributes are invisible on both the write and
the read side, so inheritance stays symmetric.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, Module, Rule
from repro.lint.project import Project

__all__ = [
    "SnapshotKeyDriftRule",
    "SnapshotAttrCoverageRule",
    "SnapshotVersionRule",
    "SoaFieldCoverageRule",
    "checkpoint_classes",
]

FAMILY = "checkpoint"

#: Methods whose attribute writes do not count as "post-construction
#: mutation": construction itself and the checkpoint pair.
_LIFECYCLE = {"__init__", "snapshot", "restore"}


def checkpoint_classes(module: Module) -> Iterator[
        tuple[ast.ClassDef, ast.FunctionDef, ast.FunctionDef]]:
    """Yield ``(class, snapshot_def, restore_def)`` for every class
    defining the checkpoint pair (``snapshot(self)`` with no further
    arguments — point-in-time readers like ``CounterBank.snapshot(self,
    time)`` are a different protocol — and ``restore(self, state)``)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        snap = restore = None
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                if item.name == "snapshot" and len(item.args.args) == 1:
                    snap = item
                elif item.name == "restore" and len(item.args.args) == 2:
                    restore = item
        if snap is not None and restore is not None:
            yield node, snap, restore


def _dict_keys(fn: ast.FunctionDef) -> set[str]:
    """String keys written in ``fn``: dict-literal keys (nested dicts
    included — restore reads them through the same nesting) plus
    ``x["key"] = ...`` subscript stores."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Store) and \
                isinstance(node.slice, ast.Constant) and \
                isinstance(node.slice.value, str):
            keys.add(node.slice.value)
    return keys


def _read_keys(fn: ast.FunctionDef) -> set[str]:
    """String keys read in ``fn``: ``x["key"]`` subscript loads and
    ``x.get("key", ...)`` calls."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Load) and \
                isinstance(node.slice, ast.Constant) and \
                isinstance(node.slice.value, str):
            keys.add(node.slice.value)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("get", "pop") and node.args and \
                isinstance(node.args[0], ast.Constant) and \
                isinstance(node.args[0].value, str):
            keys.add(node.args[0].value)
    return keys


def _self_attrs_assigned(fn: ast.FunctionDef) -> dict[str, ast.AST]:
    """Attributes of ``self`` assigned (plain, annotated, augmented, or
    via subscript/attribute on the attribute) in ``fn``; maps name to
    the first assigning node."""
    self_name = fn.args.args[0].arg if fn.args.args else "self"
    out: dict[str, ast.AST] = {}

    def _record(target: ast.AST, node: ast.AST) -> None:
        # peel x[...] / x.y chains down to the self attribute they mutate
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == self_name:
                out.setdefault(target.attr, node)
                return
            target = target.value

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign,)):
            for target in node.targets:
                _record(target, node)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            _record(node.target, node)
    return out


def _self_attrs_mentioned(fn: ast.FunctionDef) -> set[str]:
    """Every ``self.<attr>`` appearing anywhere in ``fn``."""
    self_name = fn.args.args[0].arg if fn.args.args else "self"
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == self_name:
            out.add(node.attr)
    return out


class SnapshotKeyDriftRule(Rule):
    id = "ckpt-key-drift"
    family = FAMILY
    description = ("keys snapshot() writes and restore() reads must match "
                   "exactly")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for cls, snap, restore in checkpoint_classes(module):
            written = _dict_keys(snap)
            read = _read_keys(restore)
            if not written or not read:
                continue  # state built by helpers; out of syntactic reach
            for key in sorted(written - read - {"version"}):
                yield self.finding(
                    module, snap,
                    f"{cls.name}.snapshot() writes key {key!r} that "
                    f"restore() never reads; the restored object silently "
                    "drops that state")
            for key in sorted(read - written):
                yield self.finding(
                    module, restore,
                    f"{cls.name}.restore() reads key {key!r} that "
                    f"snapshot() never writes; restore will raise KeyError "
                    "(or read stale defaults) on a fresh snapshot")


class SnapshotAttrCoverageRule(Rule):
    id = "ckpt-attr-coverage"
    family = FAMILY
    description = ("attributes mutated after construction must appear in "
                   "snapshot() or restore()")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for cls, snap, restore in checkpoint_classes(module):
            init = None
            mutated: dict[str, ast.AST] = {}
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name == "__init__":
                    init = item
                elif item.name not in _LIFECYCLE:
                    for name, node in _self_attrs_assigned(item).items():
                        mutated.setdefault(name, node)
            if init is None:
                continue
            covered = _self_attrs_mentioned(snap) | \
                _self_attrs_mentioned(restore)
            # Attributes an *inherited* snapshot()/restore() covers
            # count too — a subclass mutating state that the base's
            # checkpoint pair persists is fully covered.
            info = project.resolve_class(module, cls.name)
            if info is not None:
                for owner, name, fn in project.iter_methods(info):
                    if owner is not info and name in ("snapshot",
                                                      "restore"):
                        covered |= _self_attrs_mentioned(fn)
            init_attrs = _self_attrs_assigned(init)
            for name in sorted(set(init_attrs) & set(mutated) - covered):
                yield self.finding(
                    module, mutated[name],
                    f"{cls.name}.{name} is mutated after __init__ but "
                    "appears in neither snapshot() nor restore(); a "
                    "checkpoint round-trip silently resets it")


def _soa_fields(cls: ast.ClassDef) -> tuple[ast.AST, list[str]] | None:
    """The class-level ``_SOA_FIELDS`` declaration, when it is a
    tuple/list of string literals: ``(node, field_names)``."""
    for item in cls.body:
        targets = []
        value = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        if not any(isinstance(t, ast.Name) and t.id == "_SOA_FIELDS"
                   for t in targets):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        names = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and
                    isinstance(elt.value, str)):
                return None
            names.append(elt.value)
        return item, names
    return None


def _field_mentions(fn: ast.FunctionDef) -> set[str]:
    """Names a structure-of-arrays snapshot/restore method touches:
    ``self.<name>`` attribute accesses plus string-literal keys (the
    flat payload uses the field names as its dict keys)."""
    mentions = _self_attrs_mentioned(fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentions.add(node.value)
    return mentions


class SoaFieldCoverageRule(Rule):
    id = "ckpt-soa-coverage"
    family = FAMILY
    description = ("every _SOA_FIELDS entry must appear in the class's "
                   "snapshot() and restore() methods")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            declared = _soa_fields(cls)
            if declared is None:
                continue
            decl_node, names = declared
            methods = {item.name: item for item in cls.body
                       if isinstance(item, ast.FunctionDef)}
            for method_name in ("snapshot", "restore"):
                fn = methods.get(method_name)
                if fn is None:
                    yield self.finding(
                        module, decl_node,
                        f"{cls.name} declares _SOA_FIELDS but has no "
                        f"{method_name}() method; per-node state cannot "
                        "round-trip through checkpoints")
                    continue
                mentions = _field_mentions(fn)
                for name in names:
                    if name not in mentions:
                        yield self.finding(
                            module, fn,
                            f"{cls.name}.{method_name}() never touches "
                            f"_SOA_FIELDS entry {name!r}; a checkpoint "
                            "round-trip silently resets that array")


def _calls_super_snapshot(snap: ast.FunctionDef) -> bool:
    return any(
        isinstance(n, ast.Call) and
        isinstance(n.func, ast.Attribute) and
        n.func.attr == "snapshot" and
        isinstance(n.func.value, ast.Call) and
        isinstance(n.func.value.func, ast.Name) and
        n.func.value.func.id == "super"
        for n in ast.walk(snap))


def _inherited_version(project: Project, module: Module,
                       cls: ast.ClassDef) -> bool | None:
    """Does some resolvable ancestor's ``snapshot()`` write a
    ``version`` key? True/False when the chain resolves to an answer,
    None when no ancestor snapshot is in reach (unresolvable bases,
    helper-built state) — the caller must stay quiet then."""
    info = project.resolve_class(module, cls.name)
    if info is None:
        return None
    verdict: bool | None = None
    for owner, name, fn in project.iter_methods(info):
        if name != "snapshot" or owner is info:
            continue
        keys = _dict_keys(fn)
        if "version" in keys:
            return True
        if _calls_super_snapshot(fn):
            return None  # chain continues past resolvable bases
        if keys:
            verdict = False  # base builds the dict, without a version
        return verdict
    return None


class SnapshotVersionRule(Rule):
    id = "ckpt-missing-version"
    family = FAMILY
    description = "snapshot() dicts must carry a 'version' key"

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for cls, snap, _restore in checkpoint_classes(module):
            if _calls_super_snapshot(snap):
                # The subclass extends super().snapshot(): follow the
                # inheritance chain through the project. A base that
                # provably writes no version is the subclass's bug too;
                # an unresolvable chain stays quiet (old behaviour).
                if _inherited_version(project, module, cls) is False:
                    yield self.finding(
                        module, snap,
                        f"{cls.name}.snapshot() extends super().snapshot() "
                        "but no ancestor snapshot() writes a 'version' "
                        "key; schema changes will mis-restore old "
                        "checkpoints instead of failing loudly")
                continue
            written = _dict_keys(snap)
            if not written:
                continue  # built by helpers; out of syntactic reach
            if "version" not in written:
                yield self.finding(
                    module, snap,
                    f"{cls.name}.snapshot() has no 'version' key; schema "
                    "changes will mis-restore old checkpoints instead of "
                    "failing loudly")
