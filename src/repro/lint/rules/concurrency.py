"""Concurrency rules: lock discipline for the threaded daemon stack.

The daemon layer serves many client threads against one shared
simulation (``Daemon.handle`` under the daemon lock, ``DaemonServer``'s
acceptor and per-client reader threads, shard worker processes behind
pipes). Nothing in a per-file linter can see whether that discipline
actually holds — which attribute a lock protects, whether two locks
are ever taken in both orders, whether a blocking call sits inside a
critical section. These rules rebuild exactly that picture from the
:class:`~repro.lint.project.Project` model.

The analysis, per class:

* **lock discovery** — ``self.X = threading.Lock()/RLock()`` (or the
  :mod:`repro.sanitize` tracked factories), own and inherited;
* **receiver typing** — ``other.attr`` accesses resolve through
  parameter annotations, ``self.Y: T``/``self.Y = T(...)``/``self.Y =
  <annotated param>`` assignments, annotated locals, and a small
  forward flow for container elements (``conns =
  list(self._conns.values())`` followed by ``for conn in conns:``
  types ``conn`` from ``self._conns: dict[int, _ClientConn]``);
* **held contexts** — a statement's set of held locks follows nested
  ``with self.X:`` blocks *plus* private-method propagation: a
  ``_method`` only ever called with a lock held is analysed as holding
  it (``Daemon._handle_run`` inherits ``handle``'s lock). Methods that
  are referenced as values but never called (listener callbacks) get
  an unknown context and are exempt rather than guessed — except
  thread targets, which are known roots entered with nothing held;
* **thread roots** — methods passed as ``threading.Thread(target=...)``
  each root their reachable (via self-calls) methods in their own
  thread; public methods root in the caller's thread (``<caller>``).

Three rules consume the model:

``conc-unguarded-write``
    In a lock-owning class: an attribute written both under a held own
    lock and outside one (construction exempt) — the lock is evidently
    meant to protect it, and the unguarded write escapes. In a
    thread-*spawning* class additionally: an attribute mutated from one
    thread root and accessed from another with no common lock — the
    statically visible shape of a data race (this is what found the
    ``_ClientConn.watch_ids`` race in ``repro.daemon.server``).

``conc-lock-order``
    Build the lock-acquisition-order graph (lexical nesting plus calls
    whose resolvable callees acquire locks, followed transitively
    across classes) and report every two-lock cycle — a potential
    deadlock — and every re-acquisition of a *non-reentrant* lock
    (self-deadlock; RLocks stay quiet).

``conc-blocking-under-lock``
    Blocking calls (``recv``/``recv_bytes``/``accept``, ``sleep``,
    thread/process ``join``, ``multiprocessing.connection.wait``) made
    while holding a lock: every other thread needing that lock stalls
    for the full blocking duration. ``join`` uses an argument-shape
    heuristic so ``", ".join(parts)`` stays quiet.

Known approximations (all documented in ``docs/LINTING.md``): locks
are identified per *class attribute*, so two instances' ``wlock``
share one graph node; a thread-root label stands for *all* threads
spawned from it, and accesses whose only shared root is a single
spawn label are treated as serialised (per-instance reader threads);
iterating a dict attribute directly types the loop variable as the
*value* type; a private method also called from outside its class is
analysed with its in-class context only.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ProjectRule, qualified_name
from repro.lint.project import ClassInfo, Module, Project

__all__ = [
    "UnguardedWriteRule",
    "LockOrderRule",
    "BlockingUnderLockRule",
    "concurrency_model",
]

FAMILY = "concurrency"

#: Call targets whose result is a lock attribute when assigned to self.
LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "rlock",
    "repro.sanitize.tracked_lock": "lock",
    "repro.sanitize.tracked_rlock": "rlock",
    "repro.sanitize.tracker.tracked_lock": "lock",
    "repro.sanitize.tracker.tracked_rlock": "rlock",
}

#: Thread/process spawn constructors.
THREAD_FACTORIES = {"threading.Thread"}
PROCESS_FACTORIES = {"multiprocessing.Process",
                     "multiprocessing.context.Process"}

#: Method calls that mutate their receiver in place. ``set`` is
#: deliberately absent: ``Event.set()`` and ``Gauge.set()`` are not
#: collection mutations.
_MUTATORS = {
    "append", "appendleft", "add", "insert", "extend", "update",
    "remove", "discard", "pop", "popleft", "popitem", "clear",
    "setdefault", "sort", "reverse",
}

#: Blocking call names, matched exactly on the attribute (so
#: ``sub.recv_all()`` — a non-blocking drain — stays quiet).
_BLOCKING_ATTRS = {"recv", "recv_bytes", "accept", "sleep"}
_BLOCKING_QUALIFIED = {
    "time.sleep",
    "select.select",
    "multiprocessing.connection.wait",
}

#: Container heads whose subscript carries an element type.
_CONTAINERS = {"list", "set", "frozenset", "deque", "Deque", "List",
               "Set", "FrozenSet", "Sequence", "Iterable", "MutableSet",
               "MutableSequence"}
_DICT_HEADS = {"dict", "Dict", "Mapping", "MutableMapping",
               "OrderedDict", "defaultdict", "DefaultDict"}

#: Methods whose writes never count as unguarded: construction and
#: teardown run before/after the object is shared between threads.
_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "__post_init__",
                   "__set_name__", "__init_subclass__"}

_MAIN_ROOT = "<caller>"

#: Sentinel entry context for callback methods (referenced, not
#: called): their held set is unknowable statically.
_UNKNOWN = None


class _Access:
    """One attribute access or lock/blocking event inside a method."""

    __slots__ = ("node", "held")

    def __init__(self, node: ast.AST, held: tuple[str, ...]) -> None:
        self.node = node
        self.held = held


class _MethodScan:
    """Every event the rules need from one method body."""

    __slots__ = ("name", "fn", "writes", "reads", "acquires",
                 "self_calls", "ext_calls", "blocking", "referenced")

    def __init__(self, name: str, fn: ast.FunctionDef) -> None:
        self.name = name
        self.fn = fn
        #: (owner key, attr) -> accesses; owner key is ``"self"`` or a
        #: resolved neighbour class's qualname.
        self.writes: dict[tuple[str, str], list[_Access]] = {}
        self.reads: dict[tuple[str, str], list[_Access]] = {}
        #: ``with`` entries: (lock key, access).
        self.acquires: list[tuple[str, _Access]] = []
        #: ``self.m(...)`` calls: (method name, access).
        self.self_calls: list[tuple[str, _Access]] = []
        #: resolvable neighbour calls: (callee class, method, access).
        self.ext_calls: list[tuple[ClassInfo, str, _Access]] = []
        #: blocking calls: (display name, access).
        self.blocking: list[tuple[str, _Access]] = []
        #: ``self.<method>`` used as a value (callback registration).
        self.referenced: set[str] = set()


class _ClassModel:
    """Concurrency-relevant facts about one class."""

    __slots__ = ("info", "locks", "scans", "entry", "roots",
                 "spawns_threads", "spawns_processes", "attr_types",
                 "attr_elems")

    def __init__(self, info: ClassInfo) -> None:
        self.info = info
        #: lock attr name -> kind ("lock"/"rlock").
        self.locks: dict[str, str] = {}
        self.scans: dict[str, _MethodScan] = {}
        #: method -> frozenset of lock keys always held on entry, or
        #: None (unknown; callback methods).
        self.entry: dict[str, frozenset[str] | None] = {}
        #: method -> thread-root labels reaching it.
        self.roots: dict[str, set[str]] = {}
        self.spawns_threads = False
        self.spawns_processes = False
        #: self attr -> ClassInfo for attrs with resolvable types.
        self.attr_types: dict[str, ClassInfo] = {}
        #: self attr -> element ClassInfo for typed containers
        #: (dict values / list/set/deque elements).
        self.attr_elems: dict[str, ClassInfo] = {}

    def lock_key(self, attr: str) -> str:
        return f"{self.info.name}.{attr}"


def _peel_target(target: ast.AST) -> tuple[str, list[str]] | None:
    """Peel an assignment target / receiver chain down to
    ``(base name, [attr, ...])``; None when the base is not a Name or
    the chain has no attribute."""
    attrs: list[str] = []
    while isinstance(target, (ast.Subscript, ast.Attribute)):
        if isinstance(target, ast.Attribute):
            attrs.append(target.attr)
        target = target.value
    if not isinstance(target, ast.Name) or not attrs:
        return None
    return target.id, list(reversed(attrs))


def _element_annotation(annotation: ast.AST | None) -> ast.AST | None:
    """The element-type annotation of a container annotation: the value
    type for ``dict[K, V]``-shaped heads, the element for ``list[T]``
    and friends; None otherwise."""
    if not isinstance(annotation, ast.Subscript):
        return None
    node: ast.AST = annotation.value
    head: str | None = None
    if isinstance(node, ast.Attribute):
        head = node.attr
    elif isinstance(node, ast.Name):
        head = node.id
    if head in _DICT_HEADS:
        sl = annotation.slice
        if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
            return sl.elts[1]
        return None
    if head in _CONTAINERS:
        return annotation.slice
    return None


def _param_types(fn: ast.FunctionDef, owner: ClassInfo,
                 project: Project) -> dict[str, ClassInfo]:
    out: dict[str, ClassInfo] = {}
    args = list(fn.args.posonlyargs) + list(fn.args.args) + \
        list(fn.args.kwonlyargs)
    for arg in args:
        resolved = project.resolve_annotation(owner.module, arg.annotation)
        if resolved is not None:
            out[arg.arg] = resolved
    return out


def _self_name(fn: ast.FunctionDef) -> str:
    return fn.args.args[0].arg if fn.args.args else "self"


def _collect_locks(project: Project, model: _ClassModel) -> None:
    """Phase one: lock attributes and typed self attributes, own and
    inherited (a subclass shares its base's lock discipline). Runs for
    every class before any body is scanned, so cross-class lock
    references always resolve regardless of definition order."""
    for owner, _name, fn in project.iter_methods(model.info):
        self_name = _self_name(fn)
        params = _param_types(fn, owner, project)
        owner_imports = project.imports_of(owner.module)
        for node in ast.walk(fn):
            targets: list[ast.AST]
            value: ast.AST | None
            annotation: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
                annotation = node.annotation
            else:
                continue
            for target in targets:
                peeled = _peel_target(target)
                if peeled is None or peeled[0] != self_name or \
                        len(peeled[1]) != 1:
                    continue
                attr = peeled[1][0]
                if isinstance(value, ast.Call):
                    factory = qualified_name(value.func, owner_imports)
                    if factory in LOCK_FACTORIES:
                        model.locks.setdefault(attr,
                                               LOCK_FACTORIES[factory])
                        continue
                    ctor = project.resolve_class(owner.module, value.func)
                    if ctor is not None:
                        model.attr_types.setdefault(attr, ctor)
                if isinstance(value, ast.Name) and value.id in params:
                    model.attr_types.setdefault(attr, params[value.id])
                if annotation is not None:
                    direct = project.resolve_annotation(owner.module,
                                                        annotation)
                    if direct is not None:
                        model.attr_types.setdefault(attr, direct)
                    elem = project.resolve_annotation(
                        owner.module, _element_annotation(annotation))
                    if elem is not None:
                        model.attr_elems.setdefault(attr, elem)


def _scan_class(project: Project, model: _ClassModel,
                models: dict[str, _ClassModel]) -> None:
    """Phase two: walk each visible method body, recording accesses,
    lock acquisitions, calls, spawns and blocking calls with the
    lexically held lock set."""
    method_names = {name for _o, name, _f
                    in project.iter_methods(model.info)}
    for owner, name, fn in project.iter_methods(model.info):
        scan = _MethodScan(name, fn)
        model.scans[name] = scan
        _scan_method(project, model, models, owner, scan, method_names)
    _propagate_entry(model)
    _propagate_roots(model)


def _scan_method(project: Project, model: _ClassModel,
                 models: dict[str, _ClassModel], owner: ClassInfo,
                 scan: _MethodScan, method_names: set[str]) -> None:
    fn = scan.fn
    self_name = _self_name(fn)
    owner_imports = project.imports_of(owner.module)
    #: local name -> instance type (params, annotated locals, loop
    #: variables inferred from typed containers).
    local_types = _param_types(fn, owner, project)
    #: local name -> element type of a container-valued local.
    local_elems: dict[str, ClassInfo] = {}
    call_funcs = {id(n.func) for n in ast.walk(fn)
                  if isinstance(n, ast.Call)}

    def lock_table(owner_q: str) -> dict[str, str]:
        if owner_q == "self":
            return model.locks
        nb = models.get(owner_q)
        return nb.locks if nb is not None else {}

    def owner_key_of(base: str,
                     attrs: list[str]) -> tuple[str, str] | None:
        """Map a receiver chain to its (owner key, attribute)."""
        if base == self_name:
            if len(attrs) >= 2:
                neighbour = model.attr_types.get(attrs[0])
                if neighbour is not None:
                    return neighbour.qualname, attrs[1]
            return "self", attrs[0]
        neighbour = local_types.get(base)
        if neighbour is not None:
            return neighbour.qualname, attrs[0]
        return None

    def is_lock_attr(key: tuple[str, str]) -> bool:
        return key[1] in lock_table(key[0])

    def resolve_lock_expr(expr: ast.AST) -> str | None:
        """The lock key a ``with`` context expression acquires, if it
        is a known lock attribute of self or a typed receiver."""
        peeled = _peel_target(expr)
        if peeled is None:
            return None
        key = owner_key_of(peeled[0], peeled[1])
        if key is None or not is_lock_attr(key):
            return None
        owner_q, attr = key
        if owner_q == "self":
            return model.lock_key(attr)
        return f"{owner_q.rsplit('.', 1)[-1]}.{attr}"

    def record_write(node: ast.AST, target: ast.AST,
                     held: tuple[str, ...]) -> None:
        peeled = _peel_target(target)
        if peeled is None:
            return
        key = owner_key_of(peeled[0], peeled[1])
        if key is not None and not is_lock_attr(key):
            scan.writes.setdefault(key, []).append(_Access(node, held))

    def element_of(expr: ast.AST) -> ClassInfo | None:
        """Element type of an iterable expression, for loop-variable
        inference."""
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and \
                    func.id in ("list", "sorted", "tuple", "set",
                                "iter", "reversed") and expr.args:
                return element_of(expr.args[0])
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("values", "items", "copy"):
                return element_of(func.value)
        if isinstance(expr, ast.Name):
            return local_elems.get(expr.id)
        peeled = _peel_target(expr)
        if peeled is not None and peeled[0] == self_name and \
                len(peeled[1]) == 1:
            return model.attr_elems.get(peeled[1][0])
        return None

    def note_spawn(node: ast.Call, factory: str) -> None:
        if factory in PROCESS_FACTORIES:
            model.spawns_processes = True
            return
        model.spawns_threads = True
        for kw in node.keywords:
            if kw.arg == "target":
                peeled = _peel_target(kw.value)
                if peeled is not None and peeled[0] == self_name and \
                        len(peeled[1]) == 1:
                    target_name = peeled[1][0]
                    model.roots.setdefault(target_name,
                                           set()).add(target_name)

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                visit(item.context_expr, held)
                lock_key = resolve_lock_expr(item.context_expr)
                if lock_key is not None:
                    scan.acquires.append((lock_key, _Access(node, inner)))
                    if lock_key not in inner:
                        inner = inner + (lock_key,)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested callables run at an unknown time under an unknown
            # lock set; stay quiet rather than guess.
            return

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                record_write(node, target, held)
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                elem = element_of(node.value)
                if elem is not None:
                    local_elems[node.targets[0].id] = elem
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                direct = project.resolve_annotation(owner.module,
                                                    node.annotation)
                if direct is not None:
                    local_types[node.target.id] = direct
        elif isinstance(node, ast.For):
            elem = element_of(node.iter)
            if elem is not None:
                if isinstance(node.target, ast.Name):
                    local_types[node.target.id] = elem
                elif isinstance(node.target, ast.Tuple) and \
                        len(node.target.elts) == 2 and \
                        isinstance(node.target.elts[1], ast.Name) and \
                        isinstance(node.iter, ast.Call) and \
                        isinstance(node.iter.func, ast.Attribute) and \
                        node.iter.func.attr == "items":
                    local_types[node.target.elts[1].id] = elem
        elif isinstance(node, ast.Call):
            func = node.func
            name_q = qualified_name(func, owner_imports)
            if isinstance(func, ast.Attribute):
                peeled = _peel_target(func)
                if peeled is not None:
                    base, attrs = peeled
                    if base == self_name and len(attrs) == 1 and \
                            attrs[0] in method_names:
                        scan.self_calls.append(
                            (attrs[0], _Access(node, held)))
                    else:
                        recv: ClassInfo | None = None
                        if base == self_name and len(attrs) == 2:
                            recv = model.attr_types.get(attrs[0])
                        elif len(attrs) == 1:
                            recv = local_types.get(base)
                        if recv is not None and \
                                attrs[-1] in recv.methods:
                            scan.ext_calls.append(
                                (recv, attrs[-1], _Access(node, held)))
                    if attrs[-1] in _MUTATORS and len(attrs) >= 2:
                        key = owner_key_of(base, attrs[:-1])
                        if key is not None and not is_lock_attr(key):
                            scan.writes.setdefault(key, []).append(
                                _Access(node, held))
                blocked = None
                if func.attr in _BLOCKING_ATTRS:
                    blocked = func.attr
                elif func.attr == "join" and _joins_thread(node):
                    blocked = "join"
                if name_q in _BLOCKING_QUALIFIED:
                    blocked = name_q
                if blocked is not None:
                    scan.blocking.append((blocked, _Access(node, held)))
            elif isinstance(func, ast.Name):
                if name_q in _BLOCKING_QUALIFIED:
                    scan.blocking.append((name_q, _Access(node, held)))
            if name_q in THREAD_FACTORIES or name_q in PROCESS_FACTORIES:
                note_spawn(node, name_q)
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load):
            peeled = _peel_target(node)
            if peeled is not None:
                key = owner_key_of(peeled[0], peeled[1])
                if key is not None and not is_lock_attr(key):
                    scan.reads.setdefault(key, []).append(
                        _Access(node, held))
                if peeled[0] == self_name and len(peeled[1]) == 1 and \
                        peeled[1][0] in method_names and \
                        id(node) not in call_funcs:
                    scan.referenced.add(peeled[1][0])

        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.body:
        visit(stmt, ())


def _joins_thread(node: ast.Call) -> bool:
    """``x.join(...)`` argument shapes that mean Thread/Process.join:
    no positional args (``t.join()``, ``t.join(timeout=2)``) or one
    numeric timeout — one non-numeric positional is
    ``str.join(iterable)`` / ``os.path.join`` territory."""
    if not node.args:
        return True
    if len(node.args) == 1:
        arg = node.args[0]
        return isinstance(arg, ast.Constant) and \
            isinstance(arg.value, (int, float))
    return False


def _is_entry_point(name: str) -> bool:
    """Callable from outside the class: public names and dunders."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _propagate_entry(model: _ClassModel) -> None:
    """Fixpoint: a private method's entry context is the intersection
    of the held sets at its in-class call sites (callers' own entry
    contexts included). Referenced-as-value methods are unknown
    (callbacks) unless they are thread targets, which enter with
    nothing held."""
    referenced: set[str] = set()
    call_sites: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for caller, scan in model.scans.items():
        referenced |= scan.referenced
        for callee, access in scan.self_calls:
            call_sites.setdefault(callee, []).append(
                (caller, access.held))

    all_keys = frozenset(model.lock_key(a) for a in model.locks)
    for name in model.scans:
        if name in referenced and name not in model.roots:
            model.entry[name] = _UNKNOWN
        elif _is_entry_point(name) or name in model.roots or \
                name not in call_sites:
            model.entry[name] = frozenset()
        else:
            model.entry[name] = all_keys  # optimistic; narrowed below

    changed = True
    while changed:
        changed = False
        for name, sites in call_sites.items():
            current = model.entry.get(name)
            if current is _UNKNOWN or current == frozenset():
                continue
            acc: frozenset[str] | None = None
            for caller, held in sites:
                caller_entry = model.entry.get(caller)
                if caller_entry is None:
                    caller_entry = frozenset()
                site_held = frozenset(held) | caller_entry
                acc = site_held if acc is None else (acc & site_held)
            acc = acc if acc is not None else frozenset()
            if acc != current:
                model.entry[name] = acc
                changed = True


def _propagate_roots(model: _ClassModel) -> None:
    """Which thread roots reach each method, via in-class calls."""
    for name in model.scans:
        roots = model.roots.setdefault(name, set())
        if _is_entry_point(name):
            roots.add(_MAIN_ROOT)
    changed = True
    while changed:
        changed = False
        for caller, scan in model.scans.items():
            caller_roots = model.roots.get(caller, set())
            for callee, _access in scan.self_calls:
                callee_roots = model.roots.get(callee)
                if callee_roots is None:
                    continue
                before = len(callee_roots)
                callee_roots |= caller_roots
                if len(callee_roots) != before:
                    changed = True


def _effective_held(model: _ClassModel, method: str,
                    access: _Access) -> frozenset[str] | None:
    """Locks provably held at an access; None when the method's entry
    context is unknown (callback) — the access is then exempt."""
    entry = model.entry.get(method, frozenset())
    if entry is None:
        return None
    return frozenset(access.held) | entry


def concurrency_model(project: Project) -> dict[str, _ClassModel]:
    """The per-class concurrency models of ``project``, memoised on
    the project (all three rules share one analysis pass)."""
    cached = project.cache.get("concurrency")
    if cached is None:
        models: dict[str, _ClassModel] = {}
        infos = list(project.iter_classes())
        for info in infos:
            models[info.qualname] = _ClassModel(info)
        for info in infos:
            _collect_locks(project, models[info.qualname])
        for info in infos:
            _scan_class(project, models[info.qualname], models)
        cached = models
        project.cache["concurrency"] = cached
    return cached  # type: ignore[return-value]


def _own_keys(model: _ClassModel) -> frozenset[str]:
    return frozenset(model.lock_key(a) for a in model.locks)


def _fmt_roots(roots: frozenset[str] | set[str]) -> str:
    return "/".join(sorted(roots))


class UnguardedWriteRule(ProjectRule):
    id = "conc-unguarded-write"
    family = FAMILY
    description = ("attributes written both under and outside a class's "
                   "lock, or shared across thread roots with no common "
                   "lock")

    def check_project(self, project: Project) -> Iterator[Finding]:
        models = concurrency_model(project)
        for qualname in sorted(models):
            model = models[qualname]
            if model.locks:
                yield from self._check_discipline(model)
            if model.spawns_threads:
                yield from self._check_thread_roots(model)

    def _check_discipline(self, model: _ClassModel) -> Iterator[Finding]:
        """Writes to one attribute split between locked and unlocked
        contexts within a lock-owning class."""
        own = _own_keys(model)
        per_attr: dict[str, tuple[list[_Access], list[_Access]]] = {}
        for method, scan in model.scans.items():
            if method in _EXEMPT_METHODS:
                continue
            for (owner_q, attr), accesses in scan.writes.items():
                if owner_q != "self":
                    continue
                guarded, unguarded = per_attr.setdefault(attr, ([], []))
                for access in accesses:
                    held = _effective_held(model, method, access)
                    if held is None:
                        continue  # callback context; exempt
                    (guarded if held & own else unguarded).append(access)
        for attr in sorted(per_attr):
            guarded, unguarded = per_attr[attr]
            if guarded and unguarded:
                worst = min(unguarded,
                            key=lambda a: getattr(a.node, "lineno", 0))
                lock_names = ", ".join(
                    model.lock_key(a) for a in sorted(model.locks))
                yield self.finding(
                    model.info.module, worst.node,
                    f"{model.info.name}.{attr} is written under "
                    f"{lock_names} elsewhere but written here with no "
                    "lock held; every write to a lock-protected "
                    "attribute must hold the lock")

    def _check_thread_roots(self, model: _ClassModel) -> \
            Iterator[Finding]:
        """In a thread-spawning class: one thread root mutates, another
        accesses, and no lock is common to both sides."""
        accesses: dict[tuple[str, str],
                       list[tuple[str, _Access, bool]]] = {}
        for method, scan in model.scans.items():
            if method in _EXEMPT_METHODS:
                continue
            for key, events in scan.writes.items():
                for access in events:
                    accesses.setdefault(key, []).append(
                        (method, access, True))
            for key, events in scan.reads.items():
                for access in events:
                    accesses.setdefault(key, []).append(
                        (method, access, False))

        for owner_q, attr in sorted(accesses):
            events = accesses[(owner_q, attr)]
            witnesses = []
            for method, access, is_write in events:
                held = _effective_held(model, method, access)
                if held is None:
                    continue
                witnesses.append(
                    (method, access, is_write, held,
                     frozenset(model.roots.get(method, set()))))
            mutations = [w for w in witnesses if w[2]]
            if not mutations:
                continue
            fired = False
            for m_method, m_access, _w, m_held, m_roots in mutations:
                if fired:
                    break
                for o_method, o_access, _ow, o_held, o_roots \
                        in witnesses:
                    if o_access is m_access:
                        continue
                    if not m_roots or not o_roots:
                        continue
                    if m_roots == o_roots and len(m_roots) == 1:
                        continue  # one thread (or one per instance)
                    if m_held & o_held:
                        continue  # a common lock serialises them
                    display = attr if owner_q == "self" else \
                        f"{owner_q.rsplit('.', 1)[-1]}.{attr}"
                    yield self.finding(
                        model.info.module, m_access.node,
                        f"{model.info.name} spawns threads and "
                        f"{display} is mutated in {m_method}() (thread "
                        f"roots {_fmt_roots(m_roots)}) while "
                        f"{o_method}() (thread roots "
                        f"{_fmt_roots(o_roots)}) accesses it with no "
                        "common lock; this is the statically visible "
                        "shape of a data race")
                    fired = True
                    break


def _transitive_acquires(models: dict[str, _ClassModel], qualname: str,
                         method: str,
                         _seen: set[tuple[str, str]] | None = None) \
        -> frozenset[str]:
    """Every lock key a call to ``qualname.method`` may acquire,
    following in-class and resolvable cross-class calls."""
    seen = _seen if _seen is not None else set()
    key = (qualname, method)
    if key in seen:
        return frozenset()
    seen.add(key)
    model = models.get(qualname)
    if model is None:
        return frozenset()
    scan = model.scans.get(method)
    if scan is None:
        return frozenset()
    out = {lock for lock, _access in scan.acquires}
    for callee, _access in scan.self_calls:
        out |= _transitive_acquires(models, qualname, callee, seen)
    for recv, callee, _access in scan.ext_calls:
        out |= _transitive_acquires(models, recv.qualname, callee, seen)
    return frozenset(out)


class LockOrderRule(ProjectRule):
    id = "conc-lock-order"
    family = FAMILY
    description = ("lock-acquisition-order cycles (potential deadlock) "
                   "and re-acquisition of non-reentrant locks")

    def check_project(self, project: Project) -> Iterator[Finding]:
        models = concurrency_model(project)
        kinds: dict[str, str] = {}
        for model in models.values():
            for attr, kind in model.locks.items():
                kinds.setdefault(model.lock_key(attr), kind)

        #: held key -> acquired key -> (module, node) first witness.
        edges: dict[str, dict[str, tuple[Module, ast.AST]]] = {}
        reported_self: set[int] = set()
        for qualname in sorted(models):
            model = models[qualname]
            for method, scan in model.scans.items():
                events: list[tuple[frozenset[str], _Access]] = []
                for lock, access in scan.acquires:
                    events.append((frozenset({lock}), access))
                for callee, access in scan.self_calls:
                    events.append((
                        _transitive_acquires(models, qualname, callee),
                        access))
                for recv, callee, access in scan.ext_calls:
                    events.append((
                        _transitive_acquires(models, recv.qualname,
                                             callee),
                        access))
                for acquired, access in events:
                    held = _effective_held(model, method, access)
                    if held is None:
                        held = frozenset(access.held)
                    for new in acquired:
                        for have in held:
                            if have == new:
                                if kinds.get(new) == "lock" and \
                                        id(access.node) not in \
                                        reported_self:
                                    reported_self.add(id(access.node))
                                    yield self.finding(
                                        model.info.module, access.node,
                                        f"{new} is acquired again "
                                        "while already held; it is a "
                                        "non-reentrant Lock, so this "
                                        "self-deadlocks (use an RLock "
                                        "or drop the inner acquire)")
                                continue
                            edges.setdefault(have, {}).setdefault(
                                new, (model.info.module, access.node))

        yield from self._report_cycles(edges)

    def _report_cycles(
            self, edges: dict[str, dict[str, tuple[Module, ast.AST]]]) \
            -> Iterator[Finding]:
        reported: set[frozenset[str]] = set()
        for a in sorted(edges):
            for b in sorted(edges[a]):
                if a >= b or b not in edges or a not in edges[b]:
                    continue
                cycle = frozenset((a, b))
                if cycle in reported:
                    continue
                reported.add(cycle)
                mod_ab, node_ab = edges[a][b]
                mod_ba, node_ba = edges[b][a]
                yield self.finding(
                    mod_ab, node_ab,
                    f"locks {a} and {b} are acquired in both orders "
                    f"({a} -> {b} here; {b} -> {a} at {mod_ba.path}:"
                    f"{getattr(node_ba, 'lineno', '?')}); two threads "
                    "taking them in opposite orders deadlock")


class BlockingUnderLockRule(ProjectRule):
    id = "conc-blocking-under-lock"
    family = FAMILY
    description = ("blocking calls (recv/accept/sleep/join) made while "
                   "holding a lock stall every thread needing it")

    def check_project(self, project: Project) -> Iterator[Finding]:
        models = concurrency_model(project)
        for qualname in sorted(models):
            model = models[qualname]
            for method, scan in model.scans.items():
                for name, access in scan.blocking:
                    held = _effective_held(model, method, access)
                    if not held:
                        continue
                    yield self.finding(
                        model.info.module, access.node,
                        f"{name}() blocks while {_fmt_roots(held)} is "
                        "held; every thread waiting on that lock "
                        "stalls for the full blocking duration — move "
                        "the call outside the critical section")
