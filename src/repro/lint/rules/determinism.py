"""Determinism rules.

The repo's headline guarantees — bit-identical golden parity across
``shards ∈ {1, 2, 4}`` and the content-keyed :class:`RunExecutor`
result cache — hold only if simulation results are a pure function of
the seed and the spec. Anything that samples the host (wall clock,
process environment, global RNG state) silently breaks both. These
rules flag every such source; the handful of legitimate uses (CLI
plumbing, cache-directory discovery) carry explicit
``# repro-lint: disable=...`` suppressions so each one is a reviewed
decision, not an accident.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from repro.lint.core import Finding, Module, Rule, qualified_name
from repro.lint.project import Project

__all__ = [
    "AUDITED_CLOCK_MODULES",
    "OBS_CLOCK_MODULES",
    "is_obs_clock_module",
    "WallClockRule",
    "DatetimeRule",
    "StdlibRandomRule",
    "UnseededRngRule",
    "NumpyGlobalRngRule",
    "EnvironReadRule",
]

FAMILY = "determinism"

#: The audited host-clock modules — the only places allowed to read
#: host clocks. Three layers legitimately touch wall time:
#: observability (a trace of where wall time goes is by definition a
#: host-clock measurement — :mod:`repro.obs.hostclock`), the daemon's
#: socket server, which paces simulated epochs against real time
#: (:mod:`repro.daemon.hostio`), and the shard balancer's step timer
#: (:mod:`repro.runtime.hosttime`), whose readings may steer node
#: *placement* only — a decision the lockstep parity contract proves
#: invisible to simulated results. Each allowance confines those reads
#: to a module reviewed against its contract (clock readings never feed
#: a simulated quantity, seed, or simulated control decision), so the
#: clock rules keep protecting everything else without blanket per-line
#: suppressions. Matched by path suffix so the rules work from any
#: checkout root. Clock reads only: entropy, environment and RNG rules
#: still apply inside these modules.
AUDITED_CLOCK_MODULES: tuple[str, ...] = (
    "repro/obs/hostclock.py",
    "repro/daemon/hostio.py",
    "repro/runtime/hosttime.py",
)

#: Backwards-compatible alias (pre-daemon name).
OBS_CLOCK_MODULES: tuple[str, ...] = AUDITED_CLOCK_MODULES


def is_obs_clock_module(path: str) -> bool:
    """True when ``path`` is an audited host-clock module."""
    normalized = path.replace(os.sep, "/")
    return normalized.endswith(AUDITED_CLOCK_MODULES)

#: ``time`` module calls that read the host clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
}

#: ``datetime`` constructors that read the host clock.
_DATETIME_NOW = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: numpy calls that touch the *global* (unseedable-per-run) RNG.
_NUMPY_GLOBAL = {
    "numpy.random.seed", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.random", "numpy.random.randint", "numpy.random.choice",
    "numpy.random.normal", "numpy.random.uniform", "numpy.random.shuffle",
    "numpy.random.permutation",
}

#: Other host-entropy sources.
_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
            "secrets.token_hex", "secrets.randbelow", "secrets.choice"}


def _called_names(module: Module) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, module.imports)
            if name is not None:
                yield node, name


class WallClockRule(Rule):
    id = "det-wallclock"
    family = FAMILY
    description = ("host wall-clock reads (time.time & friends) inside "
                   "simulation code; use the engine clock instead")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        clock_allowed = is_obs_clock_module(module.path)
        for node, name in _called_names(module):
            if name in _WALL_CLOCK:
                if clock_allowed:
                    continue  # the audited obs clock module
                yield self.finding(
                    module, node,
                    f"{name}() reads the host clock; simulated time comes "
                    "from the engine clock (repro.runtime.clock)")
            elif name in _ENTROPY:
                yield self.finding(
                    module, node,
                    f"{name}() draws host entropy; results must be a pure "
                    "function of the seed")


class DatetimeRule(Rule):
    id = "det-datetime"
    family = FAMILY
    description = "datetime.now()/today() reads inside simulation code"

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        if is_obs_clock_module(module.path):
            return  # the audited obs clock module (clock reads only)
        for node, name in _called_names(module):
            if name in _DATETIME_NOW or (
                    name.split(".")[-1] in ("now", "utcnow")
                    and name.startswith("datetime.")):
                yield self.finding(
                    module, node,
                    f"{name}() reads the host clock; stamp results outside "
                    "the simulation or derive times from the engine clock")


class StdlibRandomRule(Rule):
    id = "det-random"
    family = FAMILY
    description = ("stdlib random module use; all randomness must flow "
                   "through seeded numpy Generators")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for node, name in _called_names(module):
            if name == "random" or name.startswith("random."):
                yield self.finding(
                    module, node,
                    f"{name}() uses the process-global stdlib RNG; use a "
                    "seeded np.random.default_rng([...]) stream")


class UnseededRngRule(Rule):
    id = "det-unseeded-rng"
    family = FAMILY
    description = "np.random.default_rng() without an explicit seed"

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for node, name in _called_names(module):
            if name != "numpy.random.default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "default_rng() without a seed draws OS entropy; pass a "
                    "seed sequence such as [base_seed, stream_index]")
            elif any(isinstance(a, ast.Constant) and a.value is None
                     for a in node.args):
                yield self.finding(
                    module, node,
                    "default_rng(None) draws OS entropy; pass an explicit "
                    "seed sequence")


class NumpyGlobalRngRule(Rule):
    id = "det-np-global"
    family = FAMILY
    description = "numpy global-state RNG calls (np.random.rand, .seed, ...)"

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for node, name in _called_names(module):
            if name in _NUMPY_GLOBAL:
                yield self.finding(
                    module, node,
                    f"{name}() mutates/reads numpy's global RNG, which is "
                    "shared across the process; use a per-run "
                    "default_rng([...]) stream")


class EnvironReadRule(Rule):
    id = "det-environ"
    family = FAMILY
    description = ("os.environ reads; simulation behaviour must not depend "
                   "on ambient process state")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, module.imports)
                if name in ("os.getenv", "os.environ.get", "os.environ.pop"):
                    yield self.finding(
                        module, node,
                        f"{name}() makes behaviour depend on the host "
                        "environment; plumb configuration explicitly")
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, ast.Load):
                name = qualified_name(node.value, module.imports)
                if name == "os.environ":
                    yield self.finding(
                        module, node,
                        "os.environ[...] read makes behaviour depend on the "
                        "host environment; plumb configuration explicitly")
