"""Shard-boundary picklability rules.

Payloads that cross a process boundary — ``ShardedLockstep`` pipe
messages, ``RunExecutor`` pool work items/results, ``NodeCheckpoint``
blobs — are pickled. A field typed as a lambda, lock, open file, or a
live ``Generator`` turns into a runtime ``PicklingError`` deep inside a
worker, long after the type was defined. This rule moves that failure
to lint time.

Boundary types are identified by naming convention: any ``@dataclass``
whose name ends in ``Spec``, ``Request``, ``Reply``, ``Result``,
``Checkpoint``, ``Telemetry``, ``Message``, ``Payload``, ``Plan`` or
``Migration`` is wire format (the repo's existing wire types —
``StackSpec``, ``StepRequest``, ``StepResult``, ``NodeTelemetry``,
``NodeCheckpoint``, ``Message``, the elastic layer's
``RunCheckpoint``/``MigrationPlan``/``NodeMigration``, and the daemon
protocol's ``*Request``/``*Reply``/``*Telemetry`` dataclasses — all
follow it). Declared fields of such classes must stay picklable by
construction.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.core import Finding, Module, Rule
from repro.lint.project import Project

__all__ = ["BoundaryFieldRule", "BOUNDARY_NAME_RE"]

FAMILY = "picklable"

#: Class names treated as process-boundary wire types.
BOUNDARY_NAME_RE = re.compile(
    r"(Spec|Request|Reply|Result|Checkpoint|Telemetry|Message|Payload"
    r"|Plan|Migration)$")

#: Type names that cannot cross a pickle boundary (matched against every
#: identifier inside the field annotation, so ``Callable[[int], float]``,
#: ``np.random.Generator`` and ``threading.Lock`` are all caught).
_UNPICKLABLE = {
    "Callable": "callables (functions, lambdas, bound methods)",
    "Lock": "locks",
    "RLock": "locks",
    "Condition": "synchronization primitives",
    "Semaphore": "synchronization primitives",
    "BoundedSemaphore": "synchronization primitives",
    "Event": "synchronization primitives",
    "Thread": "threads",
    "Process": "processes",
    "Generator": "live generator objects",
    "Iterator": "live iterator objects",
    "IO": "open file objects",
    "TextIO": "open file objects",
    "BinaryIO": "open file objects",
    "socket": "sockets",
    "Connection": "pipe connections",
}

#: Fully-qualified spellings of the same types, matched after pushing
#: the annotation through the module's import aliases — so
#: ``from threading import Lock as L`` or ``import threading as t``
#: cannot smuggle a lock past the bare-name table.
_UNPICKLABLE_QUALIFIED = {
    "threading.Lock": "locks",
    "threading.RLock": "locks",
    "threading.Condition": "synchronization primitives",
    "threading.Event": "synchronization primitives",
    "threading.Semaphore": "synchronization primitives",
    "threading.Thread": "threads",
    "multiprocessing.Process": "processes",
    "multiprocessing.connection.Connection": "pipe connections",
    "socket.socket": "sockets",
}


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else None
        if name == "dataclass":
            return True
    return False


def _annotation_idents(annotation: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node, node.id
        elif isinstance(node, ast.Attribute):
            yield node, node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # string ("forward reference") annotations: parse and recurse
            try:
                sub = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                continue
            yield from _annotation_idents(sub)


class BoundaryFieldRule(Rule):
    id = "pickle-boundary-field"
    family = FAMILY
    description = ("process-boundary dataclasses must not declare "
                   "unpicklable fields (lambdas, locks, files, live "
                   "generators)")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or \
                    not BOUNDARY_NAME_RE.search(cls.name) or \
                    not _is_dataclass(cls):
                continue
            for item in cls.body:
                if not isinstance(item, ast.AnnAssign) or \
                        not isinstance(item.target, ast.Name):
                    continue
                field_name = item.target.id
                for node, ident in _annotation_idents(item.annotation):
                    reason = _UNPICKLABLE.get(ident)
                    if reason is None and isinstance(
                            node, (ast.Name, ast.Attribute)):
                        # aliased spellings: resolve the chain through
                        # the module's imports and match qualified
                        qualified = project.resolve_name(
                            module, ident) if isinstance(node, ast.Name) \
                            else None
                        reason = _UNPICKLABLE_QUALIFIED.get(
                            qualified) if qualified else None
                    if reason is not None:
                        yield self.finding(
                            module, item,
                            f"{cls.name}.{field_name} is typed {ident}; "
                            f"{reason} cannot cross the "
                            "pickle boundary this class is shipped over")
                        break
                if isinstance(item.value, ast.Lambda):
                    yield self.finding(
                        module, item,
                        f"{cls.name}.{field_name} defaults to a lambda, "
                        "which cannot cross the pickle boundary this class "
                        "is shipped over")
