"""Physical-unit discipline rules.

The paper's model (Eqs. 1-7) mixes instantaneous power (watts), energy
over a window (joules), clock rates (hertz) and durations (seconds);
the simulator's RAPL path converts between all four. A watts-vs-joules
slip type-checks fine and produces plausible-looking numbers, so the
only static handle is naming: quantities carry their unit in the name
(``pkg_joules``, ``control_interval``, ``_last_time``, the ``_w`` /
``_j`` / ``_hz`` / ``_s`` suffixes).

Two rules ride on that vocabulary:

* ``units-suffix`` — a single name must not claim two different units
  (``energy_w``, ``power_j``);
* ``units-mix`` — additive arithmetic (``+``, ``-``, comparisons) must
  not combine names of different units; multiplying or dividing is the
  conversion path and stays legal (``watts * dt`` is joules).

Names the vocabulary cannot classify are left alone — the rules only
fire when *both* sides of an operation identify their unit and the
units disagree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, Module, Rule
from repro.lint.project import Project

__all__ = ["UnitSuffixRule", "UnitMixRule", "classify_name"]

FAMILY = "units"

#: Exact-token unit suffixes (only meaningful with a qualifying prefix:
#: a bare ``w`` or ``s`` is a loop variable, not a quantity).
_SUFFIXES = {
    "w": "watts", "watts": "watts",
    "j": "joules", "joules": "joules",
    "hz": "hertz",
    "s": "seconds", "sec": "seconds", "secs": "seconds",
    "seconds": "seconds",
}

#: Whole-word unit vocabulary (matched against any ``_``-token).
_WORDS = {
    "power": "watts", "watts": "watts", "wattage": "watts", "tdp": "watts",
    "energy": "joules", "joules": "joules",
    "freq": "hertz", "frequency": "hertz", "hz": "hertz",
    "seconds": "seconds", "interval": "seconds", "duration": "seconds",
    "elapsed": "seconds", "dt": "seconds", "now": "seconds",
    "time": "seconds", "timeout": "seconds", "period": "seconds",
}


def units_of(name: str) -> set[str]:
    """Every unit a name's tokens claim (normally zero or one)."""
    tokens = [t for t in name.lower().split("_") if t]
    units = {_WORDS[t] for t in tokens if t in _WORDS}
    if len(tokens) > 1 and tokens[-1] in _SUFFIXES:
        units.add(_SUFFIXES[tokens[-1]])
    return units


def classify_name(name: str) -> str | None:
    """The unit a name unambiguously carries, or None."""
    units = units_of(name)
    return next(iter(units)) if len(units) == 1 else None


def _expr_unit(node: ast.AST) -> str | None:
    """Infer the unit of an expression, or None when unknown/mixed.

    Only name-shaped leaves carry units; multiplication and division
    are unit conversions and deliberately return None.
    """
    if isinstance(node, ast.Name):
        return classify_name(node.id)
    if isinstance(node, ast.Attribute):
        return classify_name(node.attr)
    if isinstance(node, ast.UnaryOp):
        return _expr_unit(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = _expr_unit(node.left), _expr_unit(node.right)
        return left if left == right else None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "abs" and len(node.args) == 1:
            return _expr_unit(node.args[0])
        if node.func.id in ("min", "max") and node.args and not node.keywords:
            arg_units = {_expr_unit(a) for a in node.args}
            if len(arg_units) == 1:
                return arg_units.pop()
    return None


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ast.unparse(node)


class UnitSuffixRule(Rule):
    id = "units-suffix"
    family = FAMILY
    description = ("a name must not claim two different physical units "
                   "(e.g. energy_w)")

    def _targets(self, module: Module) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._names(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                yield from self._names(node.target)
            elif isinstance(node, ast.FunctionDef):
                for arg in (node.args.posonlyargs + node.args.args +
                            node.args.kwonlyargs):
                    yield arg, arg.arg

    @staticmethod
    def _names(target: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(target, ast.Name):
            yield target, target.id
        elif isinstance(target, ast.Attribute):
            yield target, target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from UnitSuffixRule._names(elt)

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        seen: set[tuple[int, str]] = set()
        for node, name in self._targets(module):
            units = units_of(name)
            if len(units) > 1:
                key = (getattr(node, "lineno", 0), name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    module, node,
                    f"{name!r} claims conflicting units "
                    f"({', '.join(sorted(units))}); rename it so the "
                    "quantity's unit is unambiguous")


class UnitMixRule(Rule):
    id = "units-mix"
    family = FAMILY
    description = ("additive arithmetic and comparisons must not mix "
                   "watts/joules/hertz/seconds-named quantities")

    def check(self, module: Module,
              project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and \
                    isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._pair(module, node, node.left, node.right,
                                      "+" if isinstance(node.op, ast.Add)
                                      else "-")
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._pair(module, node, node.target, node.value,
                                      "+=" if isinstance(node.op, ast.Add)
                                      else "-=")
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    yield from self._pair(module, node, left, right,
                                          "compared with")

    def _pair(self, module: Module, node: ast.AST, left: ast.AST,
              right: ast.AST, op: str) -> Iterator[Finding]:
        lu, ru = _expr_unit(left), _expr_unit(right)
        if lu is not None and ru is not None and lu != ru:
            yield self.finding(
                module, node,
                f"{_describe(left)} ({lu}) {op} {_describe(right)} ({ru}) "
                "mixes units; convert explicitly (e.g. watts * seconds -> "
                "joules) before combining")
