"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-scanning UIs ingest — GitHub's code-scanning tab annotates
pull-request diffs directly from an uploaded SARIF file. This module
renders a finished lint run (findings plus per-file errors) as one
SARIF ``run``; it adds no third dependency, just the minimal subset of
the schema those consumers require:

* ``tool.driver.rules`` — one descriptor per *registered* rule (not
  just the ones that fired), so rule metadata is stable across runs;
* ``results`` — one per finding, ``level: error`` (every repro-lint
  finding is a correctness problem, not a style nit), with a physical
  location carrying a POSIX-style relative URI and 1-based line/column;
* ``invocations[0].toolExecutionNotifications`` — parse/read errors,
  which are not findings but must not vanish from the report.

The CLI front-end is ``python -m repro.lint --format sarif``; text and
json formats are unchanged.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.core import Finding, Rule

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _uri(path: str) -> str:
    """Relative POSIX-style URI for a lint path."""
    norm = path.replace("\\", "/")
    while norm.startswith("./"):
        norm = norm[2:]
    return norm


def _rule_descriptor(rule: Rule) -> dict:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
        "properties": {"family": rule.family},
    }


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": _uri(finding.path)},
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "properties": {"family": finding.family},
    }


def to_sarif(findings: Iterable[Finding], rules: Iterable[Rule],
             errors: Iterable[str] = ()) -> dict:
    """One SARIF log (as a JSON-ready dict) for a finished lint run."""
    notifications = [
        {"level": "error", "message": {"text": error}}
        for error in errors
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro/docs/LINTING.md",
                "rules": [_rule_descriptor(r) for r in rules],
            },
        },
        "results": [_result(f) for f in findings],
        "invocations": [{
            "executionSuccessful": not notifications,
            "toolExecutionNotifications": notifications,
        }],
    }
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
