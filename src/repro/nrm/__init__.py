"""Node resource manager (NRM).

The Argo NRM (paper Section II) enforces a node power budget received
from higher levels of the machine hierarchy while watching application
performance. This subpackage provides:

* :mod:`repro.nrm.schemes` — the paper's dynamic power-capping schedules
  (linear decrease, step function, jagged edge; Section V-B),
* :mod:`repro.nrm.daemon` — the *power-policy* background daemon that
  monitors power and applies the selected schedule once per second,
* :mod:`repro.nrm.policies` — dynamic policies from the paper's
  motivation: tracking a shrinking budget, and holding a progress floor
  using the model's inverse,
* :mod:`repro.nrm.hierarchy` — system -> job -> node power budget
  distribution.
"""

from repro.nrm.daemon import PowerPolicyDaemon
from repro.nrm.estimator import OnlineBetaEstimator
from repro.nrm.imbalance import ImbalanceEnergyPolicy
from repro.nrm.phase_aware import PhaseAwareCapPolicy
from repro.nrm.schemes import (
    FixedCapSchedule,
    JaggedEdgeSchedule,
    LinearDecreaseSchedule,
    StepSchedule,
    UncappedSchedule,
)

__all__ = [
    "PowerPolicyDaemon",
    "OnlineBetaEstimator",
    "ImbalanceEnergyPolicy",
    "PhaseAwareCapPolicy",
    "LinearDecreaseSchedule",
    "StepSchedule",
    "JaggedEdgeSchedule",
    "FixedCapSchedule",
    "UncappedSchedule",
]
