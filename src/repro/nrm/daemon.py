"""The *power-policy* daemon (paper Section V-B).

"The power-policy tool runs as a background daemon on the node. It
monitors power usage and applies the selected dynamic power-capping
scheme on the package domain once every second."

The daemon talks to the hardware exactly as the paper's tool does: it
polls energy and programs limits through the libmsr-style API (which
goes through msr-safe's whitelist to the RAPL MSRs), and records the
power and cap series the figures are drawn from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, check_snapshot_version
from repro.libmsr import LibMSR
from repro.nrm.schemes import CapSchedule
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["PowerPolicyDaemon"]

#: Sentinel distinguishing "nothing applied yet" from "uncapped" (None).
_UNSET = object()


class PowerPolicyDaemon:
    """Applies a :class:`~repro.nrm.schemes.CapSchedule` once per
    ``interval`` and logs power/cap telemetry.

    Parameters
    ----------
    engine:
        Engine providing the periodic timer.
    libmsr:
        Hardware access (energy polling + power-limit programming).
    schedule:
        The capping schedule; elapsed time is measured from daemon start.
    interval:
        Control period in seconds (the paper's tool uses 1 s).
    """

    def __init__(self, engine: "Engine", libmsr: LibMSR,
                 schedule: CapSchedule, *, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.libmsr = libmsr
        self.schedule = schedule
        self.interval = interval
        self.power_series = TimeSeries("package-power")
        self.cap_series = TimeSeries("package-cap")
        self._start = engine.clock.now
        self._applied: object = _UNSET
        self._tdp = libmsr.get_tdp()
        # Apply the schedule's t=0 state immediately, then tick periodically.
        self._apply(engine.clock.now)
        self.libmsr.poll_power()  # prime the energy baseline
        self._timer = engine.add_timer(interval, self._tick, period=interval)

    # ------------------------------------------------------------------

    def elapsed(self, now: float) -> float:
        """Daemon-relative time used to index the schedule."""
        return now - self._start

    def _apply(self, now: float) -> None:
        cap = self.schedule.cap_at(self.elapsed(now))
        if cap != self._applied:
            if cap is None:
                self.libmsr.remove_pkg_power_limit()
            else:
                self.libmsr.set_pkg_power_limit(cap)
            self._applied = cap
        self.cap_series.append(now, self._tdp if cap is None else cap)

    def _tick(self, now: float) -> None:
        poll = self.libmsr.poll_power()
        if poll is not None and poll.seconds > 0:
            self.power_series.append(now, poll.pkg_watts)
        self._apply(now)

    def stop(self) -> None:
        """Stop the daemon's periodic tick."""
        self._timer.cancel()

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable daemon state (tri-state ``_applied``: the sentinel
        does not survive pickling)."""
        if self._applied is _UNSET:
            applied = ("unset", None)
        else:
            applied = ("set", self._applied)
        return {"version": 1, "start": self._start, "applied": applied,
                "power_series": self.power_series.snapshot(),
                "cap_series": self.cap_series.snapshot()}

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "PowerPolicyDaemon")
        self._start = state["start"]
        kind, value = state["applied"]
        self._applied = _UNSET if kind == "unset" else value
        self.power_series.restore(state["power_series"])
        self.cap_series.restore(state["cap_series"])
