"""Online beta estimation by frequency dithering (extension).

The paper measures beta *offline* — two full runs at 3300 and 1600 MHz
(Section IV-A) — and lists "online hardware performance monitoring" as a
model improvement (Section VIII). This estimator makes beta an *online*
quantity using only knobs and telemetry the NRM already has:

1. pin the package at a high frequency for one dwell window and record
   the progress rate,
2. pin at a low frequency for the next window and record again,
3. invert Eq. 1 (progress is inverse time, so rate ratios are time
   ratios) and restore the governor.

Total perturbation: two dwell windows of mildly reduced performance —
no dedicated characterization runs, usable mid-flight on a phase the
application just entered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.beta import beta_from_times
from repro.exceptions import ConfigurationError
from repro.hardware.dvfs import DVFSController
from repro.telemetry.monitor import ProgressMonitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode
    from repro.runtime.engine import Engine

__all__ = ["OnlineBetaEstimator"]


class OnlineBetaEstimator:
    """One-shot dithering estimate of the running application's beta.

    Parameters
    ----------
    engine, node, monitor:
        Live node stack; the application must already be publishing
        progress.
    f_high, f_low:
        Dwell frequencies (defaults: nominal and half-ish nominal —
        a wide spread keeps the rate-quantization error small).
    dwell:
        Seconds per dwell window.
    settle:
        Seconds discarded at the start of each window (RAPL/pipeline
        settling and monitor bucket alignment).
    on_complete:
        Optional callback invoked with the estimated beta.
    """

    def __init__(self, engine: "Engine", node: "SimulatedNode",
                 monitor: ProgressMonitor, *,
                 f_high: float | None = None, f_low: float | None = None,
                 dwell: float = 8.0, settle: float = 2.0,
                 on_complete: Callable[[float], None] | None = None) -> None:
        if dwell <= settle:
            raise ConfigurationError("dwell must exceed settle")
        cfg = node.cfg
        self.node = node
        self.monitor = monitor
        self.f_high = f_high if f_high is not None else cfg.f_nominal
        self.f_low = f_low if f_low is not None else cfg.f_beta_low
        if not self.f_low < self.f_high:
            raise ConfigurationError("need f_low < f_high")
        self.dwell = dwell
        self.settle = settle
        self.on_complete = on_complete
        self.beta: float | None = None
        self._dvfs = DVFSController(node)
        self._rate_high: float | None = None
        self._t0 = engine.clock.now
        self._dvfs.set_frequency(self.f_high)
        engine.add_timer(dwell, self._end_high_dwell)
        engine.add_timer(2 * dwell, self._end_low_dwell)

    def _window_rate(self, start: float, end: float) -> float:
        window = self.monitor.series.window(start, end)
        if window.is_empty():
            raise ConfigurationError(
                "no progress samples during the dwell window; is the "
                "application publishing?"
            )
        return float(window.values.mean())

    def _end_high_dwell(self, now: float) -> None:
        self._rate_high = self._window_rate(self._t0 + self.settle, now)
        self._dvfs.set_frequency(self.f_low)

    def _end_low_dwell(self, now: float) -> None:
        rate_low = self._window_rate(self._t0 + self.dwell + self.settle, now)
        self._dvfs.release()
        if rate_low <= 0 or self._rate_high is None or self._rate_high <= 0:
            raise ConfigurationError("zero progress during a dwell window")
        # rates are inverse times: T_low/T_high = r_high/r_low
        self.beta = beta_from_times(
            t_low=1.0 / rate_low, t_high=1.0 / self._rate_high,
            f_low=self.f_low, f_high=self.f_high,
        )
        if self.on_complete is not None:
            self.on_complete(self.beta)

    @property
    def done(self) -> bool:
        return self.beta is not None
