"""System -> job -> node power-budget distribution (paper Section II).

The Argo/PowerStack hierarchy the paper motivates: "a system controller
monitors power across the entire machine and distributes power budgets
across the jobs. Inside each job, this power budget is then distributed
to nodes." This module implements that arithmetic deterministically:

* the system splits its machine budget across jobs in proportion to
  ``priority * n_nodes`` (a weighted fair share),
* each job splits its budget equally across its nodes,
* per-node floors are honoured: no node is ever budgeted below
  ``min_node_budget`` — if the machine budget cannot cover the floors,
  admission fails loudly.

The scenario the paper sketches — "a large, high-priority job begins
executing elsewhere on the system, and the power budget for the
currently executing low-priority job is reduced" — is a straight
consequence: admitting the new job shrinks the old job's share, and the
attached :class:`~repro.nrm.policies.BudgetTrackingPolicy` instances
receive the reduced node budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError

__all__ = ["Job", "SystemPowerManager"]


@dataclass
class Job:
    """A running job and its power-relevant attributes."""

    job_id: str
    n_nodes: int
    priority: float = 1.0
    #: budget listeners, one per node (e.g. BudgetTrackingPolicy.receive_budget)
    node_sinks: list[Callable[[float], None]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.priority <= 0:
            raise ConfigurationError(f"priority must be positive, got {self.priority}")

    @property
    def weight(self) -> float:
        return self.priority * self.n_nodes


class SystemPowerManager:
    """Top-level controller distributing the machine power budget."""

    def __init__(self, machine_budget: float, *,
                 min_node_budget: float = 40.0) -> None:
        if machine_budget <= 0:
            raise ConfigurationError("machine_budget must be positive")
        if min_node_budget <= 0:
            raise ConfigurationError("min_node_budget must be positive")
        self.machine_budget = machine_budget
        self.min_node_budget = min_node_budget
        self.jobs: dict[str, Job] = {}

    # ------------------------------------------------------------------

    def submit(self, job: Job) -> dict[str, float]:
        """Admit a job and redistribute; returns the new per-job node
        budgets. Raises if the floors cannot be met."""
        if job.job_id in self.jobs:
            raise ConfigurationError(f"job {job.job_id!r} already running")
        total_nodes = sum(j.n_nodes for j in self.jobs.values()) + job.n_nodes
        if total_nodes * self.min_node_budget > self.machine_budget:
            raise ConfigurationError(
                f"admitting {job.job_id!r} would need "
                f"{total_nodes * self.min_node_budget:.0f} W of floors "
                f"but the machine budget is {self.machine_budget:.0f} W"
            )
        self.jobs[job.job_id] = job
        return self.redistribute()

    def complete(self, job_id: str) -> dict[str, float]:
        """Remove a finished job and redistribute."""
        if job_id not in self.jobs:
            raise ConfigurationError(f"no running job {job_id!r}")
        del self.jobs[job_id]
        return self.redistribute()

    def set_machine_budget(self, watts: float) -> dict[str, float]:
        """Change the machine budget (e.g. a demand-response event)."""
        if watts <= 0:
            raise ConfigurationError("machine_budget must be positive")
        floors = sum(j.n_nodes for j in self.jobs.values()) * self.min_node_budget
        if floors > watts:
            raise ConfigurationError(
                f"budget {watts:.0f} W is below the running jobs' floors "
                f"({floors:.0f} W)"
            )
        self.machine_budget = watts
        return self.redistribute()

    # ------------------------------------------------------------------

    def node_budgets(self) -> dict[str, float]:
        """Per-node budget of each running job under weighted fair share
        with per-node floors (water-filling over the floors)."""
        if not self.jobs:
            return {}
        budgets: dict[str, float] = {}
        remaining = self.machine_budget
        jobs = list(self.jobs.values())
        active = set(j.job_id for j in jobs)
        # Iteratively pin jobs whose fair share would fall below the
        # floor to the floor, and re-share the rest.
        while True:
            weight = sum(j.weight for j in jobs if j.job_id in active)
            pinned = []
            for j in jobs:
                if j.job_id not in active:
                    continue
                share = remaining * j.weight / weight
                per_node = share / j.n_nodes
                if per_node < self.min_node_budget:
                    budgets[j.job_id] = self.min_node_budget
                    remaining -= self.min_node_budget * j.n_nodes
                    pinned.append(j.job_id)
            if not pinned:
                for j in jobs:
                    if j.job_id in active:
                        share = remaining * j.weight / weight
                        budgets[j.job_id] = share / j.n_nodes
                break
            active.difference_update(pinned)
            if not active:
                break
        return budgets

    def redistribute(self) -> dict[str, float]:
        """Recompute budgets and push them to every job's node sinks."""
        budgets = self.node_budgets()
        for job_id, per_node in budgets.items():
            for sink in self.jobs[job_id].node_sinks:
                sink(per_node)
        return budgets
