"""Per-core DDCM for load-imbalanced applications (extension).

The paper's related work (Bhalachandra et al. IPDPSW'15, Porterfield et
al. ROSS'15 — its refs [27], [34]) uses dynamic duty-cycle modulation to
slow *non-critical* ranks of an imbalanced application: they reach the
barrier just in time instead of early, burning less power, while the
critical path — and therefore progress — is untouched. That policy
needs exactly what this library's progress stack provides: per-rank
online progress (:mod:`repro.telemetry.reduction`).

:class:`ImbalanceEnergyPolicy` closes the loop:

* each interval it reads the per-rank rate series,
* identifies the slowest rank (the critical path),
* sets each other core's duty to the level that just matches the
  critical rank's pace (``duty ~= r_min / r_i``, snapped down to a
  hardware level, floored at ``min_duty``),
* the critical rank always runs at full duty.

For compute-imbalanced workloads this trades barrier spin time (high
activity, zero progress) for modulated execution at lower power.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.telemetry.reduction import JobProgressReducer
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode
    from repro.runtime.engine import Engine

__all__ = ["ImbalanceEnergyPolicy"]


class ImbalanceEnergyPolicy:
    """Slow non-critical ranks with per-core DDCM.

    Parameters
    ----------
    engine, node:
        The node stack.
    reducer:
        Per-rank progress monitors (ranks are assumed pinned to cores
        ``0..n_ranks-1``, as all the apps here pin them).
    interval:
        Control period in seconds.
    min_duty:
        Never modulate below this duty (keeps ranks responsive).
    slack:
        Fractional margin added to each rank's matched pace so modulated
        ranks still arrive slightly *before* the critical rank (late
        arrival would move the critical path).
    window:
        Trailing window used to estimate per-rank rates.
    """

    def __init__(self, engine: "Engine", node: "SimulatedNode",
                 reducer: JobProgressReducer, *, interval: float = 2.0,
                 min_duty: float = 0.25, slack: float = 0.05,
                 window: float = 4.0) -> None:
        if interval <= 0 or window <= 0:
            raise ConfigurationError("interval and window must be positive")
        if not 0.0 < min_duty <= 1.0:
            raise ConfigurationError("min_duty must lie in (0, 1]")
        if slack < 0:
            raise ConfigurationError("slack must be non-negative")
        self.node = node
        self.reducer = reducer
        self.min_duty = min_duty
        self.slack = slack
        self.window = window
        self.duty_series: list[TimeSeries] = [
            TimeSeries(f"core{c}-duty") for c in range(reducer.n_ranks)
        ]
        self._timer = engine.add_timer(interval, self._tick, period=interval)

    def _rates(self, now: float) -> np.ndarray | None:
        rates = []
        for mon in self.reducer.monitors:
            series = mon.series
            if series.is_empty():
                return None
            recent = series.window(now - self.window, now + 1e-9)
            if recent.is_empty():
                return None
            rates.append(recent.values.mean())
        arr = np.asarray(rates)
        if np.any(arr <= 0):
            return None
        return arr

    def _tick(self, now: float) -> None:
        rates = self._rates(now)
        if rates is None:
            return
        # Under a barrier, every rank completes the same iterations per
        # second, so a rank's work rate is proportional to its *work
        # share* and independent of its duty. The rank with the largest
        # share is the critical path; a rank carrying fraction
        # r_i / r_max of the critical work can run at that duty and
        # still arrive on time.
        critical = float(rates.max())
        if critical <= 0:
            return
        levels = self.node.cfg.duty_levels
        for core_id, r in enumerate(rates):
            share = float(r) / critical
            if share >= 1.0 - 1e-9:
                target = 1.0
            else:
                target = min(1.0, share * (1.0 + self.slack))
            target = max(target, self.min_duty)
            # snap *up* to the next hardware level: arriving early wastes
            # a little spin, arriving late moves the critical path
            chosen = next(l for l in levels if l >= target - 1e-12)
            self.node.set_core_duty(core_id, chosen)
            self.duty_series[core_id].append(
                now, self.node.cores[core_id].duty
            )

    def stop(self) -> None:
        """Stop the policy and restore full duty everywhere."""
        self._timer.cancel()
        for core_id in range(self.reducer.n_ranks):
            self.node.set_core_duty(core_id, 1.0)
