"""Phase-aware power capping (extension).

Section II motivates online progress with the observation that execution
time "misses power management opportunities within fine-grained
demarcations such as phases". This policy exploits those opportunities
using only the paper's building blocks:

1. **Measure** — run uncapped for a short window, recording the phase's
   natural progress rate and package power;
2. **Cap** — build the Eq.-4 model for the phase and apply the smallest
   package cap sustaining ``target_fraction`` of the phase's rate
   (:meth:`~repro.core.model.PowerCapModel.package_cap_for_progress`);
3. **Watch** — while capped, compare the observed rate with the expected
   capped rate; a sustained shift means the application entered a new
   phase (QMCPACK's VMC1 -> VMC2 -> DMC), and the policy returns to
   *Measure*.

The result: each phase runs under its own tailored cap, saving energy
that a single static cap (sized for the most demanding phase) would
waste — without dropping below the progress floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError
from repro.libmsr import LibMSR
from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["PhaseAwareCapPolicy"]

_MEASURING = "measuring"
_CAPPED = "capped"


class PhaseAwareCapPolicy:
    """Measure-then-cap, re-measuring on detected phase changes.

    Parameters
    ----------
    engine, libmsr, monitor:
        The node stack: timer source, RAPL access, 1 Hz progress rates.
    beta:
        Application compute-boundedness (characterized offline, as the
        paper's Table VI does).
    target_fraction:
        Progress floor per phase, as a fraction of the phase's uncapped
        rate.
    measure_window:
        Uncapped seconds used to learn each phase's rate and power.
    phase_threshold:
        Relative rate shift (vs the expected capped rate) that signals a
        phase change.
    persistence:
        Consecutive shifted samples required before re-measuring
        (debounces fluctuation).
    """

    def __init__(self, engine: "Engine", libmsr: LibMSR,
                 monitor: ProgressMonitor, *, beta: float,
                 target_fraction: float = 0.85,
                 measure_window: float = 5.0,
                 phase_threshold: float = 0.18, persistence: int = 3,
                 interval: float = 1.0, alpha: float = 2.0) -> None:
        if not 0.0 < target_fraction < 1.0:
            raise ConfigurationError("target_fraction must lie in (0, 1)")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must lie in [0, 1], got {beta}")
        if measure_window <= 0 or interval <= 0:
            raise ConfigurationError("windows must be positive")
        if not 0.0 < phase_threshold < 1.0:
            raise ConfigurationError("phase_threshold must lie in (0, 1)")
        if persistence < 1:
            raise ConfigurationError("persistence must be >= 1")
        self.libmsr = libmsr
        self.monitor = monitor
        self.beta = beta
        self.alpha = alpha
        self.target_fraction = target_fraction
        self.measure_window = measure_window
        self.phase_threshold = phase_threshold
        self.persistence = persistence

        self.state = _MEASURING
        self.cap_series = TimeSeries("phase-aware-cap")
        self.phase_caps: list[float] = []      #: cap chosen per phase
        self.phase_rates: list[float] = []     #: uncapped rate per phase
        self._measure_rates: list[float] = []
        self._measure_power: list[float] = []
        self._expected_rate = 0.0
        self._shift_count = 0
        self._tdp = libmsr.get_tdp()
        libmsr.remove_pkg_power_limit()
        libmsr.poll_power()
        self._samples_seen = 0
        self._timer = engine.add_timer(interval, self._tick, period=interval)

    # ------------------------------------------------------------------

    def _latest_rate(self) -> float | None:
        series = self.monitor.series
        if len(series) <= self._samples_seen:
            return None
        self._samples_seen = len(series)
        return float(series.values[-1])

    def _tick(self, now: float) -> None:
        rate = self._latest_rate()
        poll = self.libmsr.poll_power()
        if rate is None:
            self.cap_series.append(now, self._tdp)
            return
        if self.state == _MEASURING:
            self._measure_rates.append(rate)
            if poll is not None and poll.seconds > 0:
                self._measure_power.append(poll.pkg_watts)
            self.cap_series.append(now, self._tdp)
            if (len(self._measure_rates) * 1.0 >= self.measure_window
                    and self._measure_power):
                self._finish_measurement()
            return
        # capped: watch for phase changes
        self.cap_series.append(now, self.phase_caps[-1])
        if rate <= 0:
            return  # transport glitch; not a phase signal
        shift = abs(rate - self._expected_rate) / max(self._expected_rate,
                                                      1e-12)
        if shift > self.phase_threshold:
            self._shift_count += 1
            if self._shift_count >= self.persistence:
                self._enter_measurement()
        else:
            self._shift_count = 0

    def _finish_measurement(self) -> None:
        # drop the first sample: it straddles the previous phase/cap
        rates = self._measure_rates[1:] or self._measure_rates
        r_phase = sum(rates) / len(rates)
        p_phase = sum(self._measure_power) / len(self._measure_power)
        self.phase_rates.append(r_phase)
        if r_phase <= 0 or self.beta <= 0:
            cap = self._tdp
        else:
            model = PowerCapModel(beta=self.beta, r_max=r_phase,
                                  p_coremax=self.beta * p_phase,
                                  alpha=self.alpha)
            try:
                cap = min(model.package_cap_for_progress(
                    self.target_fraction * r_phase), self._tdp)
            except Exception:
                cap = self._tdp
        self.phase_caps.append(cap)
        self.libmsr.set_pkg_power_limit(cap)
        self._expected_rate = self.target_fraction * r_phase
        self._shift_count = 0
        self.state = _CAPPED

    def _enter_measurement(self) -> None:
        self.libmsr.remove_pkg_power_limit()
        self._measure_rates = []
        self._measure_power = []
        self._shift_count = 0
        self.state = _MEASURING

    @property
    def n_phases_seen(self) -> int:
        """Measurement cycles completed (phases the policy adapted to)."""
        return len(self.phase_caps)

    def stop(self) -> None:
        self._timer.cancel()
