"""Dynamic node-level power policies (paper Section II's motivation).

Two of the policies the paper says online progress enables:

* :class:`BudgetTrackingPolicy` — "in response to an increasing system
  load, the NRM receives gradually decreasing power budgets" and must
  follow them; budget updates arrive asynchronously (from the
  :mod:`repro.nrm.hierarchy` layer) and are enforced on the next tick.
* :class:`ProgressFloorPolicy` — given the application's progress model,
  hold a target progress rate with the least power: the cap starts at
  the model's inverse prediction
  (:meth:`~repro.core.model.PowerCapModel.package_cap_for_progress`) and
  is trimmed online from the monitored progress — the feedback use-case
  the paper's model is "the first step" toward.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError, check_snapshot_version
from repro.libmsr import LibMSR
from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["BudgetTrackingPolicy", "ProgressFloorPolicy"]

#: Sentinel distinguishing "nothing applied yet" from "uncapped" (None).
_UNSET = object()


class BudgetTrackingPolicy:
    """Enforce the most recent budget received from above."""

    def __init__(self, engine: "Engine", libmsr: LibMSR, *,
                 interval: float = 1.0) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.libmsr = libmsr
        self._budget: float | None = None
        self._applied: object = _UNSET
        self.cap_series = TimeSeries("budget-cap")
        self._tdp = libmsr.get_tdp()
        self._timer = engine.add_timer(interval, self._tick, period=interval)

    def receive_budget(self, watts: float | None) -> None:
        """Deliver a new node budget (None = unconstrained). Called by
        the hierarchy layer at any time; enforced on the next tick."""
        if watts is not None and watts <= 0:
            raise ConfigurationError(f"budget must be positive, got {watts}")
        self._budget = watts

    def _tick(self, now: float) -> None:
        if self._budget != self._applied:
            if self._budget is None:
                self.libmsr.remove_pkg_power_limit()
            else:
                self.libmsr.set_pkg_power_limit(self._budget)
            self._applied = self._budget
        self.cap_series.append(
            now, self._tdp if self._budget is None else self._budget
        )

    def stop(self) -> None:
        self._timer.cancel()

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable policy state. ``_applied`` is a module-level
        sentinel when nothing has been applied yet, which would not
        survive pickling — encode it as a tri-state."""
        if self._applied is _UNSET:
            applied = ("unset", None)
        else:
            applied = ("set", self._applied)
        return {"version": 1, "budget": self._budget, "applied": applied,
                "cap_series": self.cap_series.snapshot()}

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "BudgetTrackingPolicy")
        self._budget = state["budget"]
        kind, value = state["applied"]
        self._applied = _UNSET if kind == "unset" else value
        self.cap_series.restore(state["cap_series"])


class ProgressFloorPolicy:
    """Hold a progress floor with minimal power.

    The initial cap comes from the model inverse; afterwards a simple
    integral controller nudges the cap so the monitored progress stays
    inside ``[target, target*(1+slack)]``.
    """

    def __init__(self, engine: "Engine", libmsr: LibMSR,
                 monitor: ProgressMonitor, model: PowerCapModel,
                 target_rate: float, *, slack: float = 0.08,
                 step: float = 2.0, interval: float = 2.0,
                 min_cap: float = 40.0) -> None:
        if target_rate <= 0:
            raise ConfigurationError("target_rate must be positive")
        if not 0.0 < slack < 1.0:
            raise ConfigurationError("slack must lie in (0, 1)")
        if step <= 0 or min_cap <= 0:
            raise ConfigurationError("step and min_cap must be positive")
        self.libmsr = libmsr
        self.monitor = monitor
        self.model = model
        self.target_rate = target_rate
        self.slack = slack
        self.step = step
        self.min_cap = min_cap
        self.cap_series = TimeSeries("floor-cap")
        self._tdp = libmsr.get_tdp()
        try:
            cap = model.package_cap_for_progress(target_rate)
        except Exception:
            cap = self._tdp
        self.cap = min(max(cap, min_cap), self._tdp)
        libmsr.set_pkg_power_limit(self.cap)
        self._timer = engine.add_timer(interval, self._tick, period=interval)

    def _tick(self, now: float) -> None:
        series = self.monitor.series
        if len(series) >= 1:
            rate = series.values[-1]
            if rate > 0:
                if rate < self.target_rate:
                    self.cap = min(self.cap + self.step, self._tdp)
                elif rate > self.target_rate * (1.0 + self.slack):
                    self.cap = max(self.cap - self.step, self.min_cap)
                self.libmsr.set_pkg_power_limit(self.cap)
        self.cap_series.append(now, self.cap)

    def stop(self) -> None:
        self._timer.cancel()
