"""Dynamic power-capping schedules (paper Section V-B).

A schedule maps elapsed daemon time to the package cap to apply:

* :class:`LinearDecreaseSchedule` — "initially the power on the node is
  uncapped, and a linearly decreasing power cap is applied until a
  system- or user-specified minimum value is reached";
* :class:`StepSchedule` — "the power cap on the node alternates between
  an uncapped (or high value) and a low value";
* :class:`JaggedEdgeSchedule` — "the power cap linearly decreases from an
  uncapped level to a low value and then goes back to an uncapped level
  quickly";
* :class:`FixedCapSchedule` / :class:`UncappedSchedule` — static
  references used by the model-evaluation measurements.

``cap_at(t)`` returns the cap in watts, or ``None`` for uncapped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "CapSchedule",
    "LinearDecreaseSchedule",
    "StepSchedule",
    "JaggedEdgeSchedule",
    "FixedCapSchedule",
    "UncappedSchedule",
]


class CapSchedule:
    """Base class; subclasses implement :meth:`cap_at`."""

    def cap_at(self, t: float) -> float | None:
        """Package cap (watts) at elapsed time ``t``; None = uncapped."""
        raise NotImplementedError


def _check_range(high: float, low: float) -> None:
    if low <= 0:
        raise ConfigurationError(f"low cap must be positive, got {low}")
    if high <= low:
        raise ConfigurationError(
            f"high cap ({high}) must exceed low cap ({low})"
        )


@dataclass(frozen=True)
class LinearDecreaseSchedule(CapSchedule):
    """Uncapped until ``start``, then descend at ``rate`` W/s from
    ``high`` until ``low``, and hold."""

    high: float
    low: float
    rate: float
    start: float = 0.0

    def __post_init__(self) -> None:
        _check_range(self.high, self.low)
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")

    def cap_at(self, t: float) -> float | None:
        if t < self.start:
            return None
        return max(self.low, self.high - self.rate * (t - self.start))


@dataclass(frozen=True)
class StepSchedule(CapSchedule):
    """Alternate ``high_duration`` seconds at ``high`` (None = uncapped)
    with ``low_duration`` seconds at ``low``."""

    low: float
    high: float | None = None     #: None alternates with *uncapped*
    high_duration: float = 20.0
    low_duration: float = 20.0

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise ConfigurationError(f"low cap must be positive, got {self.low}")
        if self.high is not None:
            _check_range(self.high, self.low)
        if self.high_duration <= 0 or self.low_duration <= 0:
            raise ConfigurationError("step durations must be positive")

    def cap_at(self, t: float) -> float | None:
        period = self.high_duration + self.low_duration
        phase = t % period
        if phase < self.high_duration:
            return self.high
        return self.low


@dataclass(frozen=True)
class JaggedEdgeSchedule(CapSchedule):
    """Sawtooth: descend linearly from ``high`` to ``low`` over
    ``descent`` seconds, then snap back up instantly and repeat."""

    high: float
    low: float
    descent: float = 30.0

    def __post_init__(self) -> None:
        _check_range(self.high, self.low)
        if self.descent <= 0:
            raise ConfigurationError("descent must be positive")

    def cap_at(self, t: float) -> float | None:
        phase = (t % self.descent) / self.descent
        return self.high - (self.high - self.low) * phase


@dataclass(frozen=True)
class FixedCapSchedule(CapSchedule):
    """A constant cap from ``start`` onward (uncapped before), as used by
    the Fig. 4 measurement protocol (uncapped baseline, then step down)."""

    cap: float
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise ConfigurationError(f"cap must be positive, got {self.cap}")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")

    def cap_at(self, t: float) -> float | None:
        return self.cap if t >= self.start else None


@dataclass(frozen=True)
class UncappedSchedule(CapSchedule):
    """Never caps (baseline runs)."""

    def cap_at(self, t: float) -> float | None:
        return None
