"""repro.obs — opt-in observability for the simulation harness.

The simulator's *in-model* telemetry (:mod:`repro.telemetry`) reproduces
the paper's progress sensors; this package instruments the **harness
itself** — the machinery the ROADMAP needs numbers from before it can be
optimized. Three pillars:

* **structured tracing** (:mod:`repro.obs.trace`) — nested spans and
  instant events at the hot seams: cluster/scheduler epoch loops,
  :class:`~repro.cluster.sharding.ShardedLockstep` dispatch (with
  per-epoch pickled payload bytes), :class:`~repro.runtime.executor.
  RunExecutor` fan-out with cache hit/miss events, scheduler decisions,
  and experiment phases. Exportable as JSONL or Chrome trace-event JSON
  (:mod:`repro.obs.export`) — the latter loads directly in Perfetto;
* **metrics** (:mod:`repro.obs.metrics`) — labeled counters, gauges and
  histograms with text/JSON reports;
* **run provenance** (:mod:`repro.obs.provenance`) — a JSON manifest
  (config, seeds, versions, timings, cache stats) written next to a
  run's outputs.

The layer is **disabled by default** and zero-cost when off: call sites
hold a shared :class:`~repro.obs.trace.NullTracer` /
:class:`~repro.obs.metrics.NullMetrics` whose operations are no-ops.
Enabling it must never change a simulated number — traced runs are
bit-identical to untraced runs (pinned by ``tests/obs``), because
observability only ever *describes* execution. Its host-clock reads are
confined to the single audited module :mod:`repro.obs.hostclock`, which
the determinism lint recognizes explicitly.

Usage::

    from repro import obs

    session = obs.enable()
    ...  # run experiments
    session.write_trace("run.json")      # Chrome trace (Perfetto)
    print(session.metrics.render_text())
    obs.disable()

or via the CLI: ``python -m repro.experiments figure4 --trace run.json``
then ``python -m repro.obs summarize run.json``.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.export import load_trace, write_trace
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.provenance import build_manifest, write_manifest
from repro.obs.summarize import summarize
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsSession",
    "enable",
    "disable",
    "enabled",
    "tracer",
    "metrics",
    "session",
    "build_manifest",
    "write_manifest",
    "load_trace",
    "write_trace",
    "summarize",
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "NullMetrics",
]


class ObsSession:
    """One enabled observability scope: a tracer plus a metrics registry."""

    def __init__(self, *, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def write_trace(self, path: str | os.PathLike) -> dict[str, Any]:
        """Write the recorded trace (format by extension, see
        :func:`repro.obs.export.write_trace`); returns a summary dict
        suitable for a manifest's ``trace`` entry."""
        fmt = write_trace(path, self.tracer.events)
        return {"path": os.fspath(path), "format": fmt,
                "events": len(self.tracer.events)}

    def write_metrics(self, path: str | os.PathLike) -> None:
        """Write the metrics report (``.json`` = JSON, else text)."""
        if os.fspath(path).endswith(".json"):
            payload = self.metrics.render_json()
        else:
            payload = self.metrics.render_text()
        with open(path, "w", encoding="utf-8") as f:
            f.write(payload)
            f.write("\n")


#: Module state: the active session, or None when observability is off.
_session: ObsSession | None = None


def enable(session: ObsSession | None = None) -> ObsSession:
    """Turn observability on (idempotent); returns the active session."""
    global _session
    if session is not None:
        _session = session
    elif _session is None:
        _session = ObsSession()
    return _session


def disable() -> None:
    """Turn observability off; instrumented code reverts to no-ops."""
    global _session
    _session = None


def enabled() -> bool:
    return _session is not None


def session() -> ObsSession | None:
    """The active session, or None when disabled."""
    return _session


def tracer() -> Tracer | NullTracer:
    """The active tracer — a shared no-op when observability is off.

    Hot loops should call this once per run (not per iteration): the
    bound tracer stays valid for the loop's lifetime, and hoisting the
    lookup keeps the disabled path at one attribute check per event.
    """
    s = _session
    return s.tracer if s is not None else NULL_TRACER


def metrics() -> MetricsRegistry | NullMetrics:
    """The active metrics registry — a shared no-op when off."""
    s = _session
    return s.metrics if s is not None else NULL_METRICS
