"""Command-line entry point for trace analysis.

Usage::

    python -m repro.obs summarize run.json      # or run.jsonl

Prints span totals, the executor result-cache hit rate, and per-shard
pickled payload bytes for a trace emitted with
``python -m repro.experiments <name> --trace <path>``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import load_trace
from repro.obs.summarize import summarize


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze traces recorded by the repro.obs layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize",
        help="span totals, cache hit rate, per-shard pickle bytes")
    p_sum.add_argument("trace",
                       help="trace file (Chrome trace-event JSON or JSONL)")
    args = parser.parse_args(argv)

    if args.command == "summarize":
        try:
            events = load_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            print(summarize(events, source=args.trace))
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; not an error.
            sys.stderr.close()
            return 0
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
