"""Trace serialization: JSONL spans and Chrome trace-event JSON.

Two interchangeable on-disk forms of the same event stream:

* **JSONL** (``.jsonl``) — one event object per line, timestamps in
  nanoseconds exactly as the tracer recorded them. Greppable, streams,
  concatenates.
* **Chrome trace-event JSON** (``.json``) — the
  ``{"traceEvents": [...]}`` array format with microsecond ``ts`` /
  ``dur`` that ``chrome://tracing`` and https://ui.perfetto.dev load
  directly.

:func:`load_trace` sniffs either format (by content, not extension) and
returns events normalized back to the internal nanosecond form, so the
``summarize`` CLI works on both.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

__all__ = ["to_chrome", "write_chrome", "write_jsonl", "write_trace",
           "load_trace"]

_NS_PER_US = 1000.0


def to_chrome(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """The Chrome trace-event document for ``events`` (ns -> µs)."""
    out = []
    for ev in events:
        chrome = dict(ev)
        chrome["ts"] = ev["ts"] / _NS_PER_US
        if "dur" in ev:
            chrome["dur"] = ev["dur"] / _NS_PER_US
        out.append(chrome)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome(path: str | os.PathLike,
                 events: Iterable[dict[str, Any]]) -> None:
    """Write Chrome trace-event JSON (loads in Perfetto)."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_chrome(events), f)


def write_jsonl(path: str | os.PathLike,
                events: Iterable[dict[str, Any]]) -> None:
    """Write one event per line, nanosecond timestamps."""
    with open(path, "w", encoding="utf-8") as f:
        for ev in events:
            f.write(json.dumps(ev))
            f.write("\n")


def write_trace(path: str | os.PathLike,
                events: Iterable[dict[str, Any]]) -> str:
    """Write ``events`` in the format the extension selects.

    ``.jsonl`` writes JSONL; anything else writes Chrome trace-event
    JSON. Returns the format written (``"jsonl"`` or ``"chrome"``).
    """
    if os.fspath(path).endswith(".jsonl"):
        write_jsonl(path, events)
        return "jsonl"
    write_chrome(path, events)
    return "chrome"


def _from_chrome(doc: dict[str, Any]) -> list[dict[str, Any]]:
    events = []
    for chrome in doc.get("traceEvents", []):
        ev = dict(chrome)
        if "ts" in ev:
            ev["ts"] = int(round(ev["ts"] * _NS_PER_US))
        if "dur" in ev:
            ev["dur"] = int(round(ev["dur"] * _NS_PER_US))
        events.append(ev)
    return events


def load_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load a trace written by :func:`write_trace`, either format.

    The format is sniffed from the content: a document whose top level
    is an object (or array) parses as Chrome trace-event JSON; anything
    else is treated as JSONL. Timestamps come back in nanoseconds.
    """
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _from_chrome(doc)
    if isinstance(doc, list):  # bare traceEvents array is also legal
        return _from_chrome({"traceEvents": doc})
    # Anything else — including a one-line JSONL file, which *is* valid
    # JSON — parses line by line in the nanosecond JSONL form.
    events = []
    for i, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{os.fspath(path)}:{i}: not a JSONL trace line: {exc}"
            ) from exc
    return events
