"""The observability layer's *only* host-clock source.

Everything in the simulator runs on simulated time
(:class:`repro.runtime.clock.SimClock`), and the determinism lint
(:mod:`repro.lint.rules.determinism`) bans host-clock reads precisely so
simulation results stay a pure function of the seed. Observability is
the one legitimate exception: a trace of *where wall time goes* is by
definition a host-clock measurement.

Rather than scattering per-line lint suppressions, every host-clock read
the observability layer performs is confined to this module, which the
determinism rules recognize by path as the single audited allowance
(see ``OBS_CLOCK_MODULES`` in :mod:`repro.lint.rules.determinism`).
The audit contract:

* readings from this module may only ever *describe* a run (trace
  timestamps, span durations, manifest wall-time), never *steer* one —
  no simulated quantity, seed, schedule, or control decision may derive
  from them;
* no other host state (environment, entropy, PIDs of semantic import)
  is read here — the allowance covers clocks only.
"""

from __future__ import annotations

import time

__all__ = ["perf_ns", "wall_s"]


def perf_ns() -> int:
    """Monotonic high-resolution timestamp (ns) for span durations."""
    return time.perf_counter_ns()


def wall_s() -> float:
    """Wall-clock seconds since the epoch, for manifest timestamps."""
    return time.time()
