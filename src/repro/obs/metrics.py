"""Labeled counters, gauges, and histograms for harness metrics.

A :class:`MetricsRegistry` holds metrics keyed by ``(name, labels)`` —
the Prometheus data model, minus the server: counters accumulate
(epochs stepped, runs computed, bytes pickled), gauges hold a last
value (cache hit rate), histograms keep streaming summary statistics
(per-epoch wall time) without storing samples.

The registry renders as a stable, sorted text report or a JSON
document (``--metrics-out``). Like tracing, metrics only *describe*
runs; nothing in the simulator reads them back. When observability is
off, call sites hold a :class:`NullMetrics` whose factory methods
return shared no-op instruments, so the disabled path costs one method
call and no allocation.
"""

from __future__ import annotations

import json
import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetrics", "NULL_METRICS"]


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically accumulating count (or sum, e.g. bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming summary of observations (no samples retained)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": self.count, "total": self.total, "mean": self.mean,
                "min": self.min, "max": self.max}


class _NullInstrument:
    """Shared sink standing in for any instrument when metrics are off."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Metrics keyed by ``(name, sorted labels)``; idempotent factories."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple, tuple[str, dict[str, Any], Any]] = {}
        # the daemon's client threads register instruments concurrently
        # (e.g. a per-client bytes counter on first reply); the lock
        # covers registration only — updates on an instrument stay
        # unsynchronized single-opcode-ish operations
        self._reg_lock = threading.Lock()

    def _get(self, kind: type, name: str, labels: dict[str, Any]) -> Any:
        key = (name, _label_key(labels))
        with self._reg_lock:
            entry = self._metrics.get(key)
            if entry is None:
                entry = (name, labels, kind())
                self._metrics[key] = entry
        if not isinstance(entry[2], kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(entry[2]).__name__}, not {kind.__name__}")
        return entry[2]

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """All metrics as plain records, sorted by (name, labels)."""
        with self._reg_lock:
            entries = dict(self._metrics)
        out = []
        for key in sorted(entries):
            name, labels, metric = entries[key]
            out.append({
                "name": name,
                "labels": {k: labels[k] for k in sorted(labels)},
                "kind": type(metric).__name__.lower(),
                "value": metric.snapshot(),
            })
        return out

    def render_text(self) -> str:
        """Human-readable report, one metric per line."""
        lines = []
        for rec in self.snapshot():
            label = ""
            if rec["labels"]:
                pairs = ",".join(f"{k}={v}"
                                 for k, v in rec["labels"].items())
                label = "{" + pairs + "}"
            value = rec["value"]
            if isinstance(value, dict):
                body = ("count={count} total={total:.6g} mean={mean:.6g} "
                        "min={min:.6g} max={max:.6g}").format(**value)
            else:
                body = f"{value:.6g}"
            lines.append(f"{rec['name']}{label} {body}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({"metrics": self.snapshot()}, indent=2,
                          sort_keys=True)

    def __len__(self) -> int:
        return len(self._metrics)


class NullMetrics:
    """Disabled registry: factories return one shared no-op instrument."""

    enabled = False

    __slots__ = ()

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> list[dict[str, Any]]:
        return []

    def render_text(self) -> str:
        return ""

    def render_json(self) -> str:
        return json.dumps({"metrics": []})

    def __len__(self) -> int:
        return 0


#: The shared disabled registry (what :func:`repro.obs.metrics` returns
#: when observability is off).
NULL_METRICS = NullMetrics()
