"""Run provenance: a manifest describing how a result was produced.

A manifest is a small JSON document written next to a run's outputs
answering the questions a reader of those outputs asks first: what
experiment, which seed and knobs, which package versions, how long it
took, and how much of it was served from the result cache. It is pure
*description* — nothing in the simulator reads a manifest back, so
emitting one can never change a result.

Wall-clock timestamps route through the audited host clock
(:mod:`repro.obs.hostclock`); package versions and interpreter details
are imported attributes, not environment reads, so the determinism lint
stays meaningful everywhere else.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from typing import Any

from repro.obs import hostclock

__all__ = ["build_manifest", "write_manifest"]

#: Manifest schema version; bump on layout changes.
SCHEMA = 1


def _package_versions() -> dict[str, str]:
    import numpy
    import scipy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": getattr(repro, "__version__", "unknown"),
    }


def build_manifest(*, experiment: str, config: dict[str, Any],
                   wall_time_s: float | None = None,
                   cache: dict[str, Any] | None = None,
                   trace: dict[str, Any] | None = None,
                   metrics: list[dict[str, Any]] | None = None
                   ) -> dict[str, Any]:
    """Assemble a manifest document for one experiment run.

    Parameters
    ----------
    experiment:
        Experiment name (e.g. ``"figure4"``).
    config:
        The run's knobs: seed, quick, workers, shards, cache dir — any
        JSON-serializable mapping.
    wall_time_s:
        Host wall time the run took, if measured.
    cache:
        Result-cache statistics (hits/misses/hit rate), if any.
    trace:
        Summary of an emitted trace (path, format, event count), if one
        was written.
    metrics:
        A metrics snapshot (:meth:`MetricsRegistry.snapshot`), if taken.
    """
    created = datetime.fromtimestamp(hostclock.wall_s(), tz=timezone.utc)
    manifest: dict[str, Any] = {
        "schema": SCHEMA,
        "experiment": experiment,
        "created_at": created.isoformat(timespec="seconds"),
        "config": dict(config),
        "versions": _package_versions(),
        "platform": {
            "system": platform.system(),
            "machine": platform.machine(),
            "implementation": sys.implementation.name,
        },
    }
    if wall_time_s is not None:
        manifest["wall_time_s"] = round(float(wall_time_s), 6)
    if cache is not None:
        manifest["cache"] = cache
    if trace is not None:
        manifest["trace"] = trace
    if metrics is not None:
        manifest["metrics"] = metrics
    return manifest


def write_manifest(path: str | os.PathLike,
                   manifest: dict[str, Any]) -> None:
    """Write a manifest as indented, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
