"""Aggregate a recorded trace into the report the CLI prints.

``python -m repro.obs summarize <trace>`` answers the questions the
ROADMAP keeps asking of the harness: where did the wall time go (span
totals by name), how well did the :class:`RunExecutor` result cache do
(hit rate), and how many bytes does :class:`ShardedLockstep` pickle per
shard (the delta-shipping baseline). Works on both trace formats via
:func:`repro.obs.export.load_trace`.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["span_totals", "cache_totals", "payload_totals", "summarize"]


def span_totals(events: Iterable[dict[str, Any]]
                ) -> dict[str, dict[str, float]]:
    """Per-span-name aggregate: count, total/mean/max duration (ns)."""
    totals: dict[str, dict[str, float]] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        agg = totals.setdefault(ev["name"], {
            "count": 0, "total_ns": 0, "max_ns": 0})
        agg["count"] += 1
        agg["total_ns"] += ev.get("dur", 0)
        agg["max_ns"] = max(agg["max_ns"], ev.get("dur", 0))
    for agg in totals.values():
        agg["mean_ns"] = agg["total_ns"] / agg["count"]
    return totals


def cache_totals(events: Iterable[dict[str, Any]]) -> tuple[int, int]:
    """(hits, misses) of the executor result cache over the trace."""
    hits = misses = 0
    for ev in events:
        if ev.get("name") == "executor.cache_hit":
            hits += 1
        elif ev.get("name") == "executor.cache_miss":
            misses += 1
    return hits, misses


def payload_totals(events: Iterable[dict[str, Any]]
                   ) -> dict[int, dict[str, int]]:
    """Per-shard pickled payload bytes (down/up) and message counts."""
    totals: dict[int, dict[str, int]] = {}
    for ev in events:
        if ev.get("name") != "shard.payload":
            continue
        args = ev.get("args", {})
        shard = int(args.get("shard", -1))
        agg = totals.setdefault(shard, {
            "bytes_down": 0, "bytes_up": 0, "messages": 0})
        agg["bytes_down"] += int(args.get("bytes_down", 0))
        agg["bytes_up"] += int(args.get("bytes_up", 0))
        agg["messages"] += 1
    return totals


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


def summarize(events: Iterable[dict[str, Any]],
              source: str | None = None) -> str:
    """Render the text report for a loaded trace."""
    events = list(events)
    spans = [ev for ev in events if ev.get("ph") == "X"]
    instants = [ev for ev in events if ev.get("ph") == "i"]
    lines = []
    title = "Trace summary"
    if source:
        title += f": {source}"
    lines.append(title)
    lines.append(f"  events: {len(events)} "
                 f"({len(spans)} spans, {len(instants)} instants)")
    lines.append("")

    totals = span_totals(events)
    if totals:
        name_w = max(len("span"), max(len(n) for n in totals))
        header = (f"{'span':<{name_w}}  {'count':>7}  {'total_ms':>12}  "
                  f"{'mean_ms':>10}  {'max_ms':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(totals,
                           key=lambda n: -totals[n]["total_ns"]):
            agg = totals[name]
            lines.append(
                f"{name:<{name_w}}  {int(agg['count']):>7}  "
                f"{_fmt_ms(agg['total_ns']):>12}  "
                f"{_fmt_ms(agg['mean_ns']):>10}  "
                f"{_fmt_ms(agg['max_ns']):>10}")
        lines.append("")

    hits, misses = cache_totals(events)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        lines.append(f"executor cache: {hits} hits / {misses} misses "
                     f"({rate:.1f}% hit rate)")
    else:
        lines.append("executor cache: no cached executor activity")

    payloads = payload_totals(events)
    if payloads:
        lines.append("shard pickle payloads:")
        for shard in sorted(payloads):
            agg = payloads[shard]
            lines.append(
                f"  shard {shard}: {agg['bytes_down']} B down / "
                f"{agg['bytes_up']} B up over {agg['messages']} dispatches")
        total_down = sum(a["bytes_down"] for a in payloads.values())
        total_up = sum(a["bytes_up"] for a in payloads.values())
        lines.append(f"  total: {total_down} B down / {total_up} B up")
    else:
        lines.append("shard pickle payloads: none recorded "
                     "(serial lockstep or payload measurement off)")
    return "\n".join(lines)
