"""Structured tracing: nested spans and instant events.

A :class:`Tracer` records two kinds of events, both carrying free-form
``args``:

* **spans** — ``with tracer.span("scheduler.epoch", now=t):`` records a
  complete-duration event covering the block (Chrome trace phase
  ``"X"``), nested naturally by the with-statement;
* **instants** — ``tracer.instant("executor.cache_hit", index=i)``
  records a point event (phase ``"i"``).

Events are held in memory as plain dicts in Chrome-trace shape with
*nanosecond* ``ts``/``dur`` (the exporters in :mod:`repro.obs.export`
convert to the microsecond unit the Chrome/Perfetto format specifies).
Timestamps come from the audited host clock
(:mod:`repro.obs.hostclock`) and only ever *describe* the run — the
golden-parity tests in ``tests/obs`` pin that tracing never changes a
simulated number.

When observability is off, call sites hold a :class:`NullTracer`
(``enabled = False``) whose :meth:`~NullTracer.span` returns one shared
no-op context manager — the disabled path allocates nothing per event
beyond the kwargs dict Python builds for the call itself.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs import hostclock

__all__ = ["Span", "NullSpan", "Tracer", "NullTracer", "NULL_TRACER"]


class NullSpan:
    """Shared no-op stand-in for :class:`Span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **args: Any) -> "NullSpan":
        return self


_NULL_SPAN = NullSpan()


class Span:
    """One in-flight complete-duration event (use as a context manager).

    Extra attributes observed mid-span (a result count, a payload size)
    attach via :meth:`set`; they merge into the event's ``args`` when
    the span closes.
    """

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 args: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = 0

    def set(self, **args: Any) -> "Span":
        """Attach attributes to the span while it is open."""
        self._args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        end = self._tracer._clock()
        self._tracer._events.append({
            "ph": "X",
            "name": self._name,
            "cat": self._tracer.category,
            "ts": self._start,
            "dur": end - self._start,
            "pid": self._tracer.pid,
            "tid": 0,
            "args": self._args,
        })


class Tracer:
    """In-memory trace recorder.

    Parameters
    ----------
    category:
        Chrome trace ``cat`` stamped on every event.
    clock:
        Nanosecond timestamp source; defaults to the audited host clock.
        Tests inject a fake for deterministic assertions.
    pid:
        Process id stamped on events; purely descriptive (the default 0
        keeps traces byte-stable across runs).
    """

    enabled = True

    def __init__(self, *, category: str = "repro",
                 clock: Callable[[], int] = hostclock.perf_ns,
                 pid: int = 0) -> None:
        self.category = category
        self.pid = pid
        self._clock = clock
        self._events: list[dict[str, Any]] = []

    # ------------------------------------------------------------------

    def span(self, name: str, **args: Any) -> Span:
        """A nested span covering the ``with`` block it guards."""
        return Span(self, name, args)

    def instant(self, name: str, **args: Any) -> None:
        """A point event at the current time."""
        self._events.append({
            "ph": "i",
            "name": name,
            "cat": self.category,
            "ts": self._clock(),
            "s": "p",
            "pid": self.pid,
            "tid": 0,
            "args": args,
        })

    def now_ns(self) -> int:
        """The tracer's current timestamp (for wait/interval attrs)."""
        return self._clock()

    # ------------------------------------------------------------------

    @property
    def events(self) -> list[dict[str, Any]]:
        """The recorded events (internal nanosecond form), in order."""
        return self._events

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``enabled`` is False so call sites can guard genuinely costly
    measurements (pickling a payload just to size it) behind one
    attribute check; plain ``span()``/``instant()`` calls need no guard.
    """

    enabled = False

    __slots__ = ()

    def span(self, name: str, **args: Any) -> NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args: Any) -> None:
        return None

    def now_ns(self) -> int:
        return 0

    @property
    def events(self) -> list[dict[str, Any]]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer (what :func:`repro.obs.tracer` returns
#: when observability is off).
NULL_TRACER = NullTracer()
