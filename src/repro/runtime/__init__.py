"""Deterministic discrete-event execution runtime.

This subpackage provides the substrate on which the synthetic applications
run: a simulation clock (:mod:`repro.runtime.clock`), a fluid work-integration
engine (:mod:`repro.runtime.engine`) that advances compute/memory work at
rates determined by the node's current frequency, duty cycle, and memory
contention, plus MPI-like (:mod:`repro.runtime.mpi`) and OpenMP-like
(:mod:`repro.runtime.openmp`) programming surfaces, and a process-pool
run executor (:mod:`repro.runtime.executor`) that fans independent runs
out across workers which rebuild their stacks from picklable specs, and
the pure wall-to-simulated-time epoch budgeter
(:mod:`repro.runtime.pacing`) the daemon paces its service loop with.
Crash resumption and time travel live in :mod:`repro.runtime.runfile`:
one :class:`~repro.runtime.runfile.RunCheckpoint` envelope for every
epoch loop, and the epoch-stamped
:class:`~repro.runtime.runfile.CheckpointStore` directory format.
:mod:`repro.runtime.hosttime` is the audited wall-clock the shard
balancer times epochs with (placement-only; results invariant).
"""

from repro.runtime.clock import SimClock
from repro.runtime.runfile import (
    CheckpointStore,
    RunCheckpoint,
    load_run_checkpoint,
    resolve_checkpoint,
    save_run_checkpoint,
)
from repro.runtime.engine import (
    Barrier,
    Engine,
    Publish,
    Sleep,
    TaskState,
    Work,
)
from repro.runtime.executor import RunExecutor, derive_seed
from repro.runtime.pacing import EpochPacer

__all__ = [
    "SimClock",
    "Engine",
    "Work",
    "Sleep",
    "Barrier",
    "Publish",
    "TaskState",
    "EpochPacer",
    "RunExecutor",
    "derive_seed",
    "RunCheckpoint",
    "CheckpointStore",
    "save_run_checkpoint",
    "load_run_checkpoint",
    "resolve_checkpoint",
]
