"""Simulation clock.

The whole library runs in *simulated* time: one global monotonically
non-decreasing float of seconds. The clock is deliberately tiny — it exists
as a distinct object (rather than a float attribute on the engine) so that
hardware components (RAPL energy accounting, counters) and telemetry
(1 Hz monitors) can share a single time source without referencing the
engine, and so tests can drive components in isolation.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated-time source.

    Parameters
    ----------
    start:
        Initial time in seconds (default ``0.0``).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if not (start >= 0.0):  # also rejects NaN
            raise SchedulingError(f"clock must start at a finite time >= 0, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; the engine computes exact segment
        lengths, so a negative advance always indicates a bug upstream.
        """
        if not (dt >= 0.0):
            raise SchedulingError(f"cannot advance clock by negative/NaN dt: {dt!r}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (>= now)."""
        if not (t >= self._now):
            raise SchedulingError(
                f"cannot move clock backwards: now={self._now!r}, target={t!r}"
            )
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
