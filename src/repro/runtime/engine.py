"""Fluid discrete-event execution engine.

Application tasks are Python generators that yield *directives*:

* :class:`Work` — execute a quantum of interleaved compute/memory work,
* :class:`Sleep` — block without consuming the core (OS sleep),
* :class:`Barrier` — synchronize with the other members of a
  :class:`BarrierGroup`, busy-waiting (and burning instructions/power)
  until the last member arrives,
* :class:`Publish` — emit a progress event at the current simulated time
  (zero duration).

Work advances *fluidly*: within a segment where nothing changes (no
frequency/duty change, no task completing, no timer firing) every task
progresses at a constant rate determined by the core's effective clock and
its max-min-fair share of memory bandwidth. The engine computes the exact
time of the next state change, integrates all work, counters and energy
over the segment analytically, and repeats. Frequency changes made by
timers (the RAPL firmware, the power-policy daemon) therefore take effect
with exact timing — there is no integration error to tune away.

For a task whose quantum needs ``C`` cycles and ``B`` bytes at effective
clock ``s`` and granted bandwidth ``a``::

    rate = 1 / (C/s + B/a_effective)   with   a <= min(link_bw * duty, ...)

which reproduces the paper's Eq. 1 exactly: iteration time is
``C/s + B/bw``, so ``T(f)/T(f_max) = beta * (f_max/f - 1) + 1`` with
``beta`` the compute fraction of iteration time at ``f_max``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
    check_snapshot_version,
)
from repro.hardware.cpu import CoreMode
from repro.hardware.kernels import (
    bandwidth_demand,
    compute_fraction,
    progress_rate,
    standalone_time,
)
from repro.hardware.memory import allocate_bandwidth

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.hardware.node import SimulatedNode

__all__ = [
    "Work",
    "Sleep",
    "Barrier",
    "Publish",
    "BarrierGroup",
    "TaskState",
    "Timer",
    "Engine",
]

_COMPLETION_RTOL = 1e-12


# ----------------------------------------------------------------------
# Directives
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Work:
    """Execute ``cycles`` of compute and ``bytes`` of memory traffic,
    uniformly interleaved, retiring ``instructions`` instructions.

    ``instructions`` defaults to ``cycles`` (IPC of 1); kernels that model
    superscalar or stall-heavy code pass it explicitly.

    ``l3_misses`` defaults to ``bytes / cache_line`` (streaming traffic);
    latency-bound kernels (OpenMC's unstructured accesses) pass it
    explicitly, because there ``bytes`` models the *bandwidth-time
    equivalent* of miss latency rather than actual line traffic.
    """

    cycles: float
    bytes: float = 0.0
    instructions: float | None = None
    l3_misses: float | None = None

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.bytes < 0:
            raise ConfigurationError("work sizes must be non-negative")
        if self.instructions is not None and self.instructions < 0:
            raise ConfigurationError("instructions must be non-negative")
        if self.l3_misses is not None and self.l3_misses < 0:
            raise ConfigurationError("l3_misses must be non-negative")

    @property
    def ins(self) -> float:
        return self.cycles if self.instructions is None else self.instructions

    def misses(self, cache_line: int) -> float:
        """L3 misses for the whole quantum."""
        if self.l3_misses is not None:
            return self.l3_misses
        return self.bytes / cache_line

    @property
    def empty(self) -> bool:
        return self.cycles <= 0.0 and self.bytes <= 0.0


@dataclass(frozen=True)
class Sleep:
    """Block the task for ``duration`` seconds without occupying the core
    (the core drops to its sleep activity level)."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError("sleep duration must be non-negative")


class BarrierGroup:
    """Synchronization group shared by ``n_members`` tasks.

    Reusable: once all members arrive the barrier resets for the next
    phase, exactly like ``MPI_Barrier`` on a communicator.
    """

    def __init__(self, n_members: int, name: str = "barrier") -> None:
        if n_members < 1:
            raise ConfigurationError(f"barrier needs >= 1 member, got {n_members}")
        self.n_members = n_members
        self.name = name
        self._waiting: list[TaskState] = []

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BarrierGroup({self.name!r}, {self.n_waiting}/{self.n_members})"


@dataclass(frozen=True)
class Barrier:
    """Directive: wait at ``group`` until all members arrive."""

    group: BarrierGroup


@dataclass(frozen=True)
class Publish:
    """Directive: emit ``value`` on ``topic`` at the current time
    (zero simulated duration)."""

    topic: str
    value: float


# ----------------------------------------------------------------------
# Task & timer bookkeeping
# ----------------------------------------------------------------------

_RUNNING = "running"
_SPINNING = "spinning"
_SLEEPING = "sleeping"
_READY = "ready"
_DONE = "done"


@dataclass
class TaskState:
    """Engine-internal record of one task (MPI rank / OpenMP thread)."""

    tid: int
    name: str
    core_id: int
    gen: Iterator[Any]
    status: str = _READY
    # current Work quantum
    work: Work | None = None
    frac_done: float = 0.0
    # per-segment cached rates
    rate: float = 0.0            # d(frac)/dt
    bytes_rate: float = 0.0      # B/s
    compute_frac: float = 0.0    # share of wall time retiring instructions
    wake_time: float = 0.0       # for _SLEEPING

    @property
    def done(self) -> bool:
        return self.status == _DONE


@dataclass(order=True)
class Timer:
    """A scheduled callback; periodic if ``period`` is set."""

    time: float
    seq: int
    callback: Callable[[float], None] = field(compare=False)
    period: float | None = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent future firings (already-queued firing is skipped)."""
        self.cancelled = True


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class Engine:
    """Drives tasks, timers, counters and energy on a simulated node."""

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node
        self.clock = node.clock
        self._tasks: list[TaskState] = []
        self._timers: list[Timer] = []
        # Plain ints (not itertools.count) so the engine can checkpoint.
        self._next_tid = 0
        self._next_timer_seq = 0
        self._ready: list[TaskState] = []
        self._publish_hooks: list[Callable[[float, str, float], None]] = []
        self._free_cores = list(range(node.cfg.n_cores - 1, -1, -1))

    # -- task management ------------------------------------------------

    def spawn(self, gen: Iterator[Any], core_id: int | None = None,
              name: str | None = None) -> TaskState:
        """Register a task generator, pinned to ``core_id`` (or the next
        free core). The task starts when :meth:`run` is next called."""
        if core_id is None:
            if not self._free_cores:
                raise SimulationError("no free cores left to pin a task to")
            core_id = self._free_cores.pop()
        elif not 0 <= core_id < self.node.cfg.n_cores:
            raise SimulationError(
                f"core_id {core_id} out of range 0..{self.node.cfg.n_cores - 1}"
            )
        else:
            if core_id in self._free_cores:
                self._free_cores.remove(core_id)
        tid = self._next_tid
        self._next_tid += 1
        task = TaskState(
            tid=tid,
            name=name or f"task{core_id}",
            core_id=core_id,
            gen=gen,
        )
        self._tasks.append(task)
        self._ready.append(task)
        return task

    def add_timer(self, delay: float, callback: Callable[[float], None],
                  period: float | None = None) -> Timer:
        """Schedule ``callback(now)`` after ``delay`` seconds; with
        ``period`` it re-fires drift-free every ``period`` seconds."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        if period is not None and period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        seq = self._next_timer_seq
        self._next_timer_seq += 1
        timer = Timer(self.clock.now + delay, seq, callback, period)
        heapq.heappush(self._timers, timer)
        return timer

    def on_publish(self, hook: Callable[[float, str, float], None]) -> None:
        """Register a hook invoked as ``hook(time, topic, value)`` for every
        :class:`Publish` directive (telemetry attaches here)."""
        self._publish_hooks.append(hook)

    # -- introspection ---------------------------------------------------

    @property
    def tasks(self) -> tuple[TaskState, ...]:
        return tuple(self._tasks)

    def all_done(self) -> bool:
        return all(t.done for t in self._tasks)

    # -- main loop ---------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until all tasks finish, or absolute time ``until`` is
        reached (whichever first). Returns the final simulated time."""
        if until is not None and until < self.clock.now:
            raise SchedulingError(
                f"until={until} is before now={self.clock.now}"
            )
        while True:
            self._dispatch_ready()
            now = self.clock.now
            if until is not None and now >= until:
                break
            running = [t for t in self._tasks if t.status == _RUNNING]
            spinning = [t for t in self._tasks if t.status == _SPINNING]
            sleeping = [t for t in self._tasks if t.status == _SLEEPING]
            next_timer = self._peek_timer()

            if not running and not sleeping:
                if spinning:
                    # Timers cannot release a barrier (only task arrivals
                    # can), so this cannot resolve.
                    raise SimulationError(
                        "deadlock: tasks are spinning at a barrier that can "
                        f"never complete: {[t.name for t in spinning]}"
                    )
                if until is None:
                    # All tasks finished; pending timers alone don't keep
                    # the simulation alive.
                    break
                # Idle-advance toward `until`, still firing timers and
                # accruing idle power.

            self._recompute_rates(running, spinning, sleeping)

            dt = np.inf
            for t in running:
                t_left = (1.0 - t.frac_done) / t.rate if t.rate > 0 else np.inf
                dt = min(dt, t_left)
            for t in sleeping:
                dt = min(dt, t.wake_time - now)
            if next_timer is not None:
                dt = min(dt, next_timer - now)
            if until is not None:
                dt = min(dt, until - now)
            if not np.isfinite(dt):
                raise SimulationError(
                    "no task can make progress and no timer is pending"
                )
            dt = max(dt, 0.0)

            self._integrate(running, spinning, dt)
            self.clock.advance(dt)
            now = self.clock.now

            # Completions.
            for t in running:
                if t.frac_done >= 1.0 - _COMPLETION_RTOL:
                    t.frac_done = 1.0
                    t.work = None
                    t.status = _READY
                    self._ready.append(t)
            for t in sleeping:
                if t.wake_time <= now + 1e-15:
                    t.status = _READY
                    self._ready.append(t)
            # Resume completed/woken tasks *before* firing timers due at
            # the same instant, so that zero-time follow-ups (progress
            # publishes) are visible to periodic collectors whose window
            # closes exactly now.
            self._dispatch_ready()
            self._fire_timers(now)
        return self.clock.now

    # -- internals ---------------------------------------------------------

    def _peek_timer(self) -> float | None:
        while self._timers and self._timers[0].cancelled:
            heapq.heappop(self._timers)
        return self._timers[0].time if self._timers else None

    def _fire_timers(self, now: float) -> None:
        while self._timers and self._timers[0].time <= now + 1e-15:
            timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            timer.callback(now)
            if timer.period is not None and not timer.cancelled:
                timer.time += timer.period
                heapq.heappush(self._timers, timer)

    def _dispatch_ready(self) -> None:
        """Resume READY tasks until each blocks (zero simulated time)."""
        while self._ready:
            task = self._ready.pop()
            self._advance_task(task)

    def _advance_task(self, task: TaskState) -> None:
        while True:
            try:
                directive = next(task.gen)
            except StopIteration:
                task.status = _DONE
                task.work = None
                core = self.node.cores[task.core_id]
                core.mode = CoreMode.IDLE
                core.compute_frac = 0.0
                core.bytes_rate = 0.0
                return
            if isinstance(directive, Work):
                if directive.empty:
                    continue
                task.work = directive
                task.frac_done = 0.0
                task.status = _RUNNING
                return
            if isinstance(directive, Sleep):
                if directive.duration <= 0:
                    continue
                task.wake_time = self.clock.now + directive.duration
                task.status = _SLEEPING
                return
            if isinstance(directive, Barrier):
                group = directive.group
                group._waiting.append(task)
                if len(group._waiting) >= group.n_members:
                    waiters = group._waiting
                    group._waiting = []
                    for w in waiters:
                        if w is not task:
                            w.status = _READY
                            self._ready.append(w)
                    # the completing member keeps executing immediately
                    continue
                task.status = _SPINNING
                return
            if isinstance(directive, Publish):
                for hook in self._publish_hooks:
                    hook(self.clock.now, directive.topic, directive.value)
                continue
            raise SimulationError(
                f"task {task.name!r} yielded unknown directive {directive!r}"
            )

    def _recompute_rates(self, running: list[TaskState],
                         spinning: list[TaskState],
                         sleeping: list[TaskState]) -> None:
        """Set per-task rates and per-core power-model state for the
        upcoming constant-rate segment."""
        node = self.node
        cfg = node.cfg
        node.idle_all()

        # Unconstrained per-task bandwidth demand.
        mem_tasks: list[TaskState] = []
        demands: list[float] = []
        for t in running:
            w = t.work
            assert w is not None
            core = node.cores[t.core_id]
            s = core.effective_clock()
            link = cfg.core_link_bandwidth * core.duty
            if w.bytes > 0:
                standalone = standalone_time(w.cycles, w.bytes, s, link)
                demands.append(bandwidth_demand(w.bytes, standalone))
                mem_tasks.append(t)
            else:
                t.bytes_rate = 0.0
        if mem_tasks:
            grants = allocate_bandwidth(demands, node.effective_mem_bandwidth)
        else:
            grants = np.empty(0)

        gi = 0
        for t in running:
            w = t.work
            core = node.cores[t.core_id]
            s = core.effective_clock()
            if w.bytes > 0:
                granted = float(grants[gi])
                gi += 1
                t.bytes_rate = granted
                t.rate = progress_rate(granted, w.bytes)
            else:
                t.rate = s / w.cycles
                t.bytes_rate = 0.0
            # Fraction of wall time retiring instructions.
            t.compute_frac = (min(compute_fraction(w.cycles, t.rate, s), 1.0)
                              if s > 0 else 0.0)
            core.mode = CoreMode.BUSY
            core.compute_frac = t.compute_frac
            core.bytes_rate = t.bytes_rate
        for t in spinning:
            core = node.cores[t.core_id]
            core.mode = CoreMode.SPIN
            core.compute_frac = 1.0
            core.bytes_rate = 0.0
        for t in sleeping:
            core = node.cores[t.core_id]
            core.mode = CoreMode.SLEEP
            core.compute_frac = 0.0
            core.bytes_rate = 0.0

    def _integrate(self, running: list[TaskState], spinning: list[TaskState],
                   dt: float) -> None:
        """Accrue work, counters and energy over a segment of length ``dt``."""
        node = self.node
        cfg = node.cfg
        node.accrue(dt)
        if dt <= 0:
            return
        for t in running:
            w = t.work
            core = node.cores[t.core_id]
            dx = min(t.rate * dt, 1.0 - t.frac_done)
            t.frac_done += dx
            node.counters.accrue(
                t.core_id,
                instructions=w.ins * dx,
                cycles=core.effective_clock() * dt,
                l3_misses=w.misses(cfg.cache_line) * dx,
            )
        for t in spinning:
            core = node.cores[t.core_id]
            s = core.effective_clock()
            node.counters.accrue(
                t.core_id,
                instructions=s * cfg.spin_ipc * dt,
                cycles=s * dt,
            )

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable engine state: counters, task records (with resumable
        body snapshots), the ready queue and the timer wheel.

        Requires every task body to expose ``snapshot()``/``restore()``
        (see :class:`repro.apps.body.ResumableBody`); raw generators
        cannot be checkpointed and raise :class:`CheckpointError`.
        Per-segment rate caches are recomputed each segment and core
        power-model state lives in the node snapshot, so neither is
        captured here. ``_publish_hooks`` are wiring, re-created by the
        stack on rebuild.
        """
        tasks = []
        for t in self._tasks:
            body = getattr(t.gen, "snapshot", None)
            if body is None:
                raise CheckpointError(
                    f"task {t.name!r} body {type(t.gen).__name__} is not "
                    "resumable (no snapshot()); cannot checkpoint the engine"
                )
            barrier_pos = None
            if t.status == _SPINNING:
                group = t.gen.barrier_group
                barrier_pos = group._waiting.index(t)
            tasks.append({
                "tid": t.tid, "name": t.name, "core_id": t.core_id,
                "status": t.status, "work": t.work,
                "frac_done": t.frac_done, "wake_time": t.wake_time,
                "body": body(), "barrier_pos": barrier_pos,
            })
        timers = [
            {"seq": tm.seq, "time": tm.time, "period": tm.period,
             "cancelled": tm.cancelled}
            for tm in sorted(self._timers, key=lambda tm: tm.seq)
        ]
        return {
            "version": 1,
            "next_tid": self._next_tid,
            "next_timer_seq": self._next_timer_seq,
            "free_cores": list(self._free_cores),
            "tasks": tasks,
            "ready": [t.tid for t in self._ready],
            "timers": timers,
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` onto a freshly rebuilt engine.

        The rebuild (re-running the stack assembly) must have registered
        the same tasks and timers in the same order; restore overlays
        mutable state onto them, matching tasks by tid and timers by seq.
        Timers present in the rebuild but absent from the snapshot are
        cancelled (they had fired/been cancelled before the snapshot);
        timers in the snapshot but missing from the rebuild are an error.
        """
        check_snapshot_version(state, 1, "Engine")
        recorded = state["tasks"]
        if len(recorded) != len(self._tasks):
            raise CheckpointError(
                f"snapshot has {len(recorded)} tasks, rebuild has "
                f"{len(self._tasks)}"
            )
        spinning: list[tuple[int, TaskState]] = []
        for t, rec in zip(self._tasks, recorded):
            if (t.tid, t.name, t.core_id) != (
                    rec["tid"], rec["name"], rec["core_id"]):
                raise CheckpointError(
                    f"task mismatch: rebuilt ({t.tid}, {t.name!r}, "
                    f"{t.core_id}) vs snapshot ({rec['tid']}, "
                    f"{rec['name']!r}, {rec['core_id']})"
                )
            t.gen.restore(rec["body"])
            t.status = rec["status"]
            t.work = rec["work"]
            t.frac_done = rec["frac_done"]
            t.wake_time = rec["wake_time"]
            if t.status == _SPINNING:
                spinning.append((rec["barrier_pos"], t))
        # Rebuild each barrier group's arrival list in recorded order.
        groups: dict[int, BarrierGroup] = {}
        by_group: dict[int, list[tuple[int, TaskState]]] = {}
        for pos, t in spinning:
            group = t.gen.barrier_group
            groups[id(group)] = group
            by_group.setdefault(id(group), []).append((pos, t))
        for gid, members in by_group.items():
            groups[gid]._waiting = [t for _pos, t in sorted(members)]
        by_tid = {t.tid: t for t in self._tasks}
        self._ready = [by_tid[tid] for tid in state["ready"]]

        by_seq = {tm.seq: tm for tm in self._timers}
        extra = [rec["seq"] for rec in state["timers"] if rec["seq"] not in by_seq]
        if extra:
            raise CheckpointError(
                f"snapshot contains timers the rebuild did not register "
                f"(seqs {extra}); the stack spec no longer matches"
            )
        snap_seqs = {rec["seq"] for rec in state["timers"]}
        for tm in self._timers:
            if tm.seq not in snap_seqs:
                tm.cancelled = True
        for rec in state["timers"]:
            tm = by_seq[rec["seq"]]
            tm.time = rec["time"]
            tm.period = rec["period"]
            tm.cancelled = rec["cancelled"]
        heapq.heapify(self._timers)
        self._next_tid = state["next_tid"]
        self._next_timer_seq = state["next_timer_seq"]
        self._free_cores = list(state["free_cores"])
