"""Fan independent simulation runs out over a process pool.

Every hot loop in the repo — the 5×-per-cap repeats of the Fig. 4
delta-progress protocol, cap-grid sweeps, multi-trace figures — is a
sequence of *independent* single-node runs. Live stacks hold Python
generators and cannot cross a process boundary, but their inputs can:
a run is fully described by plain data (a node config, an application
name and kwargs, a schedule, a seed — see
:class:`~repro.stack.spec.StackSpec`), so a worker process rebuilds the
stack from scratch and ships only the measured numbers back.

:class:`RunExecutor` is the one dispatch point: ``workers=1`` executes
the very same worker callable serially in-process, so parallel and
serial results are numerically identical by construction, and callers
never branch on the execution mode.

Determinism: per-run seeds must not depend on pool size or completion
order. :func:`derive_seed` derives a stable, collision-resistant seed
stream via ``np.random.default_rng([base_seed, run_index])`` — the same
(seed, index) pair always yields the same run seed, on any worker, in
any pool.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError, SimulationError

__all__ = ["RunExecutor", "derive_seed", "default_workers", "CACHE_ENV",
           "cache_stats", "reset_cache_stats"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable that opts :class:`RunExecutor` into result
#: caching when no explicit ``cache_dir`` is passed; its value is the
#: cache directory. ``python -m repro.experiments --no-cache`` clears it.
CACHE_ENV = "REPRO_RESULT_CACHE"

#: Bump when the cached payload layout changes; part of every digest, so
#: old entries simply stop matching instead of deserializing wrongly.
_CACHE_SCHEMA = 1

#: Marker distinguishing "not cached" from a legitimately-None result.
_MISS = object()

#: Process-wide result-cache tallies, accumulated by every
#: :class:`RunExecutor` regardless of whether tracing is enabled — the
#: figure harnesses print the hit rate from here (an explicit ROADMAP
#: ask). Plain deterministic counters: they describe the run, nothing
#: reads them back into a simulation.
_CACHE_TALLY = {"hits": 0, "misses": 0}


def cache_stats() -> dict[str, float]:
    """Process-wide result-cache statistics since the last reset.

    Returns ``{"hits", "misses", "hit_rate"}``; ``hit_rate`` is 0.0
    when there was no cached-executor activity at all.
    """
    hits = _CACHE_TALLY["hits"]
    misses = _CACHE_TALLY["misses"]
    total = hits + misses
    return {"hits": hits, "misses": misses,
            "hit_rate": hits / total if total else 0.0}


def reset_cache_stats() -> None:
    """Zero the process-wide cache tallies (start of a CLI invocation)."""
    _CACHE_TALLY["hits"] = 0
    _CACHE_TALLY["misses"] = 0


def derive_seed(base_seed: int, run_index: int) -> int:
    """Deterministic per-run seed, stable across pool sizes and hosts.

    Seeds the NumPy bit generator with the ``[base_seed, run_index]``
    key (SeedSequence hashes the pair), so distinct indices give
    independent streams and the mapping never depends on how runs are
    batched onto workers.
    """
    if run_index < 0:
        raise ConfigurationError(
            f"run_index must be non-negative, got {run_index}")
    rng = np.random.default_rng([int(base_seed), int(run_index)])
    return int(rng.integers(0, 2**31 - 1))


def default_workers() -> int:
    """A sensible worker count: the CPUs this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class RunExecutor:
    """Order-preserving map over independent runs, serial or pooled.

    Parameters
    ----------
    workers:
        Process count. ``1`` (the default) runs serially in-process —
        the fallback path and the reference for numerical identity.
        ``None`` selects :func:`default_workers`.
    start_method:
        Multiprocessing start method; default prefers ``fork`` (cheap,
        inherits the imported simulator) and falls back to ``spawn``.
    cache_dir:
        Directory for content-keyed on-disk result caching. ``None``
        (default) consults the :data:`CACHE_ENV` environment variable;
        when neither is set, caching is off. A cache entry is keyed by
        the SHA-256 of the pickled ``(schema, fn module+qualname, item)``
        triple — for the common sweep shape, the item *is* a
        :class:`~repro.stack.spec.StackSpec` (or a ``(spec, seed)``
        tuple), so identical re-runs of a deterministic simulation are
        served from disk. Corrupt or unreadable entries fall back to
        recomputation; unpicklable items/results bypass the cache.

    The executor is stateless between calls: each :meth:`map` opens and
    closes its own pool, so an instance can be shared freely across
    sweep stages.
    """

    def __init__(self, workers: int | None = 1, *,
                 start_method: str | None = None,
                 cache_dir: str | os.PathLike | None = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"unknown start method {start_method!r}")
        if cache_dir is None:
            # The cache is a pure memoization layer: hits return the
            # same bytes the computation would produce, so the env
            # opt-in cannot change simulation results.
            cache_dir = os.environ.get(CACHE_ENV) or None  # repro-lint: disable=det-environ
        self.workers = workers
        self.start_method = start_method
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None \
            else None
        #: Result-cache tallies for this executor instance (the
        #: process-wide view is :func:`cache_stats`).
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------

    def map(self, fn: Callable[[_T], _R],
            items: Iterable[_T]) -> list[_R]:
        """``[fn(item) for item in items]``, possibly across processes.

        ``fn`` must be a module-level callable and every item picklable
        when ``workers > 1`` (the serial path has no such constraint).
        Results come back in submission order. A worker process dying
        (OOM kill, segfault, interpreter abort) raises
        :class:`~repro.exceptions.SimulationError`; ordinary exceptions
        raised *by* ``fn`` propagate unchanged, exactly as in the
        serial path.

        With a cache directory configured, cached results are returned
        without executing ``fn``; only the misses are dispatched (and
        stored on the way back). Exceptions are never cached.
        """
        work: Sequence[_T] = list(items)
        tracer = obs.tracer()
        if self.cache_dir is None:
            with tracer.span("executor.map",
                             fn=getattr(fn, "__qualname__", str(fn)),
                             items=len(work), workers=self.workers,
                             cached=False):
                return self._execute(fn, work)
        with tracer.span("executor.map",
                         fn=getattr(fn, "__qualname__", str(fn)),
                         items=len(work), workers=self.workers,
                         cached=True) as span:
            keys = [self._cache_key(fn, item) for item in work]
            results: list = [_MISS] * len(work)
            misses: list[int] = []
            for i, key in enumerate(keys):
                if key is not None:
                    results[i] = self._cache_load(key)
                if results[i] is _MISS:
                    misses.append(i)
                else:
                    tracer.instant("executor.cache_hit", index=i)
            hits = len(work) - len(misses)
            self.cache_hits += hits
            self.cache_misses += len(misses)
            _CACHE_TALLY["hits"] += hits
            _CACHE_TALLY["misses"] += len(misses)
            metrics = obs.metrics()
            metrics.counter("executor.runs", outcome="cached").inc(hits)
            metrics.counter("executor.runs",
                            outcome="computed").inc(len(misses))
            span.set(cache_hits=hits, cache_misses=len(misses))
            if misses:
                for i in misses:
                    tracer.instant("executor.cache_miss", index=i)
                computed = self._execute(fn, [work[i] for i in misses])
                for i, value in zip(misses, computed):
                    results[i] = value
                    if keys[i] is not None:
                        self._cache_store(keys[i], value)
            return results

    def _execute(self, fn: Callable[[_T], _R],
                 work: Sequence[_T]) -> list[_R]:
        tracer = obs.tracer()
        if self.workers == 1 or len(work) <= 1:
            if not tracer.enabled:
                return [fn(item) for item in work]
            # Serial fan-out: per-run spans, with the time each run
            # spent queued behind its predecessors as an attribute.
            start = tracer.now_ns()
            out = []
            for i, item in enumerate(work):
                wait_ns = tracer.now_ns() - start
                with tracer.span("executor.run", index=i,
                                 queue_wait_ms=wait_ns / 1e6):
                    out.append(fn(item))
            return out
        ctx = multiprocessing.get_context(self.start_method)
        n = min(self.workers, len(work))
        try:
            with ProcessPoolExecutor(max_workers=n, mp_context=ctx) as pool, \
                    tracer.span("executor.pool", items=len(work), workers=n):
                return list(pool.map(fn, work))
        except BrokenProcessPool as exc:
            raise SimulationError(
                f"a RunExecutor worker process died while mapping "
                f"{getattr(fn, '__name__', fn)!r} over {len(work)} runs "
                f"({n} workers, start method {self.start_method!r}); "
                "the usual causes are the OOM killer or a native crash "
                "in a dependency"
            ) from exc

    # -- result cache ------------------------------------------------------

    @staticmethod
    def _cache_key(fn: Callable, item) -> str | None:
        """Content digest of one run, or None when the item cannot be
        keyed (unpicklable) and must bypass the cache."""
        try:
            payload = pickle.dumps(
                (_CACHE_SCHEMA, fn.__module__, fn.__qualname__, item),
                protocol=4)
        except Exception:
            return None
        return hashlib.sha256(payload).hexdigest()

    def _cache_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _cache_load(self, key: str):
        try:
            with open(self._cache_path(key), "rb") as f:
                return pickle.load(f)
        except FileNotFoundError:
            return _MISS
        except Exception:
            # corrupt/truncated entry: recompute (and overwrite)
            return _MISS

    def _cache_store(self, key: str, value) -> None:
        """Best-effort atomic store: a failed write (unpicklable result,
        full disk, racing process) must never fail the run itself."""
        path = self._cache_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            with open(tmp, "wb") as f:
                pickle.dump(value, f, protocol=4)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunExecutor(workers={self.workers}, "
                f"start_method={self.start_method!r}, "
                f"cache_dir={self.cache_dir!r})")
