"""Fan independent simulation runs out over a process pool.

Every hot loop in the repo — the 5×-per-cap repeats of the Fig. 4
delta-progress protocol, cap-grid sweeps, multi-trace figures — is a
sequence of *independent* single-node runs. Live stacks hold Python
generators and cannot cross a process boundary, but their inputs can:
a run is fully described by plain data (a node config, an application
name and kwargs, a schedule, a seed — see
:class:`~repro.stack.spec.StackSpec`), so a worker process rebuilds the
stack from scratch and ships only the measured numbers back.

:class:`RunExecutor` is the one dispatch point: ``workers=1`` executes
the very same worker callable serially in-process, so parallel and
serial results are numerically identical by construction, and callers
never branch on the execution mode.

Determinism: per-run seeds must not depend on pool size or completion
order. :func:`derive_seed` derives a stable, collision-resistant seed
stream via ``np.random.default_rng([base_seed, run_index])`` — the same
(seed, index) pair always yields the same run seed, on any worker, in
any pool.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

__all__ = ["RunExecutor", "derive_seed", "default_workers"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def derive_seed(base_seed: int, run_index: int) -> int:
    """Deterministic per-run seed, stable across pool sizes and hosts.

    Seeds the NumPy bit generator with the ``[base_seed, run_index]``
    key (SeedSequence hashes the pair), so distinct indices give
    independent streams and the mapping never depends on how runs are
    batched onto workers.
    """
    if run_index < 0:
        raise ConfigurationError(
            f"run_index must be non-negative, got {run_index}")
    rng = np.random.default_rng([int(base_seed), int(run_index)])
    return int(rng.integers(0, 2**31 - 1))


def default_workers() -> int:
    """A sensible worker count: the CPUs this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class RunExecutor:
    """Order-preserving map over independent runs, serial or pooled.

    Parameters
    ----------
    workers:
        Process count. ``1`` (the default) runs serially in-process —
        the fallback path and the reference for numerical identity.
        ``None`` selects :func:`default_workers`.
    start_method:
        Multiprocessing start method; default prefers ``fork`` (cheap,
        inherits the imported simulator) and falls back to ``spawn``.

    The executor is stateless between calls: each :meth:`map` opens and
    closes its own pool, so an instance can be shared freely across
    sweep stages.
    """

    def __init__(self, workers: int | None = 1, *,
                 start_method: str | None = None) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"unknown start method {start_method!r}")
        self.workers = workers
        self.start_method = start_method

    # ------------------------------------------------------------------

    def map(self, fn: Callable[[_T], _R],
            items: Iterable[_T]) -> list[_R]:
        """``[fn(item) for item in items]``, possibly across processes.

        ``fn`` must be a module-level callable and every item picklable
        when ``workers > 1`` (the serial path has no such constraint).
        Results come back in submission order. A worker process dying
        (OOM kill, segfault, interpreter abort) raises
        :class:`~repro.exceptions.SimulationError`; ordinary exceptions
        raised *by* ``fn`` propagate unchanged, exactly as in the
        serial path.
        """
        work: Sequence[_T] = list(items)
        if self.workers == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        ctx = multiprocessing.get_context(self.start_method)
        n = min(self.workers, len(work))
        try:
            with ProcessPoolExecutor(max_workers=n, mp_context=ctx) as pool:
                return list(pool.map(fn, work))
        except BrokenProcessPool as exc:
            raise SimulationError(
                f"a RunExecutor worker process died while mapping "
                f"{getattr(fn, '__name__', fn)!r} over {len(work)} runs "
                f"({n} workers, start method {self.start_method!r}); "
                "the usual causes are the OOM killer or a native crash "
                "in a dependency"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunExecutor(workers={self.workers}, "
                f"start_method={self.start_method!r})")
