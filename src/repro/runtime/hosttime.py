"""The elasticity layer's audited host-clock source.

The determinism lint (:mod:`repro.lint.rules.determinism`) bans
host-clock reads so simulation results stay a pure function of the
seed. The shard balancer needs one carefully-scoped exception: deciding
*where a node runs* requires knowing how long each shard's epoch step
took in real time — that is a host-clock measurement by definition, the
same way the paper's power redistribution reads real per-node progress
before moving watts.

This module is that exception, recognised by path in
``AUDITED_CLOCK_MODULES``. Its audit contract is deliberately one notch
wider than :mod:`repro.obs.hostclock` (describe-only) and still sharply
bounded:

* readings may steer **placement only** — which shard worker hosts
  which node. Placement is provably invisible to simulated results:
  the lockstep contract (golden parity across shards and engines,
  ``tests/cluster/``, ``tests/vector/``) guarantees bit-identical
  series for *any* node-to-shard assignment, so a wall-clock-driven
  migration can change wall time but never a simulated quantity;
* no simulated value, seed, RNG stream, budget, cap, or schedule may
  ever derive from these readings;
* clocks only — environment, entropy and RNG rules still apply here.
"""

from __future__ import annotations

import time

__all__ = ["perf_s"]


def perf_s() -> float:
    """Monotonic high-resolution timestamp (s) for shard step timing."""
    return time.perf_counter()
