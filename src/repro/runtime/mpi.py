"""MPI-like programming surface over the engine.

Only the features the paper's workloads need are provided: a communicator
with rank/size, a busy-waiting barrier (the source of the MIPS inflation
in Table I), and wall-clock time. Rank bodies are generator functions
``body(comm, rank)`` yielding engine directives; :class:`SimMPI` pins one
rank per core, mirroring the paper's ``MPI process pinning is enabled``
setup.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.exceptions import ConfigurationError
from repro.runtime.engine import Barrier, BarrierGroup, Engine, TaskState

__all__ = ["SimComm", "SimMPI"]


class SimComm:
    """Communicator handle passed to every rank body."""

    def __init__(self, size: int, clock) -> None:
        self.size = size
        self._clock = clock
        self._barrier_group = BarrierGroup(size, name="MPI_COMM_WORLD")

    def barrier(self) -> Barrier:
        """Directive for ``MPI_Barrier``: ``yield comm.barrier()``.

        Waiting ranks busy-wait (poll), retiring spin-loop instructions at
        the core's full clock rate — exactly the behaviour that inflates
        MIPS for load-imbalanced codes in the paper's Table I.
        """
        return Barrier(self._barrier_group)

    def wtime(self) -> float:
        """``MPI_Wtime``: current simulated time in seconds."""
        return self._clock.now


class SimMPI:
    """Launches ``size`` ranks of a generator body, one pinned per core."""

    def __init__(self, engine: Engine, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if size > engine.node.cfg.n_cores:
            raise ConfigurationError(
                f"cannot pin {size} ranks on {engine.node.cfg.n_cores} cores"
            )
        self.engine = engine
        self.size = size
        self.comm = SimComm(size, engine.clock)

    def launch(self, body: Callable[[SimComm, int], Generator],
               name: str = "mpi") -> list[TaskState]:
        """Spawn every rank; returns the engine task records."""
        return [
            self.engine.spawn(body(self.comm, rank), core_id=rank,
                              name=f"{name}:rank{rank}")
            for rank in range(self.size)
        ]
