"""OpenMP-like work sharing over the engine.

The paper's OpenMP applications (QMCPACK, STREAM, OpenMC) run one pinned
thread per core with parallel loops that end in an implicit barrier.
:class:`OmpTeam` reproduces that structure: a *master* generator drives
the iteration loop and calls :meth:`OmpTeam.parallel` to fan a
per-thread body out to the team; worker threads busy-wait between
parallel regions, as OpenMP runtimes do with an active wait policy.

Implementation note: the team is modelled as ``n`` persistent tasks all
executing the same loop structure — each thread runs its share of every
parallel region and synchronizes at the region's implicit barrier. The
master (thread 0) additionally executes the serial sections (progress
publishing), which take zero simulated time.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.exceptions import ConfigurationError
from repro.runtime.engine import Barrier, BarrierGroup, Engine, TaskState

__all__ = ["OmpTeam"]


class OmpTeam:
    """A team of ``n_threads`` persistent worker tasks, one per core."""

    def __init__(self, engine: Engine, n_threads: int) -> None:
        if n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")
        if n_threads > engine.node.cfg.n_cores:
            raise ConfigurationError(
                f"cannot pin {n_threads} threads on {engine.node.cfg.n_cores} cores"
            )
        self.engine = engine
        self.n_threads = n_threads
        self._group = BarrierGroup(n_threads, name="omp")

    def region_barrier(self) -> Barrier:
        """Implicit barrier closing a parallel region:
        ``yield team.region_barrier()`` from every thread body."""
        return Barrier(self._group)

    def launch(self, thread_body: Callable[["OmpTeam", int], Generator],
               name: str = "omp") -> list[TaskState]:
        """Spawn the team; ``thread_body(team, thread_id)`` is the SPMD
        body every thread executes (thread 0 is the master)."""
        return [
            self.engine.spawn(thread_body(self, t), core_id=t,
                              name=f"{name}:thr{t}")
            for t in range(self.n_threads)
        ]
