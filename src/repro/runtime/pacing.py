"""Wall-clock pacing of simulated epochs — the pure arithmetic half.

The daemon (:mod:`repro.daemon`) runs a *simulated* cluster as a
long-lived service: real clients connect over real sockets, so the
simulation has to advance against real time. The exchange rate is
``sim_rate`` simulated seconds per wall second; every driver tick the
server asks how many whole epochs have come due since the last tick and
runs exactly that many.

This module deliberately reads no clock. The server measures elapsed
wall time through the audited :mod:`repro.daemon.hostio` module and
passes the reading in; :class:`EpochPacer` only does arithmetic on it.
That split keeps the determinism contract auditable: pacing decides
*when* epochs run (and therefore when telemetry is drained to
subscribers — which is exactly how a slow transport produces stale
rates under load), but the content of every epoch remains a pure
function of the seed, because nothing downstream of this class ever
sees a wall-clock value.

The fractional-epoch remainder carries over between calls, so a pacer
asked at an awkward cadence (ticks shorter than an epoch, jittery
sleeps) still converges on exactly ``sim_rate`` over time instead of
systematically rounding it away.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["EpochPacer"]


class EpochPacer:
    """Convert elapsed wall time into a whole number of due epochs.

    Parameters
    ----------
    sim_rate:
        Simulated seconds that should elapse per wall second.
    epoch:
        Epoch length in simulated seconds (the scheduler's tick).
    max_epochs_per_tick:
        Backlog clamp: after a stall (a long GC pause, a suspended
        laptop) the pacer owes a burst of epochs; capping the burst
        keeps one tick from monopolising the event loop while requests
        wait. The excess debt is *dropped*, not deferred — the daemon
        falls behind real time rather than freezing admissions.
    """

    def __init__(self, sim_rate: float, epoch: float, *,
                 max_epochs_per_tick: int = 1000) -> None:
        if sim_rate <= 0:
            raise ConfigurationError(
                f"sim_rate must be positive, got {sim_rate}")
        if epoch <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch}")
        if max_epochs_per_tick < 1:
            raise ConfigurationError(
                f"max_epochs_per_tick must be >= 1, got "
                f"{max_epochs_per_tick}")
        self.sim_rate = sim_rate
        self.epoch = epoch
        self.max_epochs_per_tick = max_epochs_per_tick
        self._carry = 0.0  # fractional epochs owed from previous ticks

    def epochs_due(self, wall_elapsed_s: float) -> int:
        """Whole epochs owed for ``wall_elapsed_s`` of wall time.

        Consumes the reading: the fractional remainder is retained for
        the next call, debt beyond :attr:`max_epochs_per_tick` is
        discarded.
        """
        if not wall_elapsed_s >= 0.0:  # also rejects NaN
            raise ConfigurationError(
                f"elapsed wall time must be >= 0, got {wall_elapsed_s!r}")
        owed = self._carry + wall_elapsed_s * self.sim_rate / self.epoch
        due = int(owed)
        if due > self.max_epochs_per_tick:
            due = self.max_epochs_per_tick
            self._carry = 0.0  # drop the backlog, don't replay it
        else:
            self._carry = owed - due
        return due

    def reset(self) -> None:
        """Forget any fractional debt (e.g. after a manual tick)."""
        self._carry = 0.0
