"""One checkpoint-file format for every epoch loop.

PR 4 made every node fully shippable (:class:`NodeCheckpoint`); PR 7
gave the daemon an ad-hoc pickled checkpoint of its own. This module
unifies the file layer: a :class:`RunCheckpoint` is the single on-disk
envelope every epoch loop — :class:`~repro.cluster.simulation
.ClusterSimulation`, :class:`~repro.scheduler.scheduler
.PowerAwareScheduler`, and the :class:`~repro.daemon.service.Daemon` —
writes and resumes from. The envelope is deliberately thin:

* ``kind`` names the producing loop (``"cluster"`` / ``"scheduler"`` /
  ``"daemon"``), so a resume cannot silently install the wrong state;
* ``epoch`` / ``now`` locate the checkpoint on the run's timeline
  (``epoch`` also names the file inside a :class:`CheckpointStore`);
* ``config`` carries the producing loop's picklable configuration;
* ``state`` is the loop's own versioned ``snapshot()`` payload — the
  envelope never interprets it, so each layer evolves its schema
  independently behind its own ``version`` key.

Writes are atomic (temp file + ``os.replace``): a crash mid-write
leaves the previous file intact, which is the whole point of periodic
checkpointing — there is always a consistent file to resume from.

:class:`CheckpointStore` manages a *directory* of epoch-stamped
checkpoints. Keeping more than the latest file is what turns crash
resumption into time travel: :meth:`CheckpointStore.rewind` returns the
newest checkpoint at-or-before a requested epoch, and the elastic layer
(:mod:`repro.cluster.elastic`) replays from it under the same — or a
different — policy.
"""

from __future__ import annotations

import os
import pickle
import re
from dataclasses import dataclass

from repro.exceptions import CheckpointError, ConfigurationError

__all__ = [
    "RUN_CHECKPOINT_VERSION",
    "RUN_KINDS",
    "RunCheckpoint",
    "save_run_checkpoint",
    "load_run_checkpoint",
    "resolve_checkpoint",
    "CheckpointStore",
]

#: Schema version of the :class:`RunCheckpoint` envelope itself; the
#: per-layer ``state`` payloads carry their own ``version`` keys and
#: evolve independently.
RUN_CHECKPOINT_VERSION = 1

#: The epoch loops that write checkpoints.
RUN_KINDS = ("cluster", "scheduler", "daemon")

_STORE_FILE_RE = re.compile(r"^epoch-(\d{8})\.ckpt$")


@dataclass(frozen=True)
class RunCheckpoint:
    """One resumable point of one epoch loop.

    Attributes
    ----------
    version:
        Envelope schema version (:data:`RUN_CHECKPOINT_VERSION`).
    kind:
        The producing loop: ``"cluster"``, ``"scheduler"`` or
        ``"daemon"``.
    epoch:
        Epochs the loop had completed when the checkpoint was taken
        (names the file inside a :class:`CheckpointStore`).
    now:
        Simulated time at the checkpoint.
    config:
        The loop's picklable configuration (a frozen dataclass or a
        plain dict of provenance values, layer-dependent).
    state:
        The loop's own ``snapshot()`` payload, opaque to the envelope.
    """

    version: int
    kind: str
    epoch: int
    now: float
    config: object
    state: dict


def save_run_checkpoint(checkpoint: RunCheckpoint, path: str) -> str:
    """Atomically pickle ``checkpoint`` to ``path``; returns ``path``."""
    if checkpoint.kind not in RUN_KINDS:
        raise ConfigurationError(
            f"checkpoint kind must be one of {RUN_KINDS}, "
            f"got {checkpoint.kind!r}")
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_run_checkpoint(path: str, *,
                        kind: str | None = None) -> RunCheckpoint:
    """Read and validate one checkpoint file.

    ``kind`` (when given) pins the expected producing loop — resuming a
    cluster run from a daemon checkpoint fails loudly instead of
    mis-restoring.
    """
    try:
        with open(path, "rb") as fh:
            checkpoint = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError) as exc:
        raise CheckpointError(
            f"cannot read run checkpoint {path!r}: {exc}") from exc
    if not isinstance(checkpoint, RunCheckpoint):
        raise CheckpointError(
            f"{path!r} does not hold a RunCheckpoint "
            f"(got {type(checkpoint).__name__})")
    if checkpoint.version != RUN_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"run checkpoint {path!r} has envelope version "
            f"{checkpoint.version}; this build reads "
            f"{RUN_CHECKPOINT_VERSION}")
    if kind is not None and checkpoint.kind != kind:
        raise CheckpointError(
            f"run checkpoint {path!r} was written by a "
            f"{checkpoint.kind!r} loop, expected {kind!r}")
    return checkpoint


class CheckpointStore:
    """A directory of epoch-stamped :class:`RunCheckpoint` files.

    Files are named ``epoch-<NNNNNNNN>.ckpt``; one file per distinct
    epoch (re-saving an epoch atomically replaces it). The store is the
    unit both crash resumption (:meth:`latest`) and time travel
    (:meth:`rewind`) operate on.

    Parameters
    ----------
    root:
        Directory path; created if missing.
    kind:
        When set, every save and load is pinned to this checkpoint
        kind.
    keep:
        Retain only the newest ``keep`` files after each save
        (0 = keep everything — required for arbitrary rewind).
    """

    def __init__(self, root: str, *, kind: str | None = None,
                 keep: int = 0) -> None:
        if keep < 0:
            raise ConfigurationError(f"keep must be >= 0, got {keep}")
        if kind is not None and kind not in RUN_KINDS:
            raise ConfigurationError(
                f"kind must be one of {RUN_KINDS}, got {kind!r}")
        self.root = root
        self.kind = kind
        self.keep = keep
        os.makedirs(root, exist_ok=True)

    def path_for(self, epoch: int) -> str:
        return os.path.join(self.root, f"epoch-{epoch:08d}.ckpt")

    def save(self, checkpoint: RunCheckpoint) -> str:
        """Write ``checkpoint`` under its epoch; returns the path."""
        if self.kind is not None and checkpoint.kind != self.kind:
            raise CheckpointError(
                f"store {self.root!r} holds {self.kind!r} checkpoints; "
                f"refusing a {checkpoint.kind!r} one")
        path = save_run_checkpoint(checkpoint, self.path_for(checkpoint.epoch))
        if self.keep:
            for epoch in self.epochs()[:-self.keep]:
                os.remove(self.path_for(epoch))
        return path

    def epochs(self) -> list[int]:
        """Stored epochs, ascending."""
        out = []
        for name in os.listdir(self.root):
            match = _STORE_FILE_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def load(self, epoch: int) -> RunCheckpoint:
        return load_run_checkpoint(self.path_for(epoch), kind=self.kind)

    def latest(self) -> RunCheckpoint | None:
        """The newest stored checkpoint, or None on an empty store."""
        epochs = self.epochs()
        if not epochs:
            return None
        return self.load(epochs[-1])

    def rewind(self, epoch: int) -> RunCheckpoint:
        """The newest checkpoint at-or-before ``epoch`` (time travel).

        Raises :class:`CheckpointError` when nothing that early exists.
        """
        candidates = [e for e in self.epochs() if e <= epoch]
        if not candidates:
            raise CheckpointError(
                f"store {self.root!r} holds no checkpoint at or before "
                f"epoch {epoch} (stored: {self.epochs()})")
        return self.load(max(candidates))

    def __len__(self) -> int:
        return len(self.epochs())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CheckpointStore({self.root!r}, kind={self.kind!r}, "
                f"n={len(self)})")


def resolve_checkpoint(source, *, kind: str,
                       epoch: int | None = None) -> RunCheckpoint:
    """Turn any checkpoint source into one validated RunCheckpoint.

    ``source`` may be a :class:`RunCheckpoint`, a
    :class:`CheckpointStore`, a store *directory* path, or a single
    checkpoint *file* path. For stores, ``epoch=None`` selects the
    latest checkpoint and ``epoch=N`` the newest at-or-before N
    (time travel); for single checkpoints a non-None ``epoch`` must
    match exactly. Every resume path — cluster, scheduler, daemon —
    funnels through here, so they all accept the same sources.
    """
    store = None
    if isinstance(source, CheckpointStore):
        store = source
    elif isinstance(source, str) and not os.path.isfile(source):
        store = CheckpointStore(source, kind=kind)
    if store is not None:
        if epoch is None:
            checkpoint = store.latest()
            if checkpoint is None:
                raise CheckpointError(
                    f"store {store.root!r} holds no checkpoints")
        else:
            checkpoint = store.rewind(epoch)
    elif isinstance(source, str):
        checkpoint = load_run_checkpoint(source, kind=kind)
    elif isinstance(source, RunCheckpoint):
        checkpoint = source
    else:
        raise ConfigurationError(
            f"cannot resolve a checkpoint from {type(source).__name__}")
    if checkpoint.kind != kind:
        raise CheckpointError(
            f"expected a {kind!r} checkpoint, got {checkpoint.kind!r}")
    if store is None and epoch is not None and checkpoint.epoch != epoch:
        raise CheckpointError(
            f"checkpoint is from epoch {checkpoint.epoch}, not {epoch}")
    return checkpoint
