"""repro.sanitize — opt-in runtime lock sanitizer (TSan-lite).

The static concurrency rules (:mod:`repro.lint.rules.concurrency`)
catch what is provable from source; this package catches the rest at
runtime by instrumenting the daemon stack's own locks. It is **off by
default and free when off**: the factories below hand back plain
``threading`` primitives unless a :class:`LockTracker` is active, so
production code pays nothing for being instrumentable.

Usage, in instrumented code::

    from repro import sanitize

    self._lock = sanitize.tracked_rlock("Daemon._lock")
    self._buffer = sanitize.guarded(deque(), "Daemon._buffer",
                                    self._lock)
    sanitize.guard_fields(self, ("_seq", "epochs"), self._lock)

and in a test or fixture::

    with sanitize.active(sanitize.LockTracker(strict=False)) as tracker:
        ...exercise the daemon...
    assert tracker.violations == []

With a tracker active:

* ``tracked_lock``/``tracked_rlock`` return :class:`TrackedLock`
  proxies that feed the tracker's acquisition-order graph — an order
  inversion (potential deadlock) or a re-acquired non-reentrant lock
  is reported even when the run's interleaving got lucky;
* ``guarded``/``guard_attr`` wrap collections so mutating calls (and,
  with ``reads=True``, read paths) assert the declared lock is held;
* ``guard_fields`` makes plain-attribute writes assert their lock.

The pytest fixture in ``tests/conftest.py`` activates a non-strict
tracker for every test when ``REPRO_SANITIZE=1`` and fails the test on
any recorded violation; see ``docs/SANITIZER.md``.

Activation is process-global (the daemon's threads all consult the
same tracker) and intended for tests — activate once per test, not per
thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Union

from repro.sanitize.tracker import (
    GuardedProxy,
    GuardViolationError,
    LockOrderError,
    LockTracker,
    SanitizerError,
    TrackedLock,
    Violation,
)
from repro.sanitize.tracker import guard_fields as _guard_fields

__all__ = [
    "GuardViolationError",
    "GuardedProxy",
    "LockOrderError",
    "LockTracker",
    "SanitizerError",
    "TrackedLock",
    "Violation",
    "activate",
    "active",
    "current",
    "deactivate",
    "guard_attr",
    "guard_fields",
    "guarded",
    "tracked_lock",
    "tracked_rlock",
]

AnyLock = Union[TrackedLock, threading.Lock, threading.RLock]

_active: LockTracker | None = None
_active_mutex = threading.Lock()


def current() -> LockTracker | None:
    """The active tracker, or None when sanitizing is off."""
    return _active


def activate(tracker: LockTracker) -> LockTracker:
    """Install ``tracker`` as the process-global active tracker."""
    global _active
    with _active_mutex:
        if _active is not None:
            raise SanitizerError(
                "a LockTracker is already active; deactivate it first "
                "(nested trackers would split the order graph)")
        _active = tracker
    return tracker


def deactivate() -> None:
    """Remove the active tracker (idempotent)."""
    global _active
    with _active_mutex:
        _active = None


@contextmanager
def active(tracker: LockTracker | None = None) -> Iterator[LockTracker]:
    """Context manager: activate ``tracker`` (default: a strict one)
    for the duration of the block."""
    tracker = tracker if tracker is not None else LockTracker()
    activate(tracker)
    try:
        yield tracker
    finally:
        deactivate()


def tracked_lock(name: str) -> AnyLock:
    """A mutex for ``name`` (class-qualified, e.g. ``"X._lock"``):
    a :class:`TrackedLock` under an active tracker, else a plain
    ``threading.Lock``."""
    tracker = _active
    if tracker is None:
        return threading.Lock()
    return TrackedLock(name, tracker, reentrant=False)


def tracked_rlock(name: str) -> AnyLock:
    """Reentrant variant of :func:`tracked_lock`."""
    tracker = _active
    if tracker is None:
        return threading.RLock()
    return TrackedLock(name, tracker, reentrant=True)


def guarded(obj: Any, name: str, lock: AnyLock, *,
            reads: bool = False) -> Any:
    """Wrap collection ``obj`` so mutations (and reads, when
    ``reads=True``) assert ``lock`` is held. Returns ``obj`` unchanged
    when sanitizing is off or ``lock`` is an uninstrumented plain
    lock."""
    tracker = _active
    if tracker is None or not isinstance(lock, TrackedLock):
        return obj
    return GuardedProxy(obj, name, lock, tracker, reads=reads)


def guard_attr(obj: Any, field: str, name: str, lock: AnyLock, *,
               reads: bool = False) -> None:
    """In-place variant of :func:`guarded`: rebind ``obj.<field>`` to
    a guarded wrapper of its current value."""
    tracker = _active
    if tracker is None or not isinstance(lock, TrackedLock):
        return
    value = getattr(obj, field)
    if isinstance(value, GuardedProxy):
        return
    setattr(obj, field, GuardedProxy(value, name, lock, tracker,
                                     reads=reads))


def guard_fields(obj: Any, fields: tuple[str, ...],
                 lock: AnyLock) -> None:
    """Make plain-attribute writes of ``fields`` on ``obj`` assert
    ``lock`` (no-op when sanitizing is off)."""
    tracker = _active
    if tracker is None or not isinstance(lock, TrackedLock):
        return
    _guard_fields(obj, fields, lock, tracker)
