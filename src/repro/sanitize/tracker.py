"""Lock tracker: the runtime half of the concurrency story.

The static rules in :mod:`repro.lint.rules.concurrency` prove what they
can from source; this module checks the rest at runtime, the way TSan
does for C++ — by instrumenting the synchronisation primitives
themselves and watching real executions:

* **acquisition order** — every :class:`TrackedLock` acquire records
  the (lock, lock) edges implied by what the acquiring thread already
  holds. The first time an edge's reverse is also on record, two
  threads could take the pair in opposite orders: a latent deadlock,
  reported even though this particular run got lucky;
* **re-entry** — acquiring a non-reentrant tracked Lock a second time
  on the same thread is reported immediately (the real lock would
  deadlock; under a tracker the proxy reports instead so the test run
  can finish);
* **guard discipline** — attributes and collections registered with
  :func:`~repro.sanitize.guarded` / :func:`~repro.sanitize.guard_fields`
  check on every (mutating) access that the thread holds the lock
  declared to protect them.

Violations either raise at the offending call (``strict=True`` — the
stack trace points at the bug) or accumulate on
:attr:`LockTracker.violations` for a fixture to assert empty at
teardown (``strict=False`` — one test failure lists every violation of
the run).

Lock names are class-qualified (``Daemon._lock``), mirroring the static
analysis: all instances of a class share one node in the order graph.
That is deliberate — per-instance locks of one class are almost always
acquired under the same discipline, and merging them lets a two-client
test stand in for the N-client production shape.

Everything here is inert unless a tracker is active; see
:mod:`repro.sanitize` for the zero-cost-off factories.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Iterator

from repro.exceptions import ReproError

__all__ = [
    "GuardViolationError",
    "LockOrderError",
    "LockTracker",
    "SanitizerError",
    "TrackedLock",
    "Violation",
]


class SanitizerError(ReproError):
    """Base class for sanitizer-detected concurrency violations."""


class LockOrderError(SanitizerError):
    """Two tracked locks were acquired in both orders, or a
    non-reentrant tracked lock was re-acquired on its own thread."""


class GuardViolationError(SanitizerError):
    """A guarded attribute or collection was accessed without holding
    the lock registered to protect it."""


class Violation:
    """One recorded violation: its kind, message and capture site."""

    __slots__ = ("kind", "message", "stack")

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        self.message = message
        self.stack = "".join(traceback.format_stack(limit=12)[:-2])

    def __repr__(self) -> str:
        return f"Violation({self.kind}: {self.message})"

    def render(self) -> str:
        return f"[{self.kind}] {self.message}\n{self.stack}"


class TrackedLock:
    """A Lock/RLock proxy that reports acquisitions to a tracker.

    Supports the subset of the ``threading`` lock interface the repo
    uses: ``acquire``/``release`` and the context-manager protocol.
    The underlying primitive is a real lock — tracking adds checks, it
    never removes mutual exclusion.
    """

    __slots__ = ("name", "reentrant", "_lock", "_tracker")

    def __init__(self, name: str, tracker: "LockTracker",
                 *, reentrant: bool) -> None:
        self.name = name
        self.reentrant = reentrant
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self._tracker = tracker

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        # Report before blocking: a would-be deadlock should be
        # diagnosed even if this run's interleaving never hangs.
        self._tracker.note_acquire(self)
        got = self._lock.acquire(blocking, timeout)
        if not got:
            self._tracker.note_release(self)
        return got

    def release(self) -> None:
        self._lock.release()
        self._tracker.note_release(self)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        return self.name in self._tracker.held_names()

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"TrackedLock({self.name}, {kind})"


class LockTracker:
    """Records lock acquisitions and guard checks for one test run.

    Parameters
    ----------
    strict:
        True raises at the offending call; False records the violation
        on :attr:`violations` and lets execution continue (for
        end-to-end runs asserting a clean log at teardown).
    """

    def __init__(self, *, strict: bool = True) -> None:
        self.strict = strict
        self.violations: list[Violation] = []
        #: (held name, acquired name) -> first witness description.
        self._edges: dict[tuple[str, str], str] = {}
        self._tls = threading.local()
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Lock events
    # ------------------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Names of tracked locks held by the calling thread."""
        return tuple(self._stack())

    def note_acquire(self, lock: TrackedLock) -> None:
        stack = self._stack()
        if lock.name in stack and not lock.reentrant:
            self._report(
                "lock-order", LockOrderError,
                f"{lock.name} re-acquired on the same thread; it is a "
                "non-reentrant Lock, so this self-deadlocks")
        thread = threading.current_thread().name
        inversion: tuple[str, str] | None = None
        with self._mutex:
            for held in stack:
                if held == lock.name:
                    continue
                edge = (held, lock.name)
                self._edges.setdefault(
                    edge, f"thread {thread}: {held} -> {lock.name}")
                reverse = self._edges.get((lock.name, held))
                if reverse is not None and inversion is None:
                    inversion = (held, reverse)
        # report outside the mutex: _report re-acquires it to append
        if inversion is not None:
            held, reverse = inversion
            self._report(
                "lock-order", LockOrderError,
                f"{held} -> {lock.name} inverts an earlier acquisition "
                f"order ({reverse}); two threads taking these locks in "
                "opposite orders deadlock")
        stack.append(lock.name)

    def note_release(self, lock: TrackedLock) -> None:
        stack = self._stack()
        # remove the innermost matching entry; tracked locks always
        # release LIFO under ``with``, but be tolerant of manual use
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == lock.name:
                del stack[i]
                return

    # ------------------------------------------------------------------
    # Guard checks
    # ------------------------------------------------------------------

    def check_guard(self, what: str, lock: TrackedLock) -> None:
        """Record/raise unless the calling thread holds ``lock``."""
        if lock.name in self._stack():
            return
        self._report(
            "guard", GuardViolationError,
            f"{what} accessed without holding {lock.name} "
            f"(thread {threading.current_thread().name})")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, kind: str, exc_type: type,
                message: str) -> None:
        violation = Violation(kind, message)
        with self._mutex:
            self.violations.append(violation)
        if self.strict:
            raise exc_type(message)

    def render_violations(self) -> str:
        return "\n".join(v.render() for v in self.violations)


# ----------------------------------------------------------------------
# Guarded containers and attributes
# ----------------------------------------------------------------------

#: Mutating method names per built-in container worth guarding.
_MUTATOR_NAMES = frozenset({
    "append", "appendleft", "add", "insert", "extend", "update",
    "remove", "discard", "pop", "popleft", "popitem", "clear",
    "setdefault", "sort", "reverse", "__setitem__", "__delitem__",
    "__iadd__", "__ior__", "__iand__", "__isub__", "__ixor__",
})


class GuardedProxy:
    """Wrap a collection so accesses assert the guard lock is held.

    Mutating methods always check; read paths check only when
    ``reads=True`` (e.g. iterating a set another thread mutates is as
    racy as mutating it). The proxy forwards everything else verbatim,
    so ``len``/``in``/iteration/indexing behave exactly like the
    wrapped object.
    """

    __slots__ = ("_obj", "_name", "_lock", "_tracker", "_check_reads")

    def __init__(self, obj: Any, name: str, lock: TrackedLock,
                 tracker: LockTracker, *, reads: bool = False) -> None:
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_lock", lock)
        object.__setattr__(self, "_tracker", tracker)
        object.__setattr__(self, "_check_reads", reads)

    # -- checks --------------------------------------------------------

    def _check(self, op: str) -> None:
        self._tracker.check_guard(f"{self._name}.{op}", self._lock)

    def _maybe_check(self, op: str) -> None:
        if self._check_reads:
            self._check(op)

    # -- attribute forwarding ------------------------------------------

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._obj, name)
        if name in _MUTATOR_NAMES and callable(attr):
            checker: Callable[..., Any] = attr

            def checked(*args: Any, _a: Callable[..., Any] = checker,
                        _n: str = name, **kwargs: Any) -> Any:
                self._check(_n)
                return _a(*args, **kwargs)

            return checked
        if self._check_reads and callable(attr) and \
                not name.startswith("_"):
            reader: Callable[..., Any] = attr

            def checked_read(*args: Any,
                             _a: Callable[..., Any] = reader,
                             _n: str = name, **kwargs: Any) -> Any:
                self._check(_n)
                return _a(*args, **kwargs)

            return checked_read
        return attr

    # -- container dunders (not routed through __getattr__) ------------

    def __iter__(self) -> Iterator[Any]:
        self._maybe_check("__iter__")
        return iter(self._obj)

    def __len__(self) -> int:
        self._maybe_check("__len__")
        return len(self._obj)

    def __contains__(self, item: Any) -> bool:
        self._maybe_check("__contains__")
        return item in self._obj

    def __getitem__(self, key: Any) -> Any:
        self._maybe_check("__getitem__")
        return self._obj[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check("__setitem__")
        self._obj[key] = value

    def __delitem__(self, key: Any) -> None:
        self._check("__delitem__")
        del self._obj[key]

    def __bool__(self) -> bool:
        self._maybe_check("__bool__")
        return bool(self._obj)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GuardedProxy):
            other = other._obj
        return bool(self._obj == other)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._obj)  # raises like the wrapped object would

    def __repr__(self) -> str:
        return f"Guarded({self._name}, {self._obj!r})"


def guard_fields(obj: Any, fields: tuple[str, ...],
                 lock: TrackedLock, tracker: LockTracker) -> None:
    """Make plain-attribute *writes* on ``obj`` assert ``lock``.

    Swaps ``obj``'s class for a generated subclass whose
    ``__setattr__`` checks the guard for the named fields. Works for
    ``__slots__`` classes too (the subclass adds no state). Reads stay
    unchecked: scalar reads are GIL-atomic and the repo's tests poke
    daemon internals freely; the race the guard exists to catch is a
    lost or torn *update*.
    """
    cls = type(obj)
    guards = {field: (lock, tracker) for field in fields}
    existing = getattr(cls, "_sanitize_guards", None)
    if existing is not None:
        # already swapped (e.g. two guard_fields calls): merge
        merged = dict(existing)
        merged.update(guards)
        cls._sanitize_guards = merged
        return

    def __setattr__(self: Any, name: str, value: Any) -> None:
        guard = type(self)._sanitize_guards.get(name)
        if guard is not None:
            guard_lock, guard_tracker = guard
            guard_tracker.check_guard(
                f"{cls.__name__}.{name}", guard_lock)
        super(subclass, self).__setattr__(name, value)

    subclass = type(cls.__name__, (cls,), {
        "__slots__": (),
        "_sanitize_guards": guards,
        "__setattr__": __setattr__,
    })
    object.__setattr__(obj, "__class__", subclass)
