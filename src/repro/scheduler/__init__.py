"""Power-aware multi-job cluster scheduling (extension).

The paper's Section VI builds a model so that "a resource manager can
predict the progress slowdown a power cap will cause *before* applying
it"; this subpackage is the layer that actually spends those
predictions. It schedules a queue of jobs onto a shared node pool under
a cluster-wide power budget, choosing per-job RAPL caps whose predicted
slowdown stays inside each job's declared tolerance (the Eco-Mode
contract of Angelelli et al., 2024) and backfilling with the power the
caps free up:

* :mod:`repro.scheduler.job` — the job model (work target + eco-mode
  slowdown tolerance) and per-job bookkeeping,
* :mod:`repro.scheduler.queue` — the deterministic submission queue,
* :mod:`repro.scheduler.powerbook` — per-application power/progress
  profiles with fitted progress models, used for cap selection,
* :mod:`repro.scheduler.scheduler` — the FCFS / power-aware-backfill
  epoch loop with intra-job progress-aware rebalancing,
* :mod:`repro.scheduler.events` — the typed decision-trace log,
* :mod:`repro.scheduler.report` — per-job and cluster-level outcomes.
"""

from repro.scheduler.events import (
    BudgetViolation,
    CapSelected,
    EventLog,
    JobCompleted,
    JobKilled,
    JobStarted,
    JobSubmitted,
    SchedulerEvent,
)
from repro.scheduler.job import Job, JobRecord, JobState
from repro.scheduler.powerbook import AppPowerProfile, PowerBook
from repro.scheduler.queue import JobQueue
from repro.scheduler.report import SchedulerReport
from repro.scheduler.scheduler import PowerAwareScheduler, SchedulerConfig

__all__ = [
    "Job",
    "JobRecord",
    "JobState",
    "JobQueue",
    "AppPowerProfile",
    "PowerBook",
    "PowerAwareScheduler",
    "SchedulerConfig",
    "SchedulerReport",
    "SchedulerEvent",
    "EventLog",
    "JobSubmitted",
    "CapSelected",
    "JobStarted",
    "JobCompleted",
    "JobKilled",
    "BudgetViolation",
]
