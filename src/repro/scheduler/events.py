"""Structured scheduler telemetry: a typed, append-only event log.

Every decision the scheduler makes is recorded as a frozen dataclass —
submissions, cap selections, placements, completions, and budget
violations — so experiments can assert on the *decision trace* (not
just aggregate outcomes) and two runs with the same seed can be
compared event-by-event for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Type, TypeVar

from repro.exceptions import ConfigurationError

__all__ = [
    "SchedulerEvent",
    "JobSubmitted",
    "CapSelected",
    "JobStarted",
    "JobCompleted",
    "JobKilled",
    "BudgetViolation",
    "EventLog",
]


@dataclass(frozen=True)
class SchedulerEvent:
    """Base class: something that happened at a simulated time."""

    time: float


@dataclass(frozen=True)
class JobSubmitted(SchedulerEvent):
    job_id: str
    app_name: str
    n_nodes: int
    max_slowdown: float | None


@dataclass(frozen=True)
class CapSelected(SchedulerEvent):
    """The model-driven admission decision for an eco-mode job."""

    job_id: str
    cap: float                   #: chosen per-node package cap (W)
    predicted_slowdown: float    #: model prediction at that cap
    tolerance: float             #: the job's declared max slowdown


@dataclass(frozen=True)
class JobStarted(SchedulerEvent):
    job_id: str
    slots: tuple[int, ...]
    cap: float | None
    demand: float                #: power charged against the budget (W)


@dataclass(frozen=True)
class JobCompleted(SchedulerEvent):
    job_id: str
    run_time: float
    measured_slowdown: float


@dataclass(frozen=True)
class JobKilled(SchedulerEvent):
    """The job was cancelled (daemon ``kill``) before completing."""

    job_id: str
    was_running: bool            #: True if nodes had to be torn down


@dataclass(frozen=True)
class BudgetViolation(SchedulerEvent):
    """Measured cluster power exceeded the budget over one epoch."""

    power: float
    budget: float


_E = TypeVar("_E", bound=SchedulerEvent)


class EventLog:
    """Append-only, time-ordered log of :class:`SchedulerEvent`."""

    def __init__(self) -> None:
        self._events: list[SchedulerEvent] = []

    def append(self, event: SchedulerEvent) -> None:
        if self._events and event.time < self._events[-1].time - 1e-12:
            raise ConfigurationError(
                f"event at t={event.time} precedes last event "
                f"t={self._events[-1].time}")
        self._events.append(event)

    def of_type(self, kind: Type[_E]) -> list[_E]:
        """All events of a given type, in order."""
        return [e for e in self._events if isinstance(e, kind)]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SchedulerEvent]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> SchedulerEvent:
        return self._events[idx]

    def snapshot(self) -> dict:
        """Picklable log state (the events themselves are frozen,
        picklable dataclasses, stored by reference)."""
        return {"version": 1, "events": list(self._events)}

    def restore(self, state: dict) -> None:
        from repro.exceptions import check_snapshot_version

        check_snapshot_version(state, 1, "EventLog")
        self._events = list(state["events"])

    def render(self) -> str:
        """Human-readable one-line-per-event trace."""
        lines = []
        for e in self._events:
            fields = {k: v for k, v in vars(e).items() if k != "time"}
            body = " ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f"t={e.time:8.2f}  {type(e).__name__:16s} {body}")
        return "\n".join(lines)
