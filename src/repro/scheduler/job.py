"""Job model for the power-aware cluster scheduler.

A :class:`Job` is what a user submits: an application, a node count, a
fixed amount of science to produce per node, and — optionally — an
*eco-mode tolerance*: the maximum fractional progress slowdown the user
accepts in exchange for running under a power cap (the Eco-Mode
contract: the scheduler may throttle the job, but only within the
declared tolerance, and it uses the paper's progress model to predict
where that line is *before* starting the job).

:class:`JobRecord` is the scheduler's mutable bookkeeping for one job:
queue state, placement, the chosen cap and its predicted slowdown, and
the measured outcome once the job completes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import ConfigurationError

__all__ = ["Job", "JobRecord", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    #: cancelled by the operator (daemon ``kill``) before completion
    KILLED = "killed"


@dataclass(frozen=True)
class Job:
    """A user-submitted unit of work.

    Parameters
    ----------
    job_id:
        Unique identifier.
    app_name:
        Application to run (one instance per node, from the registry).
    n_nodes:
        Nodes requested.
    work_units:
        Progress units *per node* the job must produce to complete (in
        the application's own progress metric — atom-timesteps,
        iterations, ...). The job finishes when its slowest node has
        produced this much.
    submit_time:
        Simulated time the job enters the queue.
    max_slowdown:
        Eco-mode tolerance in (0, 1): the largest fractional progress
        slowdown the user accepts under a power cap. ``None`` means the
        job must run uncapped.
    app_kwargs:
        Extra sizing keywords for the application builder. The
        application must hold at least ``work_units`` of iterations —
        the scheduler tracks completion by published progress, not by
        application exit.
    """

    job_id: str
    app_name: str
    n_nodes: int
    work_units: float
    submit_time: float = 0.0
    max_slowdown: float | None = None
    app_kwargs: Mapping | None = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be non-empty")
        if self.n_nodes < 1:
            raise ConfigurationError(
                f"n_nodes must be >= 1, got {self.n_nodes}")
        if not self.work_units > 0:
            raise ConfigurationError(
                f"work_units must be positive, got {self.work_units}")
        if self.submit_time < 0:
            raise ConfigurationError(
                f"submit_time must be >= 0, got {self.submit_time}")
        if self.max_slowdown is not None and not 0.0 < self.max_slowdown < 1.0:
            raise ConfigurationError(
                f"max_slowdown must lie in (0, 1), got {self.max_slowdown}")

    @property
    def eco(self) -> bool:
        """Whether the job accepts an eco-mode power cap."""
        return self.max_slowdown is not None


@dataclass
class JobRecord:
    """Scheduler-side bookkeeping for one job."""

    job: Job
    state: JobState = JobState.PENDING
    #: node slots occupied while running (empty when pending)
    slots: tuple[int, ...] = ()
    #: per-node package cap chosen at admission (None = uncapped)
    cap: float | None = None
    #: model-predicted fractional slowdown at ``cap``
    predicted_slowdown: float = 0.0
    #: per-node power the scheduler charges against the cluster budget
    node_power: float = 0.0
    start_time: float = math.nan
    #: interpolated completion time (when the work target was crossed)
    end_time: float = math.nan
    #: measured steady per-node progress rate over the run
    measured_rate: float = math.nan
    #: measured fractional slowdown vs the power book's uncapped rate
    measured_slowdown: float = math.nan
    #: per-node package energy over the run (J), summed over nodes
    energy: float = 0.0
    _extra: dict = field(default_factory=dict, repr=False)

    @property
    def demand(self) -> float:
        """Cluster-budget demand while running (W)."""
        return self.job.n_nodes * self.node_power

    @property
    def wait_time(self) -> float:
        """Queue wait: submission to start."""
        return self.start_time - self.job.submit_time

    @property
    def run_time(self) -> float:
        """Start to (interpolated) completion."""
        return self.end_time - self.start_time

    @property
    def prediction_error(self) -> float:
        """|predicted - measured| slowdown (absolute, in fractions)."""
        return abs(self.predicted_slowdown - self.measured_slowdown)

    @property
    def within_tolerance(self) -> bool:
        """Did the measured slowdown honour the declared tolerance?

        Uncapped jobs (no tolerance) trivially comply. A small epsilon
        absorbs floating-point jitter at the boundary.
        """
        if self.job.max_slowdown is None:
            return True
        if math.isnan(self.measured_slowdown):
            return False
        return self.measured_slowdown <= self.job.max_slowdown + 1e-9
