"""Per-application power/progress profiles for cap selection.

The scheduler's decisions all reduce to two questions the paper's model
answers: *how much power does this application draw uncapped?* and *how
much progress does a given cap cost?* The :class:`PowerBook` measures
both once per application on a reference node and caches the result as
an :class:`AppPowerProfile`:

* beta and MPO from the Section IV-A characterization protocol
  (:meth:`repro.experiments.harness.Testbed.characterize`),
* the uncapped progress rate and package power from a steady run,
* a :class:`~repro.core.model.PowerCapModel` whose alpha (and beta) are
  *fitted* to a few capped probe runs via :mod:`repro.core.fitting` —
  Section VI-B3's proposed refinement, which removes most of the
  fixed-alpha model error and makes the predicted slowdowns trustworthy
  enough to gate admission on.

Cap selection (:meth:`AppPowerProfile.cheapest_cap`) walks a candidate
cap grid from the floor upward and returns the lowest cap whose
predicted slowdown stays within the job's tolerance — the cheapest
power demand the model says the user's contract allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.beta import beta_from_times
from repro.core.fitting import fit_alpha
from repro.core.model import PowerCapModel
from repro.exceptions import ConfigurationError, FittingError
from repro.experiments.harness import Testbed
from repro.hardware.config import NodeConfig, skylake_config
from repro.nrm.schemes import FixedCapSchedule
from repro.runtime.executor import RunExecutor

__all__ = ["AppPowerProfile", "PowerBook", "CHARACTERIZE_SIZING",
           "steady_sizing"]

#: Fixed-work sizings for the beta/MPO characterization runs (small so
#: the two DVFS-pinned runs finish quickly; beta is a ratio of times, so
#: the absolute size barely matters on the exact engine).
CHARACTERIZE_SIZING: dict[str, dict[str, int]] = {
    "lammps": {"n_steps": 60},
    "stream": {"n_iterations": 60},
    "amg": {"n_iterations": 12, "setup_iterations": 0},
    "qmcpack": {"vmc1_blocks": 0, "vmc2_blocks": 0, "dmc_blocks": 48},
    "openmc": {"inactive_batches": 0, "active_batches": 6},
}


def steady_sizing(app_name: str) -> dict[str, int]:
    """Open-ended sizing for steady-state runs of ``app_name``: the
    characterization phases scaled to effectively infinite iterations,
    so a run is bounded by wall time (or a scheduler work target), not
    by the application exhausting its input."""
    sizing = CHARACTERIZE_SIZING.get(app_name, {})
    return {k: (1_000_000 if v else 0) for k, v in sizing.items()}


@dataclass(frozen=True)
class AppPowerProfile:
    """Measured power/progress characterization of one application."""

    app_name: str
    beta: float                  #: measured compute-boundedness
    mpo: float                   #: measured misses per operation
    r_max: float                 #: steady uncapped progress rate (units/s)
    p_uncapped: float            #: steady uncapped package power (W)
    model: PowerCapModel         #: fitted predictor (alpha/beta from probes)
    fit_residual_rms: float      #: RMS progress residual of the fit
    probe_caps: tuple[float, ...]  #: package caps the fit observed

    def predicted_slowdown(self, cap: float) -> float:
        """Model-predicted fractional slowdown under package cap
        ``cap`` (0 when the cap does not bind)."""
        if cap <= 0:
            raise ConfigurationError(f"cap must be positive, got {cap}")
        return float(np.clip(self.model.slowdown_at_package_cap(cap),
                             0.0, 1.0))

    def cheapest_cap(self, tolerance: float, *, floor: float,
                     ceiling: float, step: float = 5.0,
                     margin: float = 0.8) -> tuple[float, float]:
        """Lowest candidate cap whose predicted slowdown respects the
        tolerance.

        Walks the grid ``floor, floor+step, ...`` up to ``ceiling`` and
        returns ``(cap, predicted_slowdown)`` for the first (cheapest)
        cap with predicted slowdown <= ``tolerance * margin``. The
        margin keeps the *measured* slowdown inside the user's declared
        tolerance despite residual model error. Falls back to the
        ceiling (effectively uncapped) if no grid point qualifies.
        """
        if not 0.0 < tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must lie in (0, 1), got {tolerance}")
        if not 0 < floor <= ceiling:
            raise ConfigurationError(
                f"need 0 < floor <= ceiling, got [{floor}, {ceiling}]")
        if step <= 0 or not 0.0 < margin <= 1.0:
            raise ConfigurationError("step must be > 0 and margin in (0, 1]")
        budget = tolerance * margin
        cap = floor
        while cap < ceiling - 1e-9:
            predicted = self.predicted_slowdown(cap)
            if predicted <= budget:
                return float(cap), predicted
            cap += step
        return float(ceiling), self.predicted_slowdown(ceiling)


class PowerBook:
    """Characterize applications on a reference node, once, and cache.

    Parameters
    ----------
    cfg:
        Reference node configuration (defaults to the calibrated
        Skylake node).
    n_workers:
        Worker count the *jobs* will run with — rates and powers depend
        on it, so the book must measure under identical conditions.
    seed:
        Measurement seed (profiles are deterministic given it).
    duration, warmup:
        Length of each steady-state probe run and the transient to
        discard.
    probe_caps:
        Package caps for the model-fitting probe runs; non-binding caps
        (above the uncapped power draw) are dropped automatically.
    executor:
        :class:`~repro.runtime.executor.RunExecutor` the measurement
        runs are dispatched through. Defaults to a serial executor —
        which still consults the :data:`~repro.runtime.executor.
        CACHE_ENV` result cache, so repeated characterizations (the CI
        warm-pass job, repeated experiment invocations) are served from
        disk. Results are identical for any worker count.
    """

    def __init__(self, cfg: NodeConfig | None = None, *, n_workers: int = 8,
                 seed: int = 0, duration: float = 12.0, warmup: float = 4.0,
                 probe_caps: tuple[float, ...] = (90.0, 75.0, 60.0),
                 executor: RunExecutor | None = None) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}")
        if not 0 <= warmup < duration:
            raise ConfigurationError("need 0 <= warmup < duration")
        if not probe_caps or any(c <= 0 for c in probe_caps):
            raise ConfigurationError("probe_caps must be positive")
        self.cfg = cfg if cfg is not None else skylake_config()
        self.n_workers = n_workers
        self.seed = seed
        self.duration = duration
        self.warmup = warmup
        self.probe_caps = tuple(sorted(probe_caps, reverse=True))
        self.executor = executor if executor is not None else RunExecutor(1)
        self._profiles: dict[str, AppPowerProfile] = {}

    # ------------------------------------------------------------------

    def profile(self, app_name: str) -> AppPowerProfile:
        """The (cached) profile of ``app_name``."""
        if app_name not in self._profiles:
            self._profiles[app_name] = self._characterize(app_name)
        return self._profiles[app_name]

    def preload(self, profile: AppPowerProfile) -> None:
        """Install an externally built profile (tests, replays)."""
        self._profiles[profile.app_name] = profile

    def known(self) -> list[str]:
        """Application names already profiled, sorted."""
        return sorted(self._profiles)

    # ------------------------------------------------------------------

    def _steady_kwargs(self, app_name: str) -> dict:
        kwargs: dict = steady_sizing(app_name)
        kwargs["n_workers"] = self.n_workers
        return kwargs

    def _task(self, app_name: str, app_kwargs: dict, *,
              duration: float | None = None, cap: float | None = None,
              dvfs_freq: float | None = None) -> "_MeasurementTask":
        return _MeasurementTask(
            cfg=self.cfg, seed=self.seed, app_name=app_name,
            app_kwargs=dict(app_kwargs), duration=duration,
            warmup=self.warmup, cap=cap, dvfs_freq=dvfs_freq)

    def _characterize(self, app_name: str) -> AppPowerProfile:
        """Measure one application's profile.

        Every measurement run is an independent, picklable task routed
        through :attr:`executor` — so a cache-enabled executor serves a
        repeated characterization from disk, and a pooled one fans the
        independent runs out. Either way the numbers are identical to
        the serial in-process protocol (the runs carry their own seeds
        and the reductions are the same functions).
        """
        with obs.tracer().span("powerbook.characterize", app=app_name):
            sizing = dict(CHARACTERIZE_SIZING.get(app_name, {}))
            sizing["n_workers"] = self.n_workers
            # Section IV-A beta/MPO: execution time at the nominal and
            # the low frequency; both runs are independent.
            high, low = self.executor.map(_measurement_run, [
                self._task(app_name, sizing, dvfs_freq=self.cfg.f_nominal),
                self._task(app_name, sizing, dvfs_freq=self.cfg.f_beta_low),
            ])
            beta = beta_from_times(low.duration, high.duration,
                                   self.cfg.f_beta_low, self.cfg.f_nominal)

            steady = self._steady_kwargs(app_name)
            [base] = self.executor.map(_measurement_run, [
                self._task(app_name, steady, duration=self.duration),
            ])
            r_max = base.rate
            p_uncapped = base.power
            if r_max <= 0:
                raise ConfigurationError(
                    f"{app_name}: no progress during the uncapped probe")
            p_coremax = max(beta, 1e-3) * p_uncapped

            # non-binding caps carry no model information
            caps = [cap for cap in self.probe_caps if cap < p_uncapped]
            probes = self.executor.map(_measurement_run, [
                self._task(app_name, steady, duration=self.duration, cap=cap)
                for cap in caps
            ])
            rates = [probe.rate for probe in probes]

            model, residual = self._fit(beta, r_max, p_coremax, caps, rates)
            return AppPowerProfile(
                app_name=app_name,
                beta=beta,
                mpo=high.mpo,
                r_max=r_max,
                p_uncapped=float(p_uncapped),
                model=model,
                fit_residual_rms=residual,
                probe_caps=tuple(caps),
            )

    def _fit(self, beta: float, r_max: float, p_coremax: float,
             caps: list[float], rates: list[float]
             ) -> tuple[PowerCapModel, float]:
        """Fit alpha to the probe observations, keeping the measured
        beta (Section VI-B3's refinement — beta stays fixed so Eq. 5's
        core split matches the conversion used for the probe points).
        Falls back to the paper's fixed alpha = 2 when no cap bound."""
        beta = float(np.clip(beta, 1e-3, 1.0))
        if not caps:
            return PowerCapModel(beta=beta, r_max=r_max,
                                 p_coremax=p_coremax), float("nan")
        p_corecaps = [beta * c for c in caps]
        try:
            fit = fit_alpha(p_corecaps, rates, beta=beta, r_max=r_max,
                            p_coremax=p_coremax)
        except FittingError:
            return PowerCapModel(beta=beta, r_max=r_max,
                                 p_coremax=p_coremax), float("nan")
        return fit.model, fit.residual_rms


@dataclass(frozen=True)
class _MeasurementTask:
    """Picklable description of one PowerBook measurement run."""

    cfg: NodeConfig
    seed: int
    app_name: str
    app_kwargs: dict
    duration: float | None           #: None runs the app to completion
    warmup: float
    cap: float | None                #: fixed package cap, None = uncapped
    dvfs_freq: float | None          #: pinned frequency, None = free


@dataclass(frozen=True)
class _MeasurementResult:
    """Plain-float reductions of one measurement run (picklable)."""

    duration: float
    mpo: float
    rate: float                      #: NaN for run-to-completion tasks
    power: float                     #: NaN for run-to-completion tasks


def _measurement_run(task: _MeasurementTask) -> _MeasurementResult:
    """Execute one measurement run; module-level so a process pool can
    import it and the result cache can key it by content. The reductions
    (steady rate over the post-warmup window, mean package power) happen
    in the worker so only small plain data crosses the pipe."""
    tb = Testbed(cfg=task.cfg, seed=task.seed)
    schedule = None if task.cap is None else FixedCapSchedule(task.cap)
    result = tb.run(task.app_name, duration=task.duration,
                    schedule=schedule, dvfs_freq=task.dvfs_freq,
                    app_kwargs=dict(task.app_kwargs))
    rate = power = float("nan")
    if task.duration is not None:
        rate = result.steady_progress(task.warmup, task.duration,
                                      ignore_zeros=False)
        power = float(result.power.window(task.warmup,
                                          task.duration).mean())
    return _MeasurementResult(duration=result.duration, mpo=result.mpo(),
                              rate=rate, power=power)
