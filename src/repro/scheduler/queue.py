"""Submission queue for the cluster scheduler.

A deterministic FIFO keyed by ``(submit_time, submission order)``: jobs
become *visible* to the scheduler once the simulated clock reaches their
``submit_time``, and within the visible set the scheduling policy
(FCFS or backfill, see :mod:`repro.scheduler.scheduler`) decides who
starts. The queue itself never reorders — backfill walks the visible
list but leaves queue order untouched, so waiting-time accounting stays
honest.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.scheduler.job import Job

__all__ = ["JobQueue"]


class JobQueue:
    """FIFO of submitted-but-not-started jobs."""

    def __init__(self) -> None:
        self._jobs: list[Job] = []
        self._seq: dict[str, int] = {}
        self._next_seq = 0

    def submit(self, job: Job) -> None:
        """Enqueue a job; order is (submit_time, submission sequence)."""
        if job.job_id in self._seq:
            raise ConfigurationError(f"job {job.job_id!r} already submitted")
        self._seq[job.job_id] = self._next_seq
        self._next_seq += 1
        self._jobs.append(job)
        self._jobs.sort(key=lambda j: (j.submit_time, self._seq[j.job_id]))

    def visible(self, now: float) -> list[Job]:
        """Jobs whose submit_time has arrived, in queue order (a copy)."""
        return [j for j in self._jobs if j.submit_time <= now + 1e-12]

    def next_arrival(self, now: float) -> float | None:
        """Earliest future submit_time, or None if nothing is pending."""
        future = [j.submit_time for j in self._jobs
                  if j.submit_time > now + 1e-12]
        return min(future) if future else None

    def remove(self, job_id: str) -> Job:
        """Remove a queued job (when the scheduler starts it)."""
        for i, job in enumerate(self._jobs):
            if job.job_id == job_id:
                return self._jobs.pop(i)
        raise ConfigurationError(f"job {job_id!r} is not queued")

    def snapshot(self) -> dict:
        """Picklable queue state: the queued jobs (frozen dataclasses,
        by reference) plus the submission-sequence bookkeeping that
        keeps FIFO ordering stable across a restore."""
        return {"version": 1, "jobs": list(self._jobs),
                "seq": dict(self._seq), "next_seq": self._next_seq}

    def restore(self, state: dict) -> None:
        from repro.exceptions import check_snapshot_version

        check_snapshot_version(state, 1, "JobQueue")
        self._jobs = list(state["jobs"])
        self._seq = dict(state["seq"])
        self._next_seq = state["next_seq"]

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __iter__(self):
        return iter(list(self._jobs))
