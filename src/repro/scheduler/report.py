"""Aggregated outcome of one scheduler run.

:class:`SchedulerReport` collects what a site operator (or an
acceptance test) asks of a power-aware scheduler: per-job wait/run
times and slowdown compliance, cluster power utilisation against the
budget, makespan, energy, and the model's per-job prediction error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.report import ascii_table, series_block
from repro.scheduler.events import EventLog
from repro.scheduler.job import JobRecord
from repro.telemetry.timeseries import TimeSeries

__all__ = ["SchedulerReport", "build_report"]


@dataclass(frozen=True)
class SchedulerReport:
    """Everything measured in one scheduler run."""

    policy: str
    n_slots: int
    power_budget: float
    records: tuple[JobRecord, ...]       #: completed jobs, submission order
    makespan: float                      #: last interpolated completion time
    total_energy: float                  #: package energy, all nodes (J)
    violations: int                      #: epochs with power > budget
    power: TimeSeries                    #: per-epoch mean cluster power (W)
    committed: TimeSeries                #: per-epoch admitted demand (W)
    utilisation: TimeSeries              #: per-epoch busy-slot fraction
    events: EventLog

    # -- aggregates --------------------------------------------------------

    def mean_wait(self) -> float:
        """Mean queue wait across jobs (s)."""
        self._require_jobs()
        return float(np.mean([r.wait_time for r in self.records]))

    def mean_power_utilisation(self) -> float:
        """Mean measured power as a fraction of the budget."""
        if self.power.is_empty():
            raise ConfigurationError("run produced no power samples")
        return self.power.mean() / self.power_budget

    def all_within_tolerance(self) -> bool:
        """Did every job honour its declared slowdown tolerance?"""
        self._require_jobs()
        return all(r.within_tolerance for r in self.records)

    def max_prediction_error(self) -> float:
        """Worst |predicted - measured| slowdown among capped jobs."""
        errors = [r.prediction_error for r in self.records
                  if r.cap is not None]
        return max(errors) if errors else 0.0

    def _require_jobs(self) -> None:
        if not self.records:
            raise ConfigurationError("report contains no completed jobs")

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        rows = []
        for r in self.records:
            job = r.job
            rows.append([
                job.job_id,
                job.app_name,
                job.n_nodes,
                "-" if job.max_slowdown is None else f"{job.max_slowdown:.0%}",
                "uncapped" if r.cap is None else f"{r.cap:.0f}",
                f"{r.wait_time:.1f}",
                f"{r.run_time:.1f}",
                f"{r.predicted_slowdown:.1%}",
                "-" if math.isnan(r.measured_slowdown)
                else f"{r.measured_slowdown:.1%}",
                "-" if r.cap is None else f"{r.prediction_error * 100:.1f}pp",
                "Y" if r.within_tolerance else "N",
            ])
        table = ascii_table(
            ["Job", "App", "Nodes", "Tol", "Cap (W)", "Wait (s)",
             "Run (s)", "Pred slow", "Meas slow", "Model err", "OK"],
            rows,
            title=f"[{self.policy}] budget={self.power_budget:.0f} W, "
                  f"{self.n_slots} slots",
        )
        summary = (
            f"  makespan {self.makespan:.1f} s | energy "
            f"{self.total_energy / 1e3:.1f} kJ | mean wait "
            f"{self.mean_wait():.1f} s | budget violations "
            f"{self.violations} | power utilisation "
            f"{self.mean_power_utilisation():.0%}"
        )
        return "\n".join([
            table,
            summary,
            series_block("  cluster power", self.power, unit="W"),
            series_block("  busy slots", self.utilisation, unit="frac"),
        ])


def build_report(*, policy: str, n_slots: int, power_budget: float,
                 records: list[JobRecord], total_energy: float,
                 violations: int, power: TimeSeries, committed: TimeSeries,
                 utilisation: TimeSeries, events: EventLog
                 ) -> SchedulerReport:
    """Assemble the report from the scheduler's raw state."""
    ends = [r.end_time for r in records if not math.isnan(r.end_time)]
    return SchedulerReport(
        policy=policy,
        n_slots=n_slots,
        power_budget=power_budget,
        records=tuple(records),
        makespan=max(ends) if ends else 0.0,
        total_energy=total_energy,
        violations=violations,
        power=power,
        committed=committed,
        utilisation=utilisation,
        events=events,
    )
