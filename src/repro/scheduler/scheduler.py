"""Power-aware multi-job cluster scheduler.

The missing layer between the paper's single-job cluster
(:mod:`repro.cluster.simulation`) and a resource manager: a
discrete-event scheduler that admits a queue of :class:`Job`\\ s onto a
shared pool of node slots while keeping the *cluster's* power draw
under a budget — by spending the progress model's predictions at
admission time.

Admission works like Eco-Mode (Angelelli et al., 2024): an eco job
declares the slowdown it tolerates; the scheduler asks the power book
for the cheapest per-node cap whose *predicted* slowdown (Eqs. 1-7,
fitted alpha) stays inside that tolerance, charges ``n_nodes * cap``
watts against the budget, and applies the cap through RAPL before the
job's first cycle. Jobs without a tolerance are charged their measured
uncapped draw. Two policies decide *who* starts:

* ``fcfs`` — strict queue order: the head waits for nodes *and* watts;
  nobody overtakes it.
* ``backfill`` — power-aware backfill: when the head does not fit,
  later jobs that fit the *current* node and power holes may start.
  Because eco jobs shrink their own power demand to fit, capping turns
  queue wait into (bounded) slowdown — the Eco-Mode trade.

While a job runs, its per-node budgets are re-allocated every epoch by
the paper-enabled :class:`~repro.cluster.policies.ProgressAwareRebalancer`
(slow nodes get more of the job's fixed power), so intra-job
variability is handled by the same machinery the single-job cluster
uses. The loop is deterministic: same seed, same workload -> identical
event trace, placements, caps, and completion times.

Node execution runs on :class:`~repro.cluster.sharding.ShardedLockstep`:
``SchedulerConfig.shards = 1`` (default) keeps every node in-process;
``shards >= 2`` spreads them over long-lived worker processes that
advance concurrently, each epoch exchanging only budgets down and
``(rates, energy, cumulative)`` up. Both paths run the same step
function, so reports are bit-for-bit identical either way.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.cluster.policies import ProgressAwareRebalancer
from repro.cluster.sharding import ShardedLockstep, StepRequest
from repro.cluster.variability import perturb_config
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    SimulationError,
    check_snapshot_version,
)
from repro.hardware.config import NodeConfig, skylake_config
from repro.runtime.runfile import RUN_CHECKPOINT_VERSION, RunCheckpoint
from repro.scheduler.events import (
    BudgetViolation,
    CapSelected,
    EventLog,
    JobCompleted,
    JobKilled,
    JobStarted,
    JobSubmitted,
    SchedulerEvent,
)
from repro.scheduler.job import Job, JobRecord, JobState
from repro.scheduler.powerbook import PowerBook
from repro.scheduler.queue import JobQueue
from repro.scheduler.report import SchedulerReport, build_report
from repro.stack import BUDGET, StackSpec
from repro.telemetry.timeseries import TimeSeries

__all__ = ["SchedulerConfig", "PowerAwareScheduler"]

_POLICIES = ("fcfs", "backfill")


@dataclass(frozen=True)
class SchedulerConfig:
    """Static parameters of one scheduler run.

    Attributes
    ----------
    n_slots:
        Node slots in the shared pool.
    power_budget:
        Cluster-wide package power budget (W).
    policy:
        ``"fcfs"`` or ``"backfill"``.
    epoch:
        Re-allocation/telemetry interval (s); 1 s matches the paper's
        monitor.
    min_cap:
        Lowest per-node cap the scheduler will ever select (W) — below
        this RAPL falls back to duty-cycling and the model is useless.
    cap_step:
        Candidate-cap grid spacing for eco admission (W).
    eco_margin:
        Fraction of a job's tolerance the *predicted* slowdown may use;
        the rest absorbs residual model error.
    n_workers:
        Workers per node-application instance.
    variability:
        ``(sigma_dynamic, sigma_static)`` per-slot manufacturing
        spread, or None for identical slots.
    seed:
        Master seed for slot variability and application noise.
    max_time:
        Hard wall on simulated time — exceeded means a job cannot
        finish (e.g. its application holds less work than
        ``work_units``), which raises instead of looping forever.
    stall_epochs:
        Consecutive epochs a running job may show zero progress on
        every node before the scheduler declares it wedged.
    shards:
        Worker processes node execution is sharded over; 1 (default)
        runs serially in-process. Reports are identical either way.
    engine:
        Node engine the lockstep layer runs: ``"object"`` (default) or
        ``"vector"`` (numpy structure-of-arrays batches, see
        :mod:`repro.vector`). Reports are bit-identical either way.
    balance:
        With ``shards >= 2``, install a
        :class:`~repro.cluster.elastic.ShardBalancer` that migrates
        nodes off slow shards between epochs. Pure wall-clock lever;
        reports stay bit-identical (see :mod:`repro.cluster.elastic`).
    """

    n_slots: int
    power_budget: float
    policy: str = "backfill"
    epoch: float = 1.0
    min_cap: float = 55.0
    cap_step: float = 5.0
    eco_margin: float = 0.8
    n_workers: int = 8
    variability: tuple[float, float] | None = None
    seed: int = 0
    max_time: float = 100_000.0
    stall_epochs: int = 30
    shards: int = 1
    engine: str = "object"
    balance: bool = False

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ConfigurationError(
                f"n_slots must be >= 1, got {self.n_slots}")
        if self.power_budget <= 0:
            raise ConfigurationError("power_budget must be positive")
        if self.policy not in _POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.epoch <= 0:
            raise ConfigurationError("epoch must be positive")
        if self.min_cap <= 0 or self.cap_step <= 0:
            raise ConfigurationError("min_cap and cap_step must be positive")
        if not 0.0 < self.eco_margin <= 1.0:
            raise ConfigurationError("eco_margin must lie in (0, 1]")
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.max_time <= 0 or self.stall_epochs < 1:
            raise ConfigurationError("bad max_time/stall_epochs")
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")
        if self.engine not in ("object", "vector"):
            raise ConfigurationError(
                f"engine must be 'object' or 'vector', got {self.engine!r}")


class _RunningJob:
    """Live state of a placed job (nodes advance on a local clock).

    The node stacks themselves live in the lockstep layer (possibly in
    shard workers); this record keeps only the per-epoch exchange state:
    the trailing rates the next rebalance allocates from, the budgets it
    decided, and the last step results (for completion/stall checks).
    """

    __slots__ = ("record", "node_ids", "rebalancer", "start", "stalled",
                 "last_cumulative", "last_rates", "pending_budgets",
                 "last_results")

    def __init__(self, record: JobRecord, node_ids: tuple[int, ...],
                 rebalancer: ProgressAwareRebalancer | None,
                 start: float) -> None:
        self.record = record
        self.node_ids = node_ids
        self.rebalancer = rebalancer
        self.start = start
        self.stalled = 0
        self.last_cumulative = 0.0
        # Fresh monitors report rate 0.0 (collect_rates semantics).
        self.last_rates = [0.0] * len(node_ids)
        self.pending_budgets: dict[int, float] = {}
        self.last_results: dict = {}

    def local_time(self, now: float) -> float:
        return now - self.start

    def min_cumulative(self) -> float:
        return min(self.last_results[nid].cumulative
                   for nid in self.node_ids)


class PowerAwareScheduler:
    """Admit, place, cap, and run a queue of jobs under a power budget.

    Parameters
    ----------
    config:
        Run parameters.
    powerbook:
        Per-application power/progress profiles (characterized lazily
        for every distinct ``app_name`` submitted).
    cfg:
        Baseline slot hardware configuration.
    """

    def __init__(self, config: SchedulerConfig, powerbook: PowerBook,
                 cfg: NodeConfig | None = None) -> None:
        self.config = config
        self.book = powerbook
        base = cfg if cfg is not None else skylake_config()
        self._slot_cfgs: list[NodeConfig] = []
        for slot in range(config.n_slots):
            slot_cfg = base
            if config.variability is not None:
                rng = np.random.default_rng([config.seed, slot])
                slot_cfg = perturb_config(
                    base, rng, sigma_dynamic=config.variability[0],
                    sigma_static=config.variability[1])
            self._slot_cfgs.append(slot_cfg)
        self._free_slots: list[int] = list(range(config.n_slots))
        self.queue = JobQueue()
        self.records: dict[str, JobRecord] = {}
        self.events = EventLog()
        self.power_series = TimeSeries("cluster-power")
        self.committed_series = TimeSeries("committed-power")
        self.utilisation = TimeSeries("slot-utilisation")
        self.now = 0.0
        self.violations = 0
        self.total_energy = 0.0
        self.epochs_done = 0  #: completed epochs (RunCheckpoint index)
        self._running: dict[str, _RunningJob] = {}
        self._started = 0  # submission-independent placement counter
        balancer = None
        if config.balance and config.shards > 1:
            from repro.cluster.elastic import ShardBalancer

            balancer = ShardBalancer()
        self._lockstep = ShardedLockstep(shards=config.shards,
                                         engine=config.engine,
                                         balancer=balancer)
        # Service hooks (repro.daemon): called synchronously, in
        # registration order, from inside the epoch loop. Listeners must
        # only *observe* — mutating the scheduler from one is undefined.
        self._listeners: list[Callable[[SchedulerEvent], None]] = []
        self._epoch_listeners: list[Callable[[float, dict], None]] = []

    # ------------------------------------------------------------------
    # Service hooks (see repro.daemon)
    # ------------------------------------------------------------------

    def add_listener(self, fn: Callable[[SchedulerEvent], None]) -> None:
        """Call ``fn`` with every :class:`SchedulerEvent` as it is
        logged (submissions, cap selections, starts, completions,
        kills, violations) — the daemon's lifecycle stream."""
        self._listeners.append(fn)

    def add_epoch_listener(self,
                           fn: Callable[[float, dict], None]) -> None:
        """Call ``fn(now, results)`` after every epoch advance, where
        ``results`` maps ``job_id -> {node_id: StepResult}`` for every
        job that ran the epoch (completion checks have not run yet, so
        a job's final epoch is included) — the daemon's progress
        stream."""
        self._epoch_listeners.append(fn)

    def _emit(self, event: SchedulerEvent) -> None:
        self.events.append(event)
        for fn in self._listeners:
            fn(event)

    @property
    def n_running(self) -> int:
        """Jobs currently placed on nodes."""
        return len(self._running)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue a job (before or during :meth:`run`)."""
        if job.n_nodes > self.config.n_slots:
            raise ConfigurationError(
                f"job {job.job_id!r} wants {job.n_nodes} nodes but the "
                f"cluster has {self.config.n_slots}")
        if job.submit_time < self.now:
            raise ConfigurationError(
                f"job {job.job_id!r} submitted in the past "
                f"({job.submit_time} < {self.now})")
        self.queue.submit(job)
        self.records[job.job_id] = JobRecord(job=job)
        # logged at the call time (the log is time-ordered and callers
        # may pre-submit future arrivals in any order); the arrival
        # itself is job.submit_time
        self._emit(JobSubmitted(
            time=self.now, job_id=job.job_id, app_name=job.app_name,
            n_nodes=job.n_nodes, max_slowdown=job.max_slowdown))
        obs.tracer().instant("scheduler.job_submitted", job_id=job.job_id,
                             app=job.app_name, n_nodes=job.n_nodes)

    def admissible(self, job: Job) -> tuple[bool, str]:
        """Static feasibility check: could ``job`` *ever* start on an
        otherwise-empty cluster?

        ``(True, "")`` when it can; ``(False, reason)`` when it cannot
        (too many nodes, or its planned power demand alone exceeds the
        cluster budget). The daemon rejects inadmissible jobs at the
        service boundary with a typed error instead of letting the
        batch loop raise :class:`SimulationError` mid-run. Calling this
        may trigger a (cached) power-book characterization of the
        job's application.
        """
        if job.n_nodes > self.config.n_slots:
            return False, (f"wants {job.n_nodes} nodes but the cluster "
                           f"has {self.config.n_slots}")
        _cap, node_power, _predicted = self._plan(job)
        demand = job.n_nodes * node_power
        if demand > self.config.power_budget + 1e-9:
            return False, (f"needs {demand:.1f} W even after eco capping "
                           f"but the budget is "
                           f"{self.config.power_budget:.1f} W")
        return True, ""

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a pending or running job (the daemon's ``kill``).

        Queued jobs are removed from the queue; running jobs have their
        nodes torn down and their slots freed. Either way the record
        moves to :attr:`JobState.KILLED` and a :class:`JobKilled` event
        is emitted. Cancelling a completed (or already killed) job
        raises :class:`ConfigurationError`.
        """
        record = self.records.get(job_id)
        if record is None:
            raise ConfigurationError(f"unknown job {job_id!r}")
        if record.state in (JobState.COMPLETED, JobState.KILLED):
            raise ConfigurationError(
                f"job {job_id!r} is already {record.state.value}")
        was_running = job_id in self._running
        if was_running:
            run = self._running.pop(job_id)
            self._lockstep.remove_nodes(list(run.node_ids))
            self._free_slots.extend(record.slots)
            self._free_slots.sort()
            record.end_time = self.now
        else:
            self.queue.remove(job_id)
        record.state = JobState.KILLED
        self._emit(JobKilled(time=self.now, job_id=job_id,
                             was_running=was_running))
        obs.tracer().instant("scheduler.job_killed", job_id=job_id,
                             was_running=was_running)
        return record

    # ------------------------------------------------------------------
    # Admission planning
    # ------------------------------------------------------------------

    def _plan(self, job: Job) -> tuple[float | None, float, float]:
        """(cap, per-node power demand, predicted slowdown) for a job.

        Eco jobs get the cheapest model-approved cap; rigid jobs are
        charged their measured uncapped package draw.
        """
        profile = self.book.profile(job.app_name)
        if job.max_slowdown is None:
            return None, profile.p_uncapped, 0.0
        ceiling = min(self._slot_cfgs[0].tdp, profile.p_uncapped)
        floor = min(self.config.min_cap, ceiling)
        cap, predicted = profile.cheapest_cap(
            job.max_slowdown, floor=floor, ceiling=ceiling,
            step=self.config.cap_step, margin=self.config.eco_margin)
        return cap, cap, predicted

    def _committed_power(self) -> float:
        return sum(run.record.demand for run in self._running.values())

    def _fits(self, job: Job, node_power: float) -> bool:
        if job.n_nodes > len(self._free_slots):
            return False
        demand = job.n_nodes * node_power
        return self._committed_power() + demand \
            <= self.config.power_budget + 1e-9

    def _try_start_jobs(self) -> None:
        blocked = False
        for job in self.queue.visible(self.now):
            cap, node_power, predicted = self._plan(job)
            if self._fits(job, node_power):
                # a start past a blocked earlier job is a backfill
                self._start(job, cap, node_power, predicted,
                            backfilled=blocked)
            elif self.config.policy == "fcfs":
                # strict queue order: nobody overtakes a blocked head
                break
            else:
                # backfill: leave the blocked job queued and keep
                # walking — later jobs may fit the node/power holes
                blocked = True

    def _start(self, job: Job, cap: float | None, node_power: float,
               predicted: float, *, backfilled: bool = False) -> None:
        record = self.records[job.job_id]
        self.queue.remove(job.job_id)
        slots = tuple(self._free_slots[:job.n_nodes])
        del self._free_slots[:job.n_nodes]
        tracer = obs.tracer()
        if cap is not None:
            self._emit(CapSelected(
                time=self.now, job_id=job.job_id, cap=cap,
                predicted_slowdown=predicted, tolerance=job.max_slowdown))
            tracer.instant("scheduler.cap_selected", job_id=job.job_id,
                           cap=cap, predicted_slowdown=predicted)

        self._lockstep.add_nodes(self._node_specs(job, slots, cap))
        self._started += 1

        rebalancer = None
        if cap is not None and job.n_nodes >= 2:
            # re-shuffle the job's fixed power between its nodes; bounds
            # keep every node inside RAPL's useful range around the cap
            rebalancer = ProgressAwareRebalancer(
                cap * job.n_nodes,
                min_node=cap * 0.7,
                max_node=min(self._slot_cfgs[0].tdp, cap * 1.5),
            )

        record.state = JobState.RUNNING
        record.slots = slots
        record.cap = cap
        record.node_power = node_power
        record.predicted_slowdown = predicted
        record.start_time = self.now
        self._running[job.job_id] = _RunningJob(
            record, slots, rebalancer, self.now)
        self._emit(JobStarted(
            time=self.now, job_id=job.job_id, slots=slots, cap=cap,
            demand=record.demand))
        tracer.instant("scheduler.job_started", job_id=job.job_id,
                       n_nodes=job.n_nodes, cap=cap, demand=record.demand,
                       backfilled=backfilled)

    # ------------------------------------------------------------------
    # Epoch loop
    # ------------------------------------------------------------------

    def run(self, *, checkpoint_store=None,
            checkpoint_every: int = 0) -> SchedulerReport:
        """Drive the cluster until every submitted job has completed.

        With ``checkpoint_every=N`` (and a
        :class:`~repro.runtime.runfile.CheckpointStore`), an atomic
        :class:`RunCheckpoint` is saved after every N-th completed
        epoch — the crash-resume and time-travel record (see
        :meth:`resume`).
        """
        if checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_store is None:
            raise ConfigurationError(
                "checkpoint_every needs a checkpoint_store")
        tracer = obs.tracer()
        with tracer.span("scheduler.run", policy=self.config.policy,
                         n_slots=self.config.n_slots,
                         power_budget=self.config.power_budget,
                         shards=self.config.shards) as span:
            while self.queue or self._running:
                before = self.epochs_done
                self.step()
                if checkpoint_every and self.epochs_done != before and \
                        self.epochs_done % checkpoint_every == 0:
                    checkpoint_store.save(self.run_checkpoint())
            span.set(makespan=self.now, violations=self.violations)
        return self._report()

    def step(self) -> bool:
        """Advance the simulation by one scheduling decision point.

        One call makes exactly one move: start whatever fits, then
        either advance one epoch (when anything is running) or idle-hop
        the clock to the next queued arrival. Returns True while
        submitted work remains, False once the cluster is drained —
        ``run()`` is simply ``while step(): pass`` plus a report. This
        is the seam :mod:`repro.daemon` drives: a service cannot call a
        run-to-completion loop, it interleaves epochs with admissions.
        """
        if not (self.queue or self._running):
            return False
        epoch = self.config.epoch
        tracer = obs.tracer()
        if self.now > self.config.max_time:
            raise SimulationError(
                f"scheduler exceeded max_time="
                f"{self.config.max_time}: "
                f"queued={[j.job_id for j in self.queue]} "
                f"running={sorted(self._running)}")
        self._try_start_jobs()
        if not self._running:
            # nothing runnable: idle-hop to the next arrival
            nxt = self.queue.next_arrival(self.now)
            if nxt is None:
                raise SimulationError(
                    "queued jobs can never start: "
                    f"{[j.job_id for j in self.queue]}")
            hops = max(1, math.ceil((nxt - self.now) / epoch - 1e-9))
            self.now += hops * epoch
            return bool(self.queue or self._running)
        with tracer.span("scheduler.epoch", now=self.now,
                         running=len(self._running),
                         queued=len(self.queue)):
            self._rebalance()
            self._advance_epoch()
        obs.metrics().counter("scheduler.epochs",
                              policy=self.config.policy).inc()
        return bool(self.queue or self._running)

    def close(self) -> None:
        """Shut down shard workers (no-op with ``shards=1``). Further
        :meth:`submit`/:meth:`run` calls are invalid afterwards."""
        self._lockstep.close()

    def _node_specs(self, job: Job, slots: tuple[int, ...],
                    cap: float | None) -> list[tuple[int, StackSpec]]:
        """Picklable stack specs for a job's placement, one per slot."""
        specs = []
        for k, slot in enumerate(slots):
            kwargs = dict(job.app_kwargs or {})
            kwargs.setdefault("n_workers", self.config.n_workers)
            specs.append((slot, StackSpec(
                app_name=job.app_name,
                cfg=self._slot_cfgs[slot],
                app_kwargs=kwargs,
                seed=self.config.seed + 7919 * self._started + 131 * k,
                controller=BUDGET,
                initial_budget=cap,
                name=f"node{slot}",
            )))
        return specs

    def _rebalance(self) -> None:
        """Allocate each rebalanced job's fixed power from its trailing
        rates (cached from the previous epoch's step results — node
        state has not changed since). The budgets ride down with the
        next epoch's step requests, which the budget-tracking policy
        applies on its next tick, exactly as the serial delivery did."""
        tracer = obs.tracer()
        for run in self._running.values():
            if run.rebalancer is None:
                continue
            budgets = [float(b)
                       for b in run.rebalancer.allocate(run.last_rates)]
            run.pending_budgets = dict(zip(run.node_ids, budgets))
            if tracer.enabled:
                tracer.instant("scheduler.rebalance",
                               job_id=run.record.job.job_id,
                               total_w=sum(budgets),
                               min_w=min(budgets), max_w=max(budgets))

    def _advance_epoch(self) -> None:
        epoch = self.config.epoch
        window = 3 * epoch
        self.now += epoch
        requests: list[StepRequest] = []
        for run in self._running.values():
            target = run.local_time(self.now)
            windows = (window,) if run.rebalancer is not None else ()
            for nid in run.node_ids:
                requests.append(StepRequest(
                    node_id=nid, target=target,
                    budget=run.pending_budgets.get(nid),
                    set_budget=nid in run.pending_budgets,
                    windows=windows))
        results = self._lockstep.step(requests)
        by_node = {res.node_id: res for res in results}
        # Sum energy per job first, then across jobs, replicating the
        # serial code's float-summation nesting exactly.
        epoch_energy = 0.0
        for run in self._running.values():
            job_energy = 0.0
            for nid in run.node_ids:
                job_energy += by_node[nid].energy
            epoch_energy += job_energy
            run.last_results = {nid: by_node[nid] for nid in run.node_ids}
            if run.rebalancer is not None:
                run.last_rates = [by_node[nid].rates[window]
                                  for nid in run.node_ids]
            run.pending_budgets = {}
        self.total_energy += epoch_energy
        power = epoch_energy / epoch
        busy = self.config.n_slots - len(self._free_slots)
        self.power_series.append(self.now, power)
        self.committed_series.append(self.now, self._committed_power())
        self.utilisation.append(self.now, busy / self.config.n_slots)
        if power > self.config.power_budget + 1e-6:
            self.violations += 1
            self._emit(BudgetViolation(
                time=self.now, power=power, budget=self.config.power_budget))
            obs.tracer().instant("scheduler.budget_violation", power=power,
                                 budget=self.config.power_budget)
        if self._epoch_listeners:
            samples = {job_id: dict(run.last_results)
                       for job_id, run in self._running.items()}
            for fn in self._epoch_listeners:
                fn(self.now, samples)
        self._complete_finished()
        self.epochs_done += 1

    def _complete_finished(self) -> None:
        for job_id in list(self._running):
            run = self._running[job_id]
            job = run.record.job
            cumulative = run.min_cumulative()
            if cumulative <= run.last_cumulative + 1e-12:
                run.stalled += 1
                if run.stalled >= self.config.stall_epochs:
                    raise SimulationError(
                        f"job {job_id!r} made no progress for "
                        f"{run.stalled} epochs — its application likely "
                        f"holds less work than work_units={job.work_units}")
            else:
                run.stalled = 0
            run.last_cumulative = cumulative
            if cumulative < job.work_units:
                continue
            self._finish(job_id, run)

    def _finish(self, job_id: str, run: _RunningJob) -> None:
        record = run.record
        job = record.job
        telemetry = self._lockstep.telemetry(list(run.node_ids))
        # interpolate the actual crossing inside the last epoch, per
        # node; the *job* completes when its slowest node crosses
        crossing = max(
            _crossing_time(telemetry[nid].progress, job.work_units,
                           telemetry[nid].interval)
            for nid in run.node_ids
        )
        record.end_time = run.start + crossing
        record.state = JobState.COMPLETED
        record.energy += sum(telemetry[nid].pkg_energy
                             for nid in run.node_ids)
        skip = min(2.0, 0.25 * crossing)
        record.measured_rate = _steady_rate(
            [telemetry[nid].progress for nid in run.node_ids],
            skip, crossing)
        profile = self.book.profile(job.app_name)
        record.measured_slowdown = 1.0 - record.measured_rate / profile.r_max
        self._lockstep.remove_nodes(list(run.node_ids))
        self._free_slots.extend(record.slots)
        self._free_slots.sort()
        del self._running[job_id]
        self._emit(JobCompleted(
            time=self.now, job_id=job_id, run_time=record.run_time,
            measured_slowdown=record.measured_slowdown))
        obs.tracer().instant("scheduler.job_completed", job_id=job_id,
                             run_time=record.run_time,
                             measured_slowdown=record.measured_slowdown)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.daemon.checkpointing)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable mid-run state of the whole scheduler.

        Covers the queue, every job record, the event log, the power/
        utilisation series, and — through the lockstep layer — a full
        :meth:`NodeInstance.snapshot` checkpoint of every running node,
        so a restored scheduler continues *bit-for-bit*. Restore onto a
        freshly constructed scheduler with the same config and power
        book. Job records are deep-copied so the snapshot does not
        alias the live run's mutable bookkeeping.
        """
        node_ids = [nid for run in self._running.values()
                    for nid in run.node_ids]
        node_cps = self._lockstep.checkpoint(node_ids)
        running = {}
        for job_id, run in self._running.items():
            running[job_id] = {
                "node_ids": list(run.node_ids),
                "rebalancer": run.rebalancer,
                "start": run.start,
                "stalled": run.stalled,
                "last_cumulative": run.last_cumulative,
                "last_rates": list(run.last_rates),
                "pending_budgets": dict(run.pending_budgets),
                "last_results": dict(run.last_results),
            }
        return {
            "version": 1,
            "now": self.now,
            "epochs": self.epochs_done,
            "violations": self.violations,
            "total_energy": self.total_energy,
            "started": self._started,
            "free_slots": list(self._free_slots),
            "queue": self.queue.snapshot(),
            "records": {jid: copy.deepcopy(rec)
                        for jid, rec in self.records.items()},
            "events": self.events.snapshot(),
            "power": self.power_series.snapshot(),
            "committed": self.committed_series.snapshot(),
            "utilisation": self.utilisation.snapshot(),
            "running": running,
            "nodes": node_cps,
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` onto this (freshly constructed,
        never stepped) scheduler, rebuilding every running node from
        its checkpoint inside the lockstep layer."""
        check_snapshot_version(state, 1, "PowerAwareScheduler")
        if self.records or self._running or self._lockstep.n_nodes:
            raise CheckpointError(
                "scheduler restore target must be freshly constructed "
                "(it already holds jobs or nodes)")
        self.now = state["now"]
        # .get: pre-elasticity snapshots lack the epoch counter; its
        # only consumer is checkpoint-file naming, so 0 is safe there.
        self.epochs_done = state.get("epochs", 0)
        self.violations = state["violations"]
        self.total_energy = state["total_energy"]
        self._started = state["started"]
        self._free_slots = list(state["free_slots"])
        self.queue.restore(state["queue"])
        self.records = {jid: copy.deepcopy(rec)
                        for jid, rec in state["records"].items()}
        self.events.restore(state["events"])
        self.power_series.restore(state["power"])
        self.committed_series.restore(state["committed"])
        self.utilisation.restore(state["utilisation"])
        items = []
        for job_id, rs in state["running"].items():
            run = _RunningJob(self.records[job_id], tuple(rs["node_ids"]),
                              rs["rebalancer"], rs["start"])
            run.stalled = rs["stalled"]
            run.last_cumulative = rs["last_cumulative"]
            run.last_rates = list(rs["last_rates"])
            run.pending_budgets = dict(rs["pending_budgets"])
            run.last_results = dict(rs["last_results"])
            self._running[job_id] = run
            for nid in run.node_ids:
                items.append((nid, state["nodes"][nid]))
        self._lockstep.add_nodes(items)

    def run_checkpoint(self) -> RunCheckpoint:
        """This instant of the run as a :class:`RunCheckpoint` (kind
        ``"scheduler"``), carrying the :class:`SchedulerConfig` and a
        full :meth:`snapshot` — the file both crash resumption and
        time-travel replay start from."""
        return RunCheckpoint(
            version=RUN_CHECKPOINT_VERSION,
            kind="scheduler",
            epoch=self.epochs_done,
            now=self.now,
            config=self.config,
            state=self.snapshot(),
        )

    @classmethod
    def resume(cls, checkpoint: RunCheckpoint, powerbook: PowerBook,
               cfg: NodeConfig | None = None, *,
               config: SchedulerConfig | None = None,
               ) -> "PowerAwareScheduler":
        """Rebuild a scheduler from a :meth:`run_checkpoint`.

        ``powerbook``/``cfg`` mirror the constructor (profiles are not
        checkpointed — pass the same book, or a preloaded equivalent).
        ``config`` (when given) replaces the recorded
        :class:`SchedulerConfig` for the continuation — the time-travel
        seam (different ``power_budget``, policy, shards, engine, ...).
        Structural fields (``n_slots``, ``seed``, ``variability``) must
        match the recorded run: the restored node state was built under
        them.
        """
        if checkpoint.kind != "scheduler":
            raise CheckpointError(
                f"expected a 'scheduler' checkpoint, got "
                f"{checkpoint.kind!r}")
        scheduler = cls(config if config is not None else checkpoint.config,
                        powerbook, cfg)
        scheduler.restore(checkpoint.state)
        return scheduler

    # ------------------------------------------------------------------

    def _report(self) -> SchedulerReport:
        return build_report(
            policy=self.config.policy,
            n_slots=self.config.n_slots,
            power_budget=self.config.power_budget,
            records=list(self.records.values()),
            total_energy=self.total_energy,
            violations=self.violations,
            power=self.power_series,
            committed=self.committed_series,
            utilisation=self.utilisation,
            events=self.events,
        )


def _crossing_time(series: TimeSeries, target: float,
                   interval: float) -> float:
    """Time (on the node's local clock) when the integrated progress
    series first reached ``target``, linearly interpolated inside the
    crossing monitor window."""
    cumulative = 0.0
    for t, rate in series:
        gained = rate * interval
        if cumulative + gained >= target - 1e-12:
            if gained <= 0:
                return t
            frac = (target - cumulative) / gained
            return t - interval + frac * interval
        cumulative += gained
    raise SimulationError(
        f"series {series.name!r} never reached {target} "
        f"(got {cumulative})")


def _steady_rate(series_list: list[TimeSeries], skip: float,
                 end: float) -> float:
    """Mean per-node progress rate over [skip, end], averaging the
    job's nodes (startup transient excluded so the figure is comparable
    to the power book's steady uncapped rate)."""
    rates = []
    for series in series_list:
        window = series.window(skip, end + 1e-9)
        if not window.is_empty():
            rates.append(window.mean())
    if not rates:
        raise SimulationError("no steady-state samples to rate a job by")
    return float(np.mean(rates))
