"""Unified node-stack assembly.

One layer owns the wiring of the paper's testbed stack — node, RAPL
firmware, msr-safe, libmsr, pub/sub bus, 1 Hz monitors, power
controller — so the single-node Testbed, the cluster NodeInstance and
the power-aware scheduler all run the *same* component graph:

* :class:`~repro.stack.spec.StackSpec` — a picklable description of
  one stack (workers rebuild stacks from specs across process
  boundaries);
* :class:`~repro.stack.builder.NodeStack` — assembles the component
  graph from a spec, with lifecycle hooks for telemetry taps;
* :class:`~repro.stack.checkpoint.NodeCheckpoint` — a versioned,
  picklable snapshot of a stack's full mutable state; restoring
  rebuilds from the spec and overlays the state, continuing
  bit-for-bit (``NodeStack.snapshot()`` / ``NodeStack.from_checkpoint``).
"""

from repro.stack.builder import NodeStack, default_topics
from repro.stack.checkpoint import CHECKPOINT_VERSION, NodeCheckpoint
from repro.stack.spec import BUDGET, CONTROLLERS, DAEMON, NONE, StackSpec

__all__ = [
    "StackSpec",
    "NodeStack",
    "NodeCheckpoint",
    "CHECKPOINT_VERSION",
    "default_topics",
    "DAEMON",
    "BUDGET",
    "NONE",
    "CONTROLLERS",
]
