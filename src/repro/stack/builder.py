"""Single assembly point for the paper's node stack.

Every consumer in the repo — the single-node :class:`Testbed`, the
cluster's :class:`NodeInstance`, and the power-aware scheduler — runs
the *same* component graph: simulated node, RAPL firmware, MSR device
behind msr-safe, libmsr API, pub/sub bus, 1 Hz progress monitors, and a
power controller. :class:`NodeStack` wires that graph exactly once,
from a :class:`~repro.stack.spec.StackSpec`, in a fixed canonical
order:

1. hardware: node → engine → firmware → msr-safe → libmsr,
2. userspace frequency/duty pins,
3. the application (prebuilt, or built from the registry),
4. telemetry transport: bus, publisher hook, per-topic monitors,
5. the power controller (schedule daemon or budget policy),
6. optional node-state sampling tap,
7. caller-supplied lifecycle hooks.

The order is part of the contract: engine timers fire in registration
order at tie times, and the golden parity fixtures in
``tests/stack`` pin the resulting series bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.apps import build as build_app
from repro.apps.base import SyntheticApp
from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig, skylake_config
from repro.hardware.ddcm import DDCMController
from repro.hardware.dvfs import DVFSController
from repro.hardware.msr import MSRDevice
from repro.hardware.msr_safe import MSRSafe
from repro.hardware.node import SimulatedNode
from repro.hardware.rapl import RaplFirmware
from repro.libmsr import LibMSR
from repro.nrm.daemon import PowerPolicyDaemon
from repro.nrm.policies import BudgetTrackingPolicy
from repro.nrm.schemes import UncappedSchedule
from repro.stack.spec import BUDGET, DAEMON, StackSpec
from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.pubsub import MessageBus
from repro.telemetry.timeseries import TimeSeries

from repro.runtime.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import Timer
    from repro.stack.checkpoint import NodeCheckpoint

__all__ = ["NodeStack", "default_topics"]

#: A lifecycle hook: called with the fully assembled stack before launch.
StackHook = Callable[["NodeStack"], None]


def default_topics(app: SyntheticApp) -> tuple[str, ...]:
    """The paper's default monitoring set for an application.

    The imbalance example is watched under both progress definitions,
    URBAN per coupled component, everything else on its main topic.
    """
    if app.name == "imbalance":
        return ("progress/imbalance/iterations",
                "progress/imbalance/work_units")
    if app.name == "urban":
        return tuple(f"progress/{c.name}" for c in app.components)  # type: ignore[attr-defined]
    return (app.topic,)


class NodeStack:
    """One fully wired node stack, assembled from a :class:`StackSpec`.

    Parameters
    ----------
    spec:
        The picklable stack description.
    app:
        Optional pre-built application instance; overrides
        ``spec.app_name``/``spec.app_kwargs`` (used by callers that
        construct bespoke apps — such stacks cannot be rebuilt from the
        spec alone).
    hooks:
        Callables invoked with the assembled stack (telemetry taps,
        extra timers) after wiring, before :meth:`launch`.

    Attributes
    ----------
    node, engine, firmware, libmsr, bus, app:
        The assembled components.
    monitors:
        ``topic -> ProgressMonitor`` for every monitored topic.
    topics:
        Monitored topics in order; ``topics[0]`` is the main topic.
    daemon:
        The :class:`PowerPolicyDaemon` (daemon controller) or ``None``.
    policy:
        The :class:`BudgetTrackingPolicy` (budget controller) or ``None``.
    freq_series, duty_series, uncore_series:
        Node-state tap series (empty unless ``spec.sample_node_state``).
    """

    def __init__(self, spec: StackSpec, *,
                 app: SyntheticApp | None = None,
                 hooks: Iterable[StackHook] = ()) -> None:
        self.spec = spec
        self.cfg: NodeConfig = spec.cfg if spec.cfg is not None \
            else skylake_config()

        # 1. Hardware: the only place in the tree that assembles the
        #    RAPL/msr-safe/libmsr access path.
        self.node = SimulatedNode(self.cfg)
        self.engine = Engine(self.node)
        self.firmware = RaplFirmware(self.node, self.engine,
                                     **dict(spec.firmware_kwargs or {}))
        self.libmsr = LibMSR(MSRSafe(MSRDevice(self.node, self.firmware)),
                             self.node.clock)

        # 2. Userspace pins.
        if spec.dvfs_freq is not None:
            DVFSController(self.node).set_frequency(spec.dvfs_freq)
        if spec.duty is not None:
            DDCMController(self.node).set_duty(spec.duty)

        # 3. Application.
        if app is not None:
            self.app = app
        else:
            self.app = build_app(spec.app_name,
                                 **spec.resolved_app_kwargs(self.cfg))

        # 4. Telemetry transport and monitors.
        self.bus = MessageBus(self.node.clock,
                              drop_prob=self.app.spec.transport_drop_prob,
                              seed=spec.seed + 1)
        pub = self.bus.pub_socket()
        self.engine.on_publish(lambda t, topic, v: pub.send(topic, v))
        self.topics: tuple[str, ...] = (
            spec.topics if spec.topics is not None
            else default_topics(self.app))
        self.monitors: dict[str, ProgressMonitor] = {
            topic: ProgressMonitor(
                self.engine, self.bus.sub_socket(topic),
                interval=spec.monitor_interval,
                name=self._series_name(topic))
            for topic in self.topics
        }

        # 5. Power controller.
        self.daemon: PowerPolicyDaemon | None = None
        self.policy: BudgetTrackingPolicy | None = None
        if spec.controller == DAEMON:
            self.daemon = PowerPolicyDaemon(
                self.engine, self.libmsr,
                spec.schedule or UncappedSchedule())
        elif spec.controller == BUDGET:
            self.policy = BudgetTrackingPolicy(self.engine, self.libmsr)
            if spec.initial_budget is not None:
                # Apply the admission-time cap *before* the first cycle
                # runs: the tracking policy only enforces budgets on its
                # next tick, which would leave a capped job uncapped for
                # its first second — enough to blow a cluster power
                # budget at scale.
                self.libmsr.set_pkg_power_limit(spec.initial_budget)
                self.policy.receive_budget(spec.initial_budget)

        # 6. Node-state tap.
        self.freq_series = TimeSeries(self._series_name("frequency"))
        self.duty_series = TimeSeries(self._series_name("duty"))
        self.uncore_series = TimeSeries(self._series_name("uncore-power"))
        if spec.sample_node_state:
            self.add_tap(spec.monitor_interval, self._sample_node_state)

        # 7. Caller hooks.
        for hook in hooks:
            hook(self)

        self._launched = False
        self._prebuilt = app is not None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def launch(self) -> "NodeStack":
        """Spawn the application's tasks on the engine (idempotent)."""
        if not self._launched:
            self.app.launch(self.engine)
            self._launched = True
        return self

    def run(self, until: float | None = None) -> float:
        """Launch (if needed) and drive the engine; returns final time."""
        self.launch()
        return self.engine.run(until=until)

    def add_tap(self, interval: float,
                callback: Callable[[float], None]) -> "Timer":
        """Register a periodic telemetry tap ``callback(now)``."""
        return self.engine.add_timer(interval, callback, period=interval)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> "NodeCheckpoint":
        """Capture the stack's full mutable state as a picklable
        :class:`~repro.stack.checkpoint.NodeCheckpoint`.

        Raises :class:`~repro.exceptions.CheckpointError` for stacks
        assembled around a prebuilt app instance — those cannot be
        rebuilt from the spec alone.
        """
        from repro.stack.checkpoint import take_checkpoint

        return take_checkpoint(self)

    @classmethod
    def from_checkpoint(cls, cp: "NodeCheckpoint",
                        hooks: Iterable[StackHook] = ()) -> "NodeStack":
        """Rebuild a stack from a checkpoint; it continues bit-for-bit
        where the snapshotted stack left off. ``hooks`` must match the
        hooks of the original assembly (timer registration order is
        verified on restore)."""
        from repro.stack.checkpoint import install_checkpoint

        return install_checkpoint(cp, hooks=hooks)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.node.clock.now

    @property
    def main_topic(self) -> str:
        return self.topics[0]

    @property
    def main_monitor(self) -> ProgressMonitor:
        return self.monitors[self.main_topic]

    @property
    def progress_series(self) -> TimeSeries:
        return self.main_monitor.series

    def topic_series(self) -> dict[str, TimeSeries]:
        return {t: m.series for t, m in self.monitors.items()}

    @property
    def controller_cap_series(self) -> TimeSeries:
        """The applied-cap series of whichever controller is installed."""
        if self.daemon is not None:
            return self.daemon.cap_series
        if self.policy is None:
            raise ConfigurationError(
                "stack was assembled with controller='none'; no cap series")
        return self.policy.cap_series

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _series_name(self, base: str) -> str:
        return f"{self.spec.name}:{base}" if self.spec.name else base

    def _sample_node_state(self, now: float) -> None:
        self.freq_series.append(now, self.node.frequency)
        self.duty_series.append(now, self.node.duty)
        self.uncore_series.append(now, self.node.last_power.uncore)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NodeStack({self.spec.app_name!r}, "
                f"controller={self.spec.controller!r}, t={self.now:.1f}s)")
