"""Whole-node checkpoint/restore.

A :class:`NodeCheckpoint` bundles a :class:`~repro.stack.spec.StackSpec`
with the mutable state of every component the spec assembles — node and
power model, RAPL firmware, msr-safe + MSR device, libmsr poll baseline,
message bus, progress monitors, power controller, application task state
and the engine's task/timer wheel. Restoring rebuilds the stack from the
spec (the deterministic part) and overlays the recorded state (the
mutable part), yielding a stack that continues *bit-for-bit* as the
original would have.

The checkpoint is plain picklable data: it can cross a process boundary,
which is what :mod:`repro.cluster.sharding` uses to hand nodes to
long-lived shard workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import CheckpointError
from repro.stack.spec import StackSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stack.builder import NodeStack, StackHook

__all__ = ["CHECKPOINT_VERSION", "NodeCheckpoint"]

#: Schema version of :attr:`NodeCheckpoint.state`. Bump on layout change.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class NodeCheckpoint:
    """A versioned, picklable snapshot of one node stack.

    Attributes
    ----------
    version:
        Schema version (:data:`CHECKPOINT_VERSION` at creation time).
    spec:
        The spec the stack was assembled from; the restore path re-runs
        the assembly from it before overlaying ``state``.
    state:
        Per-component state dicts, keyed by component.
    """

    version: int
    spec: StackSpec
    state: dict


def take_checkpoint(stack: "NodeStack") -> NodeCheckpoint:
    """Capture ``stack``'s full mutable state (see :class:`NodeCheckpoint`)."""
    if stack._prebuilt:
        raise CheckpointError(
            "stack was assembled around a prebuilt app instance; it cannot "
            "be rebuilt from its spec, so it cannot be checkpointed"
        )
    controller: dict | None
    if stack.daemon is not None:
        controller = stack.daemon.snapshot()
    elif stack.policy is not None:
        controller = stack.policy.snapshot()
    else:
        controller = None
    state = {
        "node": stack.node.snapshot(),
        "firmware": stack.firmware.snapshot(),
        "libmsr": stack.libmsr.snapshot(),
        "bus": stack.bus.snapshot(),
        "monitors": {t: m.snapshot() for t, m in stack.monitors.items()},
        "controller": controller,
        "app": stack.app.snapshot(),
        "taps": {
            "freq": stack.freq_series.snapshot(),
            "duty": stack.duty_series.snapshot(),
            "uncore": stack.uncore_series.snapshot(),
        },
        "engine": stack.engine.snapshot(),
        "launched": stack._launched,
    }
    return NodeCheckpoint(version=CHECKPOINT_VERSION, spec=stack.spec,
                          state=state)


def install_checkpoint(cp: NodeCheckpoint,
                       hooks: Iterable["StackHook"] = ()) -> "NodeStack":
    """Rebuild a stack from ``cp.spec`` and overlay the recorded state.

    Restore order matters: the node (and its clock) first, so every later
    component sees the checkpointed time; the engine last, because body
    restore assumes app/bus state is already in place. ``hooks`` must be
    the same hooks the original stack was assembled with — a hook that
    registers timers changes the timer numbering, and the engine restore
    verifies timers by registration sequence.
    """
    from repro.stack.builder import NodeStack

    if cp.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {cp.version} is not supported "
            f"(this build writes version {CHECKPOINT_VERSION})"
        )
    stack = NodeStack(cp.spec, hooks=hooks)
    if cp.state["launched"]:
        stack.launch()
    state = cp.state
    stack.node.restore(state["node"])
    stack.firmware.restore(state["firmware"])
    stack.libmsr.restore(state["libmsr"])
    stack.bus.restore(state["bus"])
    recorded = state["monitors"]
    if set(recorded) != set(stack.monitors):
        raise CheckpointError(
            f"monitored topics changed: snapshot {sorted(recorded)} vs "
            f"rebuild {sorted(stack.monitors)}"
        )
    for topic, mon_state in recorded.items():
        stack.monitors[topic].restore(mon_state)
    if stack.daemon is not None:
        stack.daemon.restore(state["controller"])
    elif stack.policy is not None:
        stack.policy.restore(state["controller"])
    stack.app.restore(state["app"])
    stack.freq_series.restore(state["taps"]["freq"])
    stack.duty_series.restore(state["taps"]["duty"])
    stack.uncore_series.restore(state["taps"]["uncore"])
    stack.engine.restore(state["engine"])
    return stack
