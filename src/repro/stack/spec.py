"""Picklable description of one node's complete software/hardware stack.

The paper's testbed is a single fixed assembly — simulated node, RAPL
firmware, the MSR device behind msr-safe, the libmsr-style API, the
ZeroMQ-style bus, 1 Hz progress monitors, and a power controller.
:class:`StackSpec` captures every degree of freedom of that assembly in
one frozen dataclass built from plain data (the node config, the
application *name* and kwargs, schedules, seeds), so a spec can be

* handed to :class:`~repro.stack.builder.NodeStack` to wire the whole
  component graph exactly once, and
* pickled across a process boundary, where a worker reconstructs the
  stack from scratch — live stacks hold generators and cannot be
  pickled, but their specs can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.hardware.config import NodeConfig
from repro.nrm.schemes import CapSchedule

__all__ = ["StackSpec", "DAEMON", "BUDGET", "NONE", "CONTROLLERS"]

#: Controller choices: the schedule-driven power-policy daemon of the
#: single-node experiments, the budget-tracking policy a cluster
#: hierarchy feeds, or no controller at all (stacks whose capping agent
#: is installed by a lifecycle hook — see the NRM examples).
DAEMON = "daemon"
BUDGET = "budget"
NONE = "none"
CONTROLLERS = (DAEMON, BUDGET, NONE)


@dataclass(frozen=True)
class StackSpec:
    """Everything needed to assemble one node stack, as plain data.

    Attributes
    ----------
    app_name:
        Application to build through the registry (``app_kwargs`` are
        forwarded; ``seed`` and ``cfg`` are filled in unless given).
    cfg:
        Node hardware configuration; ``None`` selects the default
        Skylake testbed configuration at build time.
    app_kwargs:
        Keyword arguments for the application factory.
    seed:
        Master seed. The application receives it directly; the message
        bus loss process is seeded with ``seed + 1`` (matching the
        paper harness).
    schedule:
        Capping schedule executed by the power-policy daemon
        (``controller="daemon"`` only); ``None`` runs uncapped.
    controller:
        ``"daemon"`` for the schedule-driven
        :class:`~repro.nrm.daemon.PowerPolicyDaemon`, ``"budget"`` for
        the hierarchy-fed
        :class:`~repro.nrm.policies.BudgetTrackingPolicy`, ``"none"``
        to assemble no controller (a lifecycle hook supplies one).
    initial_budget:
        Budget-controller only: a cap applied *before* the first cycle
        runs (admission-time capping; the tracking policy alone would
        leave the node uncapped until its first tick).
    monitor_interval:
        Progress-monitor aggregation window (the paper uses 1 s).
    topics:
        Topics to monitor; ``None`` selects the application's paper
        default (component topics for URBAN, both progress definitions
        for the imbalance example, the main topic otherwise).
    dvfs_freq, duty:
        Optional userspace frequency / duty-cycle pins applied through
        the DVFS and DDCM knobs before the run.
    firmware_kwargs:
        Overrides for the RAPL firmware (ablations).
    name:
        Stack identity used to prefix monitor/series names
        (``"node3"`` gives ``"node3:progress/..."``); ``None`` keeps
        bare topic names.
    sample_node_state:
        When True the stack installs a periodic tap recording package
        frequency, duty cycle and instantaneous uncore power (the
        Testbed's extra telemetry).
    """

    app_name: str
    cfg: NodeConfig | None = None
    app_kwargs: Mapping[str, Any] | None = None
    seed: int = 0
    schedule: CapSchedule | None = None
    controller: str = DAEMON
    initial_budget: float | None = None
    monitor_interval: float = 1.0
    topics: tuple[str, ...] | None = None
    dvfs_freq: float | None = None
    duty: float | None = None
    firmware_kwargs: Mapping[str, Any] | None = None
    name: str | None = None
    sample_node_state: bool = False

    def __post_init__(self) -> None:
        if not self.app_name:
            raise ConfigurationError("app_name must be a non-empty string")
        if self.controller not in CONTROLLERS:
            raise ConfigurationError(
                f"controller must be one of {CONTROLLERS}, "
                f"got {self.controller!r}")
        if self.monitor_interval <= 0:
            raise ConfigurationError(
                f"monitor_interval must be positive, got "
                f"{self.monitor_interval}")
        if self.initial_budget is not None:
            if self.controller != BUDGET:
                raise ConfigurationError(
                    "initial_budget requires the budget controller")
            if self.initial_budget <= 0:
                raise ConfigurationError(
                    f"initial_budget must be positive, got "
                    f"{self.initial_budget}")
        if self.schedule is not None and self.controller != DAEMON:
            raise ConfigurationError(
                "a cap schedule requires the daemon controller")
        if self.topics is not None and not self.topics:
            raise ConfigurationError("topics must be None or non-empty")

    def replace(self, **changes: Any) -> "StackSpec":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

    def resolved_app_kwargs(self, cfg: NodeConfig) -> dict[str, Any]:
        """Application factory kwargs with seed/cfg defaults filled in."""
        kwargs = dict(self.app_kwargs or {})
        kwargs.setdefault("seed", self.seed)
        kwargs.setdefault("cfg", cfg)
        return kwargs
