"""Linux powercap sysfs emulation.

See :mod:`repro.sysfs.powercap`.
"""

from repro.sysfs.powercap import PowercapFS

__all__ = ["PowercapFS"]
