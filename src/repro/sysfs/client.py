"""A user-level powercap client, in the style of Variorum/powercap-utils.

Tools like GEOPM and Variorum manage RAPL through the kernel powercap
tree rather than raw MSRs. :class:`PowercapClient` is that consumer: it
speaks only file paths and ASCII integers against a
:class:`~repro.sysfs.powercap.PowercapFS`, giving wrapper-level code a
realistic surface to exercise (the ``repro_why`` calibration note for
this reproduction: "powercap sysfs + model fitting trivial; wrappers
fine").
"""

from __future__ import annotations

from repro.exceptions import PowercapError
from repro.sysfs.powercap import PowercapFS

__all__ = ["PowercapClient"]

_WRAP_UJ_FIELD = "max_energy_range_uj"


class PowercapClient:
    """Read/program package power limits through the sysfs tree."""

    def __init__(self, fs: PowercapFS) -> None:
        self.fs = fs
        self._last_energy_uj: int | None = None

    # -- reads ---------------------------------------------------------------

    def _read_int(self, path: str) -> int:
        return int(self.fs.read(path))

    def zone_name(self) -> str:
        """Name of the package zone (``package-0``)."""
        return self.fs.read(PowercapFS.PKG + "/name").strip()

    def power_limit_w(self) -> float:
        """Programmed long-term power limit in watts."""
        return self._read_int(
            PowercapFS.PKG + "/constraint_0_power_limit_uw") / 1e6

    def max_power_w(self) -> float:
        """Hardware maximum (TDP) in watts."""
        return self._read_int(
            PowercapFS.PKG + "/constraint_0_max_power_uw") / 1e6

    def time_window_s(self) -> float:
        """Enforcement window in seconds."""
        return self._read_int(
            PowercapFS.PKG + "/constraint_0_time_window_us") / 1e6

    def enabled(self) -> bool:
        """Whether capping is currently enforced."""
        return self._read_int(PowercapFS.PKG + "/enabled") == 1

    def energy_uj(self) -> int:
        """Raw wrapping package energy counter (microjoules)."""
        return self._read_int(PowercapFS.PKG + "/energy_uj")

    def energy_delta_j(self) -> float | None:
        """Joules consumed since the previous call, handling counter
        wraparound; the first call primes the baseline and returns None."""
        now = self.energy_uj()
        wrap = self._read_int(PowercapFS.PKG + "/" + _WRAP_UJ_FIELD) + 1
        prev, self._last_energy_uj = self._last_energy_uj, now
        if prev is None:
            return None
        return ((now - prev) % wrap) / 1e6

    # -- writes -----------------------------------------------------------------

    def set_power_limit_w(self, watts: float) -> None:
        """Program the long-term package limit."""
        if watts <= 0:
            raise PowercapError(f"limit must be positive, got {watts}")
        self.fs.write(PowercapFS.PKG + "/constraint_0_power_limit_uw",
                      str(int(watts * 1e6)))

    def set_time_window_s(self, seconds: float) -> None:
        """Program the enforcement window."""
        if seconds <= 0:
            raise PowercapError(f"window must be positive, got {seconds}")
        self.fs.write(PowercapFS.PKG + "/constraint_0_time_window_us",
                      str(int(seconds * 1e6)))

    def set_enabled(self, flag: bool) -> None:
        """Enable or disable enforcement."""
        self.fs.write(PowercapFS.PKG + "/enabled", "1" if flag else "0")
