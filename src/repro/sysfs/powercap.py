"""``/sys/class/powercap/intel-rapl`` emulation.

The kernel's powercap framework is the portable way user software (and
tools like Variorum or GEOPM) reads and sets RAPL limits. This module
exposes the same tree over the simulated node::

    intel-rapl/
      intel-rapl:0/                    (package zone)
        name                           "package-0"
        energy_uj                      wrapping counter, microjoules
        max_energy_range_uj
        constraint_0_name              "long_term"
        constraint_0_power_limit_uw    microwatts (writable)
        constraint_0_time_window_us    microseconds (writable)
        constraint_0_max_power_uw
        enabled                        0/1 (writable)
        intel-rapl:0:0/                (dram subzone)
          name                         "dram"
          energy_uj

All values use the kernel's units (micro-everything, newline-terminated
ASCII). :meth:`PowercapFS.read` / :meth:`PowercapFS.write` operate on the
virtual tree; :meth:`PowercapFS.materialize` writes a point-in-time copy
to a real directory for wrapper code that insists on file I/O.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.exceptions import PowercapError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode
    from repro.hardware.rapl import RaplFirmware

__all__ = ["PowercapFS"]

_WRAP_UJ = (1 << 32) * 61  # ~= 2^32 energy-status ticks at 61 uJ/tick


class PowercapFS:
    """Virtual powercap sysfs tree bound to a node + RAPL firmware."""

    ROOT = "intel-rapl"
    PKG = "intel-rapl/intel-rapl:0"
    DRAM = "intel-rapl/intel-rapl:0/intel-rapl:0:0"

    def __init__(self, node: "SimulatedNode", firmware: "RaplFirmware") -> None:
        self.node = node
        self.firmware = firmware

    # -- path table --------------------------------------------------------

    def _files(self) -> dict[str, str]:
        node, fw = self.node, self.firmware
        pkg_uj = int(node.pkg_energy * 1e6) % _WRAP_UJ
        dram_uj = int(node.dram_energy * 1e6) % _WRAP_UJ
        return {
            f"{self.PKG}/name": "package-0",
            f"{self.PKG}/energy_uj": str(pkg_uj),
            f"{self.PKG}/max_energy_range_uj": str(_WRAP_UJ - 1),
            f"{self.PKG}/constraint_0_name": "long_term",
            f"{self.PKG}/constraint_0_power_limit_uw": str(int(fw.limit * 1e6)),
            f"{self.PKG}/constraint_0_time_window_us": str(int(fw.window * 1e6)),
            f"{self.PKG}/constraint_0_max_power_uw": str(int(node.cfg.tdp * 1e6)),
            f"{self.PKG}/enabled": "1" if fw.enabled else "0",
            f"{self.DRAM}/name": "dram",
            f"{self.DRAM}/energy_uj": str(dram_uj),
            f"{self.DRAM}/max_energy_range_uj": str(_WRAP_UJ - 1),
            f"{self.DRAM}/constraint_0_name": "long_term",
            f"{self.DRAM}/constraint_0_power_limit_uw": str(
                int((fw.dram_limit if fw.dram_limit is not None else 0) * 1e6)
            ),
        }

    def list(self) -> list[str]:
        """All readable paths, sorted (like ``find`` on the real tree)."""
        return sorted(self._files())

    def exists(self, path: str) -> bool:
        """Whether ``path`` names a file in the tree."""
        return path.strip("/") in self._files()

    # -- file operations -----------------------------------------------------

    def read(self, path: str) -> str:
        """Read a sysfs file; returns its content with trailing newline,
        exactly as the kernel does."""
        files = self._files()
        key = path.strip("/")
        if key not in files:
            raise PowercapError(f"no such powercap file: {path}")
        return files[key] + "\n"

    def write(self, path: str, value: str) -> None:
        """Write a sysfs file (power limit, time window, or enabled)."""
        key = path.strip("/")
        if key == f"{self.PKG}/constraint_0_power_limit_uw":
            uw = self._parse_int(path, value)
            if uw <= 0:
                raise PowercapError(f"power limit must be positive, got {uw} uW")
            self.firmware.set_limit(uw / 1e6)
            return
        if key == f"{self.PKG}/constraint_0_time_window_us":
            us = self._parse_int(path, value)
            if us <= 0:
                raise PowercapError(f"time window must be positive, got {us} us")
            self.firmware.window = us / 1e6
            return
        if key == f"{self.DRAM}/constraint_0_power_limit_uw":
            uw = self._parse_int(path, value)
            # the kernel uses 0 to clear a DRAM limit
            self.firmware.set_dram_limit(uw / 1e6 if uw > 0 else None)
            return
        if key == f"{self.PKG}/enabled":
            flag = self._parse_int(path, value)
            if flag not in (0, 1):
                raise PowercapError(f"enabled takes 0 or 1, got {flag}")
            if flag:
                self.firmware.set_limit(self.firmware.limit)
            else:
                self.firmware.disable()
            return
        if key in self._files():
            raise PowercapError(f"powercap file is read-only: {path}")
        raise PowercapError(f"no such powercap file: {path}")

    @staticmethod
    def _parse_int(path: str, value: str) -> int:
        try:
            return int(value.strip())
        except ValueError:
            raise PowercapError(
                f"malformed integer written to {path}: {value!r}"
            ) from None

    # -- on-disk materialization -----------------------------------------------

    def materialize(self, root: str | os.PathLike) -> str:
        """Write a point-in-time snapshot of the tree under ``root``.

        Returns the path of the created ``intel-rapl`` directory. Useful
        for exercising wrapper code that reads the real sysfs through the
        filesystem; note the snapshot is static — re-materialize to
        refresh counters.
        """
        root = os.fspath(root)
        for rel, content in self._files().items():
            full = os.path.join(root, rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="ascii") as fh:
                fh.write(content + "\n")
        return os.path.join(root, self.ROOT)
