"""Progress-reporting infrastructure.

The paper instruments each application to publish its online-performance
metric over ZeroMQ PUB/SUB sockets, and a monitor collects and averages
the values once every second (Section IV-B). This subpackage reproduces
that stack in-process:

* :mod:`repro.telemetry.timeseries` — timestamped sample container with
  resampling and summary statistics,
* :mod:`repro.telemetry.pubsub` — PUB/SUB message bus with ZeroMQ's
  slow-joiner semantics plus configurable delivery delay and loss (the
  design flaw behind OpenMC's spurious zero progress reports in the
  paper's Fig. 3),
* :mod:`repro.telemetry.monitor` — the 1 Hz progress monitor that turns
  raw progress events into a per-second rate series,
* :mod:`repro.telemetry.reduction` — job-level aggregation of per-rank
  progress (mean / critical-path / imbalance views).
"""

from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.pubsub import MessageBus, PubSocket, SubSocket
from repro.telemetry.reduction import JobProgressReducer
from repro.telemetry.timeseries import TimeSeries

__all__ = [
    "TimeSeries",
    "MessageBus",
    "PubSocket",
    "SubSocket",
    "ProgressMonitor",
    "JobProgressReducer",
]
