"""The 1 Hz progress monitor.

Applications publish progress *increments* (one block, one batch of
particles, ``n_atoms`` atom-timesteps, ...) as they complete work. The
monitor drains its subscription once per ``interval`` (1 s in the paper)
and records the *rate*: the sum of increments received in the window
divided by the window length. The resulting series is exactly what the
paper plots in Figs. 1 and 3 — including the spurious zeros when the
transport loses a report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, check_snapshot_version
from repro.telemetry.pubsub import SubSocket
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["ProgressMonitor"]


class ProgressMonitor:
    """Aggregate a progress-event subscription into a rate series.

    Parameters
    ----------
    engine:
        Engine whose timer drives the periodic collection.
    sub:
        Subscription delivering progress increments.
    interval:
        Aggregation window in seconds (the paper uses 1 s).
    name:
        Name for the resulting series.
    """

    def __init__(self, engine: "Engine", sub: SubSocket, *,
                 interval: float = 1.0, name: str = "progress") -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.sub = sub
        self.interval = interval
        self.series = TimeSeries(name)
        self.events_seen = 0
        self._timer = engine.add_timer(interval, self._tick, period=interval)

    def _tick(self, now: float) -> None:
        msgs = self.sub.recv_all()
        self.events_seen += len(msgs)
        total = sum(m.value for m in msgs)
        self.series.append(now, total / self.interval)

    def stop(self) -> None:
        """Stop collecting (the series remains available)."""
        self._timer.cancel()

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable monitor state (the subscription queue is owned and
        checkpointed by the bus)."""
        return {"version": 1, "series": self.series.snapshot(),
                "events_seen": self.events_seen}

    def restore(self, state: dict) -> None:
        check_snapshot_version(state, 1, "ProgressMonitor")
        self.series.restore(state["series"])
        self.events_seen = state["events_seen"]
