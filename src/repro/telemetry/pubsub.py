"""ZeroMQ-style PUB/SUB progress transport.

The paper publishes progress from inside each application through
ZeroMQ's publish-subscribe sockets. This module reproduces the semantics
that matter for the study, in-process and in simulated time:

* **topic prefix filtering** — a subscription to ``"progress"`` matches
  ``"progress/lammps"``, as with ZeroMQ's prefix subscriptions;
* **slow joiner** — messages published before a subscriber connects are
  lost, not queued;
* **bounded queues (HWM)** — each subscriber has a high-water mark; when
  the queue is full, new messages are dropped;
* **delivery delay and loss** — optional per-bus latency and a seeded
  drop probability. The paper notes OpenMC's progress "is occasionally
  reported as zero ... due to a flaw in the design of the ZeroMQ-based
  progress monitoring framework"; enabling loss on the OpenMC channel
  reproduces those spurious zeros (Fig. 3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    TelemetryError,
    check_snapshot_version,
)
from repro.runtime.clock import SimClock

__all__ = ["Message", "MessageBus", "PubSocket", "SubSocket"]


@dataclass(frozen=True)
class Message:
    """One published progress event."""

    time: float      #: publish timestamp (simulated seconds)
    topic: str
    value: float


class MessageBus:
    """In-process broker connecting PUB and SUB sockets.

    Parameters
    ----------
    clock:
        Simulation clock used to stamp and (optionally) delay messages.
    delay:
        Constant delivery latency in seconds.
    drop_prob:
        Probability that any given message is silently lost in transit.
    seed:
        Seed for the loss process (losses are deterministic per seed).
    """

    def __init__(self, clock: SimClock, *, delay: float = 0.0,
                 drop_prob: float = 0.0, seed: int = 0) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        if not 0.0 <= drop_prob < 1.0:
            raise ConfigurationError(
                f"drop_prob must lie in [0, 1), got {drop_prob}"
            )
        self.clock = clock
        self.delay = delay
        self.drop_prob = drop_prob
        self._rng = np.random.default_rng(seed)
        self._subs: list[SubSocket] = []
        self.published = 0
        self.dropped = 0

    # -- socket factories --------------------------------------------------

    def pub_socket(self) -> "PubSocket":
        """Create a publisher endpoint."""
        return PubSocket(self)

    def sub_socket(self, topic: str, hwm: int = 1000) -> "SubSocket":
        """Create and connect a subscriber with a topic-prefix filter."""
        sub = SubSocket(self, topic, hwm)
        self._subs.append(sub)
        return sub

    # -- internal delivery ------------------------------------------------------

    def _publish(self, topic: str, value: float) -> None:
        self.published += 1
        if self.drop_prob > 0.0 and self._rng.random() < self.drop_prob:
            self.dropped += 1
            return
        msg = Message(time=self.clock.now, topic=topic, value=value)
        deliver_at = self.clock.now + self.delay
        for sub in self._subs:
            if not sub.closed and topic.startswith(sub.topic):
                sub._enqueue(deliver_at, msg)

    def _disconnect(self, sub: "SubSocket") -> None:
        if sub in self._subs:
            self._subs.remove(sub)

    def _reconnect(self, sub: "SubSocket") -> None:
        if sub in self._subs:  # pragma: no cover - guarded by SubSocket
            raise TelemetryError("subscriber is already connected")
        self._subs.append(sub)

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable bus state: loss-process RNG, counters, and each
        connected subscriber's queue (by connection order)."""
        return {
            "version": 1,
            "rng": self._rng.bit_generator.state,
            "published": self.published,
            "dropped": self.dropped,
            "subs": [{
                "topic": sub.topic,
                "hwm": sub.hwm,
                "closed": sub.closed,
                "overflowed": sub.overflowed,
                "queue": list(sub._queue),
            } for sub in self._subs],
        }

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` onto an identically wired bus
        (same subscribers, in the same connection order)."""
        from repro.exceptions import CheckpointError

        check_snapshot_version(state, 1, "MessageBus")
        if len(state["subs"]) != len(self._subs):
            raise CheckpointError(
                f"bus checkpoint has {len(state['subs'])} subscribers, "
                f"rebuilt bus has {len(self._subs)}")
        self._rng.bit_generator.state = state["rng"]
        self.published = state["published"]
        self.dropped = state["dropped"]
        for sub, sub_state in zip(self._subs, state["subs"]):
            if (sub.topic, sub.hwm) != (sub_state["topic"], sub_state["hwm"]):
                raise CheckpointError(
                    f"subscriber mismatch: checkpoint "
                    f"({sub_state['topic']!r}, hwm={sub_state['hwm']}) vs "
                    f"rebuilt ({sub.topic!r}, hwm={sub.hwm})")
            sub.closed = sub_state["closed"]
            sub.overflowed = sub_state["overflowed"]
            sub._queue = deque(
                (t, Message(*m) if not isinstance(m, Message) else m)
                for t, m in sub_state["queue"])


class PubSocket:
    """Publisher endpoint; fire-and-forget like a ZMQ PUB socket."""

    def __init__(self, bus: MessageBus) -> None:
        self._bus = bus
        self.closed = False

    def send(self, topic: str, value: float) -> None:
        """Publish one value; never blocks, never errors on no-subscriber."""
        if self.closed:
            raise TelemetryError("send on a closed PUB socket")
        self._bus._publish(topic, float(value))

    def close(self) -> None:
        self.closed = True


class SubSocket:
    """Subscriber endpoint with prefix filtering and a bounded queue."""

    def __init__(self, bus: MessageBus, topic: str, hwm: int) -> None:
        if hwm < 1:
            raise ConfigurationError(f"hwm must be >= 1, got {hwm}")
        self._bus = bus
        self.topic = topic
        self.hwm = hwm
        self.closed = False
        self.overflowed = 0
        self._queue: deque[tuple[float, Message]] = deque()

    def _enqueue(self, deliver_at: float, msg: Message) -> None:
        if len(self._queue) >= self.hwm:
            self.overflowed += 1
            return
        self._queue.append((deliver_at, msg))

    def recv_all(self) -> list[Message]:
        """Drain every message whose delivery time has arrived."""
        if self.closed:
            raise TelemetryError("recv on a closed SUB socket")
        now = self._bus.clock.now
        out: list[Message] = []
        while self._queue and self._queue[0][0] <= now + 1e-15:
            out.append(self._queue.popleft()[1])
        return out

    def pending(self) -> int:
        """Messages queued (delivered or still in flight)."""
        return len(self._queue)

    def close(self) -> None:
        """Disconnect from the bus; subsequent publishes are not seen."""
        self.closed = True
        self._bus._disconnect(self)

    def resubscribe(self) -> None:
        """Reconnect a closed subscriber as a fresh slow joiner.

        ZeroMQ semantics: a subscriber that drops its connection and
        comes back gets a *new* subscription — messages published while
        it was away are lost (slow joiner), and nothing of its previous
        queue survives (fresh HWM queue, no stale backlog). The daemon's
        ``watch`` reconnect path relies on exactly this: a client that
        re-attaches must not replay messages its dead connection never
        drained. The overflow counter keeps accumulating across
        reconnects (it describes the subscriber's lifetime, not one
        connection).
        """
        if not self.closed:
            raise TelemetryError("resubscribe on a connected SUB socket")
        self._queue.clear()
        self.closed = False
        self._bus._reconnect(self)
