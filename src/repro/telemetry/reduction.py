"""Job-level reduction of per-rank progress (paper future work).

The paper's conclusion asks for "a more detailed study of the
infrastructure needed for dynamic progress monitoring across large-scale
systems and how to combine job-wide and node-local progress metrics".
This module provides the node-local half of that combination: when an
application publishes *per-rank* progress (one topic per rank), a
:class:`JobProgressReducer` aggregates the per-rank rate series into
job-level views:

* ``mean`` — total work rate across ranks (Definition-2 flavoured),
* ``min`` — the slowest rank, i.e. the critical path (what a
  power-balancer like the paper's cited Conductor would steer by),
* ``imbalance`` — max/min rank rate, a load-imbalance indicator that is
  invisible in a single aggregate metric (the Table-I lesson).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.telemetry.monitor import ProgressMonitor
from repro.telemetry.pubsub import MessageBus
from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

__all__ = ["JobProgressReducer"]


class JobProgressReducer:
    """Aggregate per-rank progress monitors into job-level series.

    Parameters
    ----------
    engine:
        Engine driving the monitors' collection timers.
    bus:
        Bus the application publishes on.
    topic_prefix:
        Per-rank topics are ``{topic_prefix}/rank{k}``.
    n_ranks:
        Number of ranks to monitor.
    interval:
        Aggregation window (matches the monitors').
    """

    def __init__(self, engine: "Engine", bus: MessageBus,
                 topic_prefix: str, n_ranks: int, *,
                 interval: float = 1.0) -> None:
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
        self.topic_prefix = topic_prefix
        self.n_ranks = n_ranks
        self.monitors = [
            ProgressMonitor(engine, bus.sub_socket(f"{topic_prefix}/rank{k}"),
                            interval=interval, name=f"rank{k}")
            for k in range(n_ranks)
        ]

    # ------------------------------------------------------------------

    def _matrix(self) -> np.ndarray:
        """Per-rank rates as an (n_ranks, n_samples) array over the
        common sample count."""
        n = min(len(m.series) for m in self.monitors)
        if n == 0:
            raise ConfigurationError("no samples collected yet")
        return np.stack([m.series.values[:n] for m in self.monitors])

    def _times(self, n: int) -> np.ndarray:
        return self.monitors[0].series.times[:n]

    def _reduce(self, fn, name: str) -> TimeSeries:
        matrix = self._matrix()
        times = self._times(matrix.shape[1])
        reduced = fn(matrix, axis=0)
        return TimeSeries(name, zip(times, reduced))

    # -- job-level views ---------------------------------------------------

    def mean_rate(self) -> TimeSeries:
        """Mean per-rank rate (total job rate / n_ranks)."""
        return self._reduce(np.mean, f"{self.topic_prefix}:mean")

    def min_rate(self) -> TimeSeries:
        """Critical-path rank rate."""
        return self._reduce(np.min, f"{self.topic_prefix}:min")

    def max_rate(self) -> TimeSeries:
        """Fastest rank rate."""
        return self._reduce(np.max, f"{self.topic_prefix}:max")

    def imbalance(self) -> TimeSeries:
        """Per-sample max/min rank-rate ratio (1.0 = perfectly balanced;
        samples where the slowest rank reported nothing yield inf)."""
        matrix = self._matrix()
        times = self._times(matrix.shape[1])
        mins = matrix.min(axis=0)
        maxs = matrix.max(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(mins > 0, maxs / mins, np.inf)
        out = TimeSeries(f"{self.topic_prefix}:imbalance")
        for t, v in zip(times, ratio):
            out.append(float(t), float(v))
        return out

    def stop(self) -> None:
        """Stop all per-rank monitors."""
        for m in self.monitors:
            m.stop()
