"""Timestamped sample container.

Every measured quantity in the library (progress rate, package power,
frequency, power cap) is recorded as a :class:`TimeSeries`: a pair of
parallel arrays of times and values with summary statistics, windowed
views, and mean-preserving resampling.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    check_snapshot_version,
)

__all__ = ["TimeSeries"]


class TimeSeries:
    """Append-only series of ``(time, value)`` samples.

    Times must be non-decreasing (they come from the simulation clock).
    """

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "",
                 samples: Iterable[tuple[float, float]] | None = None) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        if samples is not None:
            for t, v in samples:
                self.append(t, v)

    # -- building -----------------------------------------------------------

    def append(self, time: float, value: float) -> None:
        """Add one sample; ``time`` must not precede the last sample."""
        if self._times and time < self._times[-1]:
            raise ConfigurationError(
                f"sample at t={time} precedes last sample t={self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def __getitem__(self, idx: int) -> tuple[float, float]:
        return self._times[idx], self._values[idx]

    @property
    def times(self) -> np.ndarray:
        """Sample times as an array (copy)."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array (copy)."""
        return np.asarray(self._values, dtype=float)

    def is_empty(self) -> bool:
        return not self._times

    def copy(self) -> "TimeSeries":
        """An independent copy (same name and samples)."""
        out = TimeSeries(self.name)
        out._times = list(self._times)
        out._values = list(self._values)
        return out

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable state (times/values as plain lists)."""
        return {"version": 1, "name": self.name, "times": list(self._times),
                "values": list(self._values)}

    def restore(self, state: dict) -> None:
        """Reinstall a :meth:`snapshot` (replaces all samples). The
        snapshot must belong to a series of the same name — restoring
        across series was historically silent and always a wiring bug."""
        check_snapshot_version(state, 1, "TimeSeries")
        if state["name"] != self.name:
            raise CheckpointError(
                f"series snapshot is for {state['name']!r}, "
                f"restoring into {self.name!r}")
        self._times = list(state["times"])
        self._values = list(state["values"])

    # -- statistics -----------------------------------------------------------

    def _require_samples(self) -> None:
        if not self._times:
            raise ConfigurationError(f"time series {self.name!r} is empty")

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        self._require_samples()
        return float(np.mean(self._values))

    def std(self) -> float:
        """Standard deviation of the values."""
        self._require_samples()
        return float(np.std(self._values))

    def min(self) -> float:
        self._require_samples()
        return float(np.min(self._values))

    def max(self) -> float:
        self._require_samples()
        return float(np.max(self._values))

    def coefficient_of_variation(self) -> float:
        """std/mean — the consistency measure used to characterize online
        performance (LAMMPS is consistent, AMG fluctuates)."""
        m = self.mean()
        if m == 0.0:
            raise ConfigurationError("coefficient of variation undefined at mean 0")
        return self.std() / abs(m)

    # -- transforms ------------------------------------------------------------

    def window(self, t_start: float, t_end: float) -> "TimeSeries":
        """Samples with ``t_start <= t < t_end`` (a copy)."""
        if t_end < t_start:
            raise ConfigurationError(f"bad window [{t_start}, {t_end})")
        out = TimeSeries(self.name)
        for t, v in self:
            if t_start <= t < t_end:
                out.append(t, v)
        return out

    def resample(self, interval: float, t_start: float | None = None,
                 t_end: float | None = None, fill: float = 0.0
                 ) -> "TimeSeries":
        """Average samples into fixed ``interval`` bins.

        Each output sample is stamped at its bin's *end* (like the 1 Hz
        monitor); empty bins produce ``fill``.
        """
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self._require_samples()
        t0 = self._times[0] if t_start is None else t_start
        t1 = self._times[-1] if t_end is None else t_end
        if t1 < t0:
            raise ConfigurationError("t_end precedes t_start")
        n_bins = max(1, int(np.ceil((t1 - t0) / interval - 1e-12)))
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        out = TimeSeries(self.name)
        for b in range(n_bins):
            lo, hi = t0 + b * interval, t0 + (b + 1) * interval
            mask = (times >= lo) & (times < hi)
            out.append(hi, float(values[mask].mean()) if mask.any() else fill)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._times:
            return f"TimeSeries({self.name!r}, empty)"
        return (
            f"TimeSeries({self.name!r}, n={len(self)}, "
            f"t=[{self._times[0]:.2f}, {self._times[-1]:.2f}])"
        )
