"""Vectorized node engine: numpy structure-of-arrays fast path.

Thousands of lockstep cluster nodes share the same stack shape — one
SPMD application under the budget-tracking policy on stock RAPL
firmware. :mod:`repro.vector` advances all of them at once: per-node
state lives in parallel numpy arrays (:class:`VectorGroup`), one batched
micro-step loop replaces thousands of per-node engine loops, and the
result is bit-for-bit identical to the object engine (the parity suite
in ``tests/vector`` pins every fast-path application).

Entry points:

* :func:`~repro.vector.gate.supports_fast_path` — eligibility gate
  (``None`` = vectorizable, else the human-readable refusal reason);
* :class:`~repro.vector.host.VectorEngine` — the node host the cluster
  layers select with ``engine="vector"``;
* :class:`~repro.vector.engine.VectorGroup` — the SoA state and the
  batched step itself.
"""

from repro.vector.engine import VectorGroup
from repro.vector.gate import (
    FAST_APPS,
    MAX_VECTOR_WORKERS,
    GroupProfile,
    build_profile,
    profile_key,
    supports_fast_path,
)
from repro.vector.host import VectorEngine, VectorNodeView

__all__ = [
    "FAST_APPS",
    "MAX_VECTOR_WORKERS",
    "GroupProfile",
    "VectorEngine",
    "VectorGroup",
    "VectorNodeView",
    "build_profile",
    "profile_key",
    "supports_fast_path",
]
